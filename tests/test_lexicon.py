"""Unit tests for the question lexicon (entity/column/number linking)."""

import pytest

from repro.parser import Lexicon, content_tokens, tokenize
from repro.tables.values import NumberValue, StringValue


class TestTokenisation:
    def test_tokenize_lowercases(self):
        assert tokenize("What was the Total of Fiji?") == [
            "what", "was", "the", "total", "of", "fiji", "?",
        ]

    def test_tokenize_keeps_numbers(self):
        assert "150" in tokenize("the $150 category")

    def test_content_tokens_drop_stop_words(self):
        tokens = content_tokens("What was the total of Fiji?")
        assert "fiji" in tokens
        assert "the" not in tokens
        assert "?" not in tokens


class TestEntityMatching:
    def test_single_token_entity(self, medals_table):
        analysis = Lexicon(medals_table).analyze("What was the total of Fiji?")
        assert ("Nation", StringValue("Fiji")) in analysis.matched_entities()

    def test_multi_token_entity(self, medals_table):
        analysis = Lexicon(medals_table).analyze("How many golds did New Caledonia win?")
        assert ("Nation", StringValue("New Caledonia")) in analysis.matched_entities()

    def test_longest_span_wins(self, shipwrecks_table):
        analysis = Lexicon(shipwrecks_table).analyze("ships wrecked in Lake Huron")
        matched = analysis.matched_entities()
        assert ("Lake", StringValue("Lake Huron")) in matched

    def test_two_entities_matched(self, medals_table):
        analysis = Lexicon(medals_table).analyze("difference between Fiji and Tonga")
        nations = {value.display() for column, value in analysis.matched_entities()}
        assert {"Fiji", "Tonga"} <= nations

    def test_no_entity_match(self, medals_table):
        analysis = Lexicon(medals_table).analyze("Who won the race?")
        assert analysis.matched_entities() == []

    def test_case_insensitive(self, olympics_table):
        analysis = Lexicon(olympics_table).analyze("when did greece host?")
        assert ("Country", StringValue("Greece")) in analysis.matched_entities()


class TestColumnMatching:
    def test_exact_header_match(self, medals_table):
        analysis = Lexicon(medals_table).analyze("Who won the most gold?")
        assert "Gold" in analysis.matched_columns()

    def test_multi_word_header_partial_match(self, shipwrecks_table):
        analysis = Lexicon(shipwrecks_table).analyze("How many lives were lost?")
        assert "Lives lost" in analysis.matched_columns()

    def test_unrelated_headers_not_matched(self, medals_table):
        analysis = Lexicon(medals_table).analyze("Who had the most gold?")
        assert "Silver" not in analysis.matched_columns()


class TestNumberMatching:
    def test_number_extracted(self, roster_table):
        analysis = Lexicon(roster_table).analyze("players with more than 4 games")
        assert any(match.value == NumberValue(4) for match in analysis.numbers)

    def test_year_extracted(self, olympics_table):
        analysis = Lexicon(olympics_table).analyze("what happened in 2004?")
        assert any(match.value == NumberValue(2004) for match in analysis.numbers)

    def test_no_numbers(self, olympics_table):
        analysis = Lexicon(olympics_table).analyze("which city hosted first?")
        assert analysis.numbers == ()


class TestSharedNormalization:
    """The term-extraction surface shared with repro.retrieval (ISSUE 4):
    the lexicon must consume the exact helpers the corpus index builds
    its postings from, or the retrieval recall-superset contract breaks."""

    def test_normalize_value_key_is_the_value_index_key(self, olympics_table):
        from repro.parser.lexicon import normalize_value_key

        lexicon = Lexicon(olympics_table)
        for column in olympics_table.columns:
            for value in lexicon.kb.column_entities(column):
                key = normalize_value_key(value)
                if key:
                    assert (column, value) in lexicon._value_index[key]

    def test_column_matchable_tokens_match_lexicon_columns(self, medals_table):
        from repro.parser.lexicon import column_matchable_tokens

        lexicon = Lexicon(medals_table)
        for column in medals_table.columns:
            assert lexicon._column_tokens[column] == column_matchable_tokens(column)

    def test_stop_word_only_header_falls_back_to_raw_tokens(self):
        from repro.parser.lexicon import column_matchable_tokens

        assert column_matchable_tokens("of") == {"of"}
        assert column_matchable_tokens("Lives lost") == {"lives", "lost"}

    def test_question_phrases_cover_every_entity_span(self, olympics_table):
        from repro.parser.lexicon import question_phrases

        lexicon = Lexicon(olympics_table)
        question = "did Rio de Janeiro host after Greece"
        tokens = tokenize(question)
        phrases = question_phrases(tokens)
        analysis = lexicon.analyze(question)
        assert analysis.entities  # the premise: something anchors
        for match in analysis.entities:
            assert match.text in phrases
