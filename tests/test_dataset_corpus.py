"""The discovery-corpus generator (ISSUE 9): distinctness, determinism, skew.

The generator's contract is that a corpus of confusable tables is still a
corpus of *distinct* tables: unique names by construction, unique content
fingerprints by explicit dedup.  The regression class forces the digest
collision the dedup loop exists for — before the fix, a collision
registered one shard under two names (or raised ``NAME_CONFLICT``) and
silently shrank the corpus the bench thought it measured.
"""

from __future__ import annotations

import pytest

from repro.dataset import CorpusConfig, build_discovery_corpus
from repro.dataset.corpus import _dedupe_digest
from repro.dataset.domains import DOMAINS
from repro.tables import TableCatalog


@pytest.fixture(scope="module")
def corpus():
    # Fixed small scale: the distinctness contracts must hold at any
    # size, and module scope keeps generation cost to one build.
    return build_discovery_corpus(
        CorpusConfig(num_tables=60, num_questions=40, seed=7, scale=1.0)
    )


class TestDistinctness:
    def test_names_are_unique(self, corpus):
        assert len(set(corpus.names)) == len(corpus.tables)

    def test_digests_are_unique(self, corpus):
        digests = [table.fingerprint.digest for table in corpus.tables]
        assert len(set(digests)) == len(digests)

    def test_corpus_registers_without_conflicts(self, corpus):
        """The downstream guarantee: every table becomes its own shard —
        no NAME_CONFLICT, no content-addressed merge."""
        catalog = TableCatalog()
        refs = catalog.register_many(corpus.tables, names=corpus.names)
        assert len(catalog) == len(corpus.tables)
        assert len({ref.digest for ref in refs}) == len(corpus.tables)

    def test_titles_overlap_within_domains(self, corpus):
        """Confusability is intentional: same-domain tables share every
        title token except the ordinal."""
        domain = DOMAINS[0]
        siblings = [
            name for name in corpus.names if name.startswith(domain.title)
        ]
        assert len(siblings) >= 2


class TestDigestCollisionRegression:
    def test_dedupe_perturbs_until_digest_is_fresh(self, corpus):
        """Force the collision: seed ``seen`` with the table's own digest
        and require a repaired, distinct table back."""
        table = corpus.tables[0]
        domain = DOMAINS[0]
        seen = {table.fingerprint.digest}
        repaired, repairs = _dedupe_digest(table, domain, seen, ordinal=0)
        assert repairs == 1
        assert repaired.fingerprint.digest not in seen
        assert repaired.name == table.name
        assert repaired.columns == table.columns

    def test_dedupe_survives_chained_collisions(self, corpus):
        """Every intermediate perturbation already seen ⇒ keep going."""
        table = corpus.tables[0]
        domain = DOMAINS[0]
        seen = {table.fingerprint.digest}
        first, _ = _dedupe_digest(table, domain, set(seen), ordinal=0)
        seen.add(first.fingerprint.digest)
        second, repairs = _dedupe_digest(table, domain, seen, ordinal=0)
        assert repairs == 2
        assert second.fingerprint.digest not in seen

    def test_dedupe_is_a_no_op_without_collision(self, corpus):
        table = corpus.tables[0]
        repaired, repairs = _dedupe_digest(table, DOMAINS[0], set(), ordinal=0)
        assert repairs == 0
        assert repaired is table


class TestDeterminismAndLabels:
    def test_same_config_same_corpus(self):
        config = CorpusConfig(num_tables=30, num_questions=20, seed=11, scale=1.0)
        first = build_discovery_corpus(config)
        second = build_discovery_corpus(config)
        assert [t.fingerprint.digest for t in first.tables] == [
            t.fingerprint.digest for t in second.tables
        ]
        assert [q.question for q in first.questions] == [
            q.question for q in second.questions
        ]
        assert first.popularity == second.popularity

    def test_gold_labels_point_at_generated_tables(self, corpus):
        by_digest = {
            table.fingerprint.digest: table.name for table in corpus.tables
        }
        for question in corpus.questions:
            assert by_digest[question.gold_digest] == question.gold_name

    def test_popularity_is_skewed(self, corpus):
        """Zipf by design: some tables draw several questions while most
        draw none."""
        assert max(corpus.popularity.values()) >= 2
        assert len(corpus.popularity) < len(corpus.tables)

    def test_scale_floors_apply(self):
        tiny = build_discovery_corpus(
            CorpusConfig(
                num_tables=500,
                num_questions=300,
                seed=3,
                scale=0.001,
                min_tables=8,
                min_questions=8,
            )
        )
        assert len(tiny.tables) == 8
        assert len(tiny.questions) == 8
