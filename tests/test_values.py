"""Unit tests for typed cell values and parsing."""

import math

import pytest

from repro.tables.values import (
    DateValue,
    NumberValue,
    StringValue,
    ValueError_,
    parse_date,
    parse_number,
    parse_value,
    values_equal,
)


class TestStringValue:
    def test_equality_is_case_insensitive(self):
        assert StringValue("Athens") == StringValue("athens")

    def test_equality_ignores_extra_whitespace(self):
        assert StringValue("  New   Caledonia ") == StringValue("New Caledonia")

    def test_hash_consistent_with_equality(self):
        assert hash(StringValue("Fiji")) == hash(StringValue("FIJI"))

    def test_display_preserves_original_text(self):
        assert StringValue("Rio de Janeiro").display() == "Rio de Janeiro"

    def test_not_numeric(self):
        assert not StringValue("Athens").is_numeric
        with pytest.raises(ValueError_):
            StringValue("Athens").as_number()


class TestNumberValue:
    def test_integral_display_has_no_decimal_point(self):
        assert NumberValue(130.0).display() == "130"

    def test_fractional_display(self):
        assert NumberValue(2.5).display() == "2.5"

    def test_equality_uses_tolerance(self):
        assert NumberValue(0.1 + 0.2) == NumberValue(0.3)

    def test_as_number(self):
        assert NumberValue(42).as_number() == 42.0

    def test_ordering(self):
        assert NumberValue(4) < NumberValue(20)


class TestDateValue:
    def test_requires_at_least_one_component(self):
        with pytest.raises(ValueError_):
            DateValue()

    def test_rejects_bad_month(self):
        with pytest.raises(ValueError_):
            DateValue(year=2004, month=13)

    def test_rejects_bad_day(self):
        with pytest.raises(ValueError_):
            DateValue(year=2004, month=5, day=42)

    def test_bare_year_is_numeric(self):
        assert DateValue(year=1896).is_numeric
        assert DateValue(year=1896).as_number() == 1896.0

    def test_full_date_is_not_numeric(self):
        assert not DateValue(year=2013, month=6, day=8).is_numeric

    def test_display_formats(self):
        assert DateValue(year=2013, month=6, day=8).display() == "2013-06-08"
        assert DateValue(year=1896).display() == "1896"

    def test_ordering_by_components(self):
        assert DateValue(year=1896) < DateValue(year=1900)
        assert DateValue(year=2013, month=5) < DateValue(year=2013, month=6, day=8)


class TestParseNumber:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("1234", 1234.0),
            ("1,234", 1234.0),
            ("$150,000", 150000.0),
            ("42%", 42.0),
            ("-7", -7.0),
            ("3.14", 3.14),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_number(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["Athens", "", "4th Round", "12-3", "1 234 567 m"])
    def test_rejects(self, text):
        assert parse_number(text) is None


class TestParseDate:
    def test_iso_date(self):
        assert parse_date("2013-06-08") == DateValue(2013, 6, 8)

    def test_iso_year_month(self):
        assert parse_date("2013-06") == DateValue(2013, 6)

    def test_textual_date(self):
        assert parse_date("June 8, 2013") == DateValue(2013, 6, 8)

    def test_day_month_year(self):
        assert parse_date("8 June 2013") == DateValue(2013, 6, 8)

    def test_rejects_nonsense_month(self):
        assert parse_date("Juni 8, 2013") is None

    def test_rejects_out_of_range(self):
        assert parse_date("2013-13-08") is None

    def test_rejects_plain_text(self):
        assert parse_date("Athens") is None


class TestParseValue:
    def test_existing_value_passes_through(self):
        value = NumberValue(5)
        assert parse_value(value) is value

    def test_none_becomes_empty_string(self):
        assert parse_value(None) == StringValue("")

    def test_int_becomes_number(self):
        assert parse_value(42) == NumberValue(42)

    def test_year_becomes_number_by_default(self):
        assert parse_value("1896") == NumberValue(1896)

    def test_year_becomes_date_when_preferred(self):
        assert parse_value("1896", prefer_date_for_years=True) == DateValue(year=1896)

    def test_textual_date_detected(self):
        assert parse_value("June 8, 2013") == DateValue(2013, 6, 8)

    def test_currency_detected(self):
        assert parse_value("$150,000") == NumberValue(150000)

    def test_plain_text_falls_back_to_string(self):
        assert parse_value("Did not qualify") == StringValue("Did not qualify")

    def test_bool_is_not_treated_as_number(self):
        assert parse_value(True) == StringValue("True")


class TestValuesEqual:
    def test_same_type(self):
        assert values_equal(StringValue("Fiji"), StringValue("fiji"))

    def test_string_number_cross_type(self):
        assert values_equal(StringValue("2004"), NumberValue(2004))
        assert values_equal(NumberValue(2004), StringValue("2004"))

    def test_string_date_cross_type(self):
        assert values_equal(StringValue("June 8, 2013"), DateValue(2013, 6, 8))

    def test_number_vs_year_date(self):
        assert values_equal(NumberValue(1896), DateValue(year=1896))

    def test_non_numeric_string_never_equals_number(self):
        assert not values_equal(StringValue("Athens"), NumberValue(3))

    def test_unequal_numbers(self):
        assert not values_equal(NumberValue(4), NumberValue(5))

    def test_text_vs_full_date_mismatch(self):
        assert not values_equal(StringValue("Athens"), DateValue(2013, 6, 8))
