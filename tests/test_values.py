"""Unit tests for typed cell values and parsing."""

import math

import pytest

from repro.tables.values import (
    DateValue,
    NumberValue,
    StringValue,
    ValueError_,
    parse_date,
    parse_number,
    parse_value,
    values_equal,
)


class TestStringValue:
    def test_equality_is_case_insensitive(self):
        assert StringValue("Athens") == StringValue("athens")

    def test_equality_ignores_extra_whitespace(self):
        assert StringValue("  New   Caledonia ") == StringValue("New Caledonia")

    def test_hash_consistent_with_equality(self):
        assert hash(StringValue("Fiji")) == hash(StringValue("FIJI"))

    def test_display_preserves_original_text(self):
        assert StringValue("Rio de Janeiro").display() == "Rio de Janeiro"

    def test_not_numeric(self):
        assert not StringValue("Athens").is_numeric
        with pytest.raises(ValueError_):
            StringValue("Athens").as_number()


class TestNumberValue:
    def test_integral_display_has_no_decimal_point(self):
        assert NumberValue(130.0).display() == "130"

    def test_fractional_display(self):
        assert NumberValue(2.5).display() == "2.5"

    def test_equality_uses_tolerance(self):
        assert NumberValue(0.1 + 0.2) == NumberValue(0.3)

    def test_as_number(self):
        assert NumberValue(42).as_number() == 42.0

    def test_ordering(self):
        assert NumberValue(4) < NumberValue(20)


class TestDateValue:
    def test_requires_at_least_one_component(self):
        with pytest.raises(ValueError_):
            DateValue()

    def test_rejects_bad_month(self):
        with pytest.raises(ValueError_):
            DateValue(year=2004, month=13)

    def test_rejects_bad_day(self):
        with pytest.raises(ValueError_):
            DateValue(year=2004, month=5, day=42)

    def test_bare_year_is_numeric(self):
        assert DateValue(year=1896).is_numeric
        assert DateValue(year=1896).as_number() == 1896.0

    def test_full_date_is_not_numeric(self):
        assert not DateValue(year=2013, month=6, day=8).is_numeric

    def test_display_formats(self):
        assert DateValue(year=2013, month=6, day=8).display() == "2013-06-08"
        assert DateValue(year=1896).display() == "1896"

    def test_ordering_by_components(self):
        assert DateValue(year=1896) < DateValue(year=1900)
        assert DateValue(year=2013, month=5) < DateValue(year=2013, month=6, day=8)


class TestParseNumber:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("1234", 1234.0),
            ("1,234", 1234.0),
            ("$150,000", 150000.0),
            ("42%", 42.0),
            ("-7", -7.0),
            ("3.14", 3.14),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_number(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["Athens", "", "4th Round", "12-3", "1 234 567 m"])
    def test_rejects(self, text):
        assert parse_number(text) is None


class TestParseDate:
    def test_iso_date(self):
        assert parse_date("2013-06-08") == DateValue(2013, 6, 8)

    def test_iso_year_month(self):
        assert parse_date("2013-06") == DateValue(2013, 6)

    def test_textual_date(self):
        assert parse_date("June 8, 2013") == DateValue(2013, 6, 8)

    def test_day_month_year(self):
        assert parse_date("8 June 2013") == DateValue(2013, 6, 8)

    def test_rejects_nonsense_month(self):
        assert parse_date("Juni 8, 2013") is None

    def test_rejects_out_of_range(self):
        assert parse_date("2013-13-08") is None

    def test_rejects_plain_text(self):
        assert parse_date("Athens") is None


class TestParseValue:
    def test_existing_value_passes_through(self):
        value = NumberValue(5)
        assert parse_value(value) is value

    def test_none_becomes_empty_string(self):
        assert parse_value(None) == StringValue("")

    def test_int_becomes_number(self):
        assert parse_value(42) == NumberValue(42)

    def test_year_becomes_number_by_default(self):
        assert parse_value("1896") == NumberValue(1896)

    def test_year_becomes_date_when_preferred(self):
        assert parse_value("1896", prefer_date_for_years=True) == DateValue(year=1896)

    def test_textual_date_detected(self):
        assert parse_value("June 8, 2013") == DateValue(2013, 6, 8)

    def test_currency_detected(self):
        assert parse_value("$150,000") == NumberValue(150000)

    def test_plain_text_falls_back_to_string(self):
        assert parse_value("Did not qualify") == StringValue("Did not qualify")

    def test_bool_is_not_treated_as_number(self):
        assert parse_value(True) == StringValue("True")


class TestValuesEqual:
    def test_same_type(self):
        assert values_equal(StringValue("Fiji"), StringValue("fiji"))

    def test_string_number_cross_type(self):
        assert values_equal(StringValue("2004"), NumberValue(2004))
        assert values_equal(NumberValue(2004), StringValue("2004"))

    def test_string_date_cross_type(self):
        assert values_equal(StringValue("June 8, 2013"), DateValue(2013, 6, 8))

    def test_number_vs_year_date(self):
        assert values_equal(NumberValue(1896), DateValue(year=1896))

    def test_non_numeric_string_never_equals_number(self):
        assert not values_equal(StringValue("Athens"), NumberValue(3))

    def test_unequal_numbers(self):
        assert not values_equal(NumberValue(4), NumberValue(5))

    def test_text_vs_full_date_mismatch(self):
        assert not values_equal(StringValue("Athens"), DateValue(2013, 6, 8))


class TestNumberValueHashEqualityInvariant:
    """ISSUE 3: ``a == b`` must imply ``hash(a) == hash(b)``.

    The seed compared with ``math.isclose`` (rel+abs tolerance) but hashed
    ``round(number, 9)``, so equal values could hash apart and silently
    miss dict/set/index lookups.  Equality and hash now share one
    quantized bucket.
    """

    def test_seed_counterexample(self):
        # isclose(5e-10, 1.4e-9, abs_tol=1e-9) was True while the rounded
        # hashes differed — the exact mismatch the seed shipped.
        a, b = NumberValue(5e-10), NumberValue(1.4e-9)
        if a == b:
            assert hash(a) == hash(b)

    def test_float_noise_still_equal(self):
        assert NumberValue(0.1 + 0.2) == NumberValue(0.3)
        assert hash(NumberValue(0.1 + 0.2)) == hash(NumberValue(0.3))

    def test_dict_lookup_respects_equality(self):
        index = {NumberValue(0.3): "hit"}
        assert index[NumberValue(0.1 + 0.2)] == "hit"

    def test_nan_is_never_equal(self):
        nan = float("nan")
        assert NumberValue(nan) != NumberValue(nan)
        hash(NumberValue(nan))  # hashable regardless

    def test_infinities(self):
        assert NumberValue(float("inf")) == NumberValue(float("inf"))
        assert hash(NumberValue(float("inf"))) == hash(NumberValue(float("inf")))
        assert NumberValue(float("inf")) != NumberValue(float("-inf"))

    def test_equality_is_transitive_on_the_grid(self):
        # Tolerance-based equality was not transitive; bucket equality is.
        a, b, c = NumberValue(1.0), NumberValue(1.0 + 4e-10), NumberValue(1.0 + 8e-10)
        if a == b and b == c:
            assert a == c

    @pytest.mark.parametrize("scale", [1e-12, 1e-6, 1.0, 1e6, 1e12, 1e300])
    def test_invariant_over_magnitudes(self, scale):
        import random

        rng = random.Random(2019)
        values = [NumberValue(rng.uniform(-1, 1) * scale) for _ in range(80)]
        # Seed perturbed near-duplicates to stress the bucket boundaries.
        values += [NumberValue(v.number + rng.uniform(-2e-9, 2e-9)) for v in values]
        for left in values:
            for right in values:
                if left == right:
                    assert hash(left) == hash(right), (left.number, right.number)


class TestParseNumberGroupings:
    """ISSUE 3: thousands separators must sit on real group boundaries."""

    @pytest.mark.parametrize(
        "text, expected",
        [
            ("1,234", 1234.0),
            ("12,345", 12345.0),
            ("$1,000,000", 1000000.0),
            ("1,234.56", 1234.56),
            ("-1,234", -1234.0),
            ("1,234%", 1234.0),
            ("1234567", 1234567.0),
        ],
    )
    def test_well_formed(self, text, expected):
        assert parse_number(text) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "text",
        ["1,2,3", "12,34", "1,23", "1234,567", ",123", "1,", "$1,0000", "1,234,56"],
    )
    def test_malformed_groupings_stay_non_numeric(self, text):
        assert parse_number(text) is None

    def test_malformed_cells_become_strings(self):
        assert parse_value("1,2,3") == StringValue("1,2,3")
        assert parse_value("12,34") == StringValue("12,34")

    def test_grid_overflow_domain_never_collides_with_the_grid(self):
        # round(2e290 * 1e9) is a finite grid integer equal in value to
        # the float 2e299, whose own bucket lives in the overflow domain;
        # the domains must stay disjoint or the two numbers alias.
        assert NumberValue(2e290) != NumberValue(2e299)
        assert NumberValue(2e299) == NumberValue(2e299)
        assert hash(NumberValue(2e299)) == hash(NumberValue(2e299))
