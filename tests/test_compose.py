"""The cross-table composition layer: JoinRecords, the planner, the oracle.

Covers the executor semantics of the one cross-table operator (the
semi-join bridge, including the ``values_equal`` cross-type bridges used
as join keys, NaN cells, and duplicate-key fan-out), the deterministic
lexical planner, the composed answer with its provenance, and the
two-table SQL translation oracle.
"""

import math

import pytest

from repro.compose import (
    ComposedAnswer,
    ComposedExecutor,
    JoinPlanner,
    compose_answer,
    compose_pair,
    execute_composed,
    joinable_columns,
)
from repro.dcs import Executor, builder as q, from_sexpr, to_sexpr
from repro.dcs.errors import ExecutionError
from repro.dcs.typing import validate_composed
from repro.sql import JoinSQLiteBackend, check_composed_equivalence
from repro.tables import Table


@pytest.fixture
def medals():
    return Table(
        columns=["Nation", "Total", "Golds"],
        rows=[
            ["Fiji", "120", "40"],
            ["Samoa", "80", "20"],
            ["Tonga", "95", "30"],
            ["Greece", "town", "10"],
            ["Norway", "300", "90"],
        ],
        name="medals",
    )


@pytest.fixture
def regions():
    return Table(
        columns=["Nation", "Continent"],
        rows=[
            ["Fiji", "Oceania"],
            ["Samoa", "Oceania"],
            ["Tonga", "Oceania"],
            ["Greece", "Europe"],
            ["Norway", "Europe"],
        ],
        name="regions",
    )


def oceania_join():
    return q.join_records(
        "Nation", "Nation", q.column_records("Continent", "Oceania")
    )


class TestJoinRecordsExecutor:
    def test_semi_join_selects_matching_primary_rows(self, medals, regions):
        result = execute_composed(oceania_join(), medals, regions)
        assert result.record_indices == frozenset({0, 1, 2})

    def test_operators_compose_above_the_bridge(self, medals, regions):
        values = execute_composed(
            q.column_values("Total", oceania_join()), medals, regions
        )
        assert values.answer_strings() == ("120", "80", "95")

        count = execute_composed(q.count(oceania_join()), medals, regions)
        assert count.answer_strings() == ("3",)

        best = execute_composed(
            q.column_values("Nation", q.argmax_records("Golds", oceania_join())),
            medals,
            regions,
        )
        assert best.answer_strings() == ("Fiji",)

    def test_join_pairs_record_the_provenance(self, medals, regions):
        executor = ComposedExecutor(medals, regions)
        executor.execute(oceania_join())
        assert executor.join_pairs == ((0, 0), (1, 1), (2, 2))

    def test_base_executor_rejects_join_records(self, medals):
        with pytest.raises(ExecutionError, match="ComposedExecutor"):
            Executor(medals).execute(oceania_join())

    def test_missing_secondary_column_raises(self, medals, regions):
        query = q.join_records(
            "Nation", "Missing", q.column_records("Continent", "Oceania")
        )
        with pytest.raises(ExecutionError, match="Missing"):
            execute_composed(query, medals, regions)

    def test_sexpr_roundtrip(self, medals, regions):
        query = q.column_values("Total", oceania_join())
        text = to_sexpr(query)
        assert "join-records" in text
        rebuilt = from_sexpr(text)
        assert to_sexpr(rebuilt) == text
        assert execute_composed(rebuilt, medals, regions).answer_strings() == (
            "120",
            "80",
            "95",
        )


class TestJoinKeyBridges:
    """``values_equal`` cross-type bridges as join keys (the satellite):
    string↔number re-parses join, NaN never joins, duplicate keys fan
    out deterministically — identically with and without the index."""

    @pytest.mark.parametrize("use_index", [True, False])
    def test_string_number_bridge_joins(self, use_index):
        primary = Table(
            columns=["Year", "Host"],
            rows=[["2004", "Athens"], ["2008", "Beijing"], ["2012", "London"]],
            name="hosts",
        )
        secondary = Table(
            columns=["Year", "Kind"],
            rows=[[2004, "Summer"], [2012, "Summer"]],
            name="editions",
        )
        executor = ComposedExecutor(primary, secondary, use_index=use_index)
        result = executor.execute(
            q.join_records("Year", "Year", q.all_records())
        )
        assert result.record_indices == frozenset({0, 2})
        assert executor.join_pairs == ((0, 0), (2, 1))

    @pytest.mark.parametrize("use_index", [True, False])
    def test_nan_cells_never_join(self, use_index):
        primary = Table(
            columns=["Key", "Payload"],
            rows=[[float("nan"), "a"], [2.0, "b"]],
            name="left",
        )
        secondary = Table(
            columns=["Key", "Tag"],
            rows=[[float("nan"), "x"], [2.0, "y"]],
            name="right",
        )
        executor = ComposedExecutor(primary, secondary, use_index=use_index)
        result = executor.execute(q.join_records("Key", "Key", q.all_records()))
        # NaN != NaN under values_equal: only the 2.0 rows pair up.
        assert result.record_indices == frozenset({1})
        assert executor.join_pairs == ((1, 1),)

    @pytest.mark.parametrize("use_index", [True, False])
    def test_duplicate_keys_fan_out_deterministically(self, use_index):
        primary = Table(
            columns=["Team", "Score"],
            rows=[["United", "3"], ["Rovers", "1"], ["United", "2"]],
            name="games",
        )
        secondary = Table(
            columns=["Team", "City"],
            rows=[["United", "Leeds"], ["United", "Hull"], ["Rovers", "York"]],
            name="clubs",
        )
        executor = ComposedExecutor(primary, secondary, use_index=use_index)
        result = executor.execute(
            q.join_records("Team", "Team", q.all_records())
        )
        assert result.record_indices == frozenset({0, 1, 2})
        # One pair per (left, right) combination, sorted regardless of
        # the probe order the secondary rows arrived in.
        assert executor.join_pairs == (
            (0, 0),
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 1),
        )

    def test_index_and_scan_agree_on_bridges(self):
        primary = Table(
            columns=["Key", "Value"],
            rows=[["2,000", "a"], ["7", "b"], ["x", "c"], ["2000", "d"]],
            name="left",
        )
        secondary = Table(
            columns=["Key", "Tag"],
            rows=[[2000, "x"], ["seven", "y"], ["x", "z"]],
            name="right",
        )
        query = q.join_records("Key", "Key", q.all_records())
        indexed = ComposedExecutor(primary, secondary, use_index=True)
        scanned = ComposedExecutor(primary, secondary, use_index=False)
        assert (
            indexed.execute(query).record_indices
            == scanned.execute(query).record_indices
        )
        assert indexed.join_pairs == scanned.join_pairs


class TestJoinPlanner:
    def test_plans_the_canonical_shape(self, medals, regions):
        plan = JoinPlanner().plan(
            "what is the total for nations in Oceania", medals, regions
        )
        assert plan is not None
        assert plan.target_column == "Total"
        assert (plan.left_column, plan.right_column) == ("Nation", "Nation")
        assert plan.anchor_column == "Continent"
        assert plan.anchor_display == "Oceania"
        assert validate_composed(plan.query, medals, regions)

    def test_no_target_header_means_no_plan(self, medals, regions):
        assert (
            JoinPlanner().plan("which things are in Oceania", medals, regions)
            is None
        )

    def test_no_anchor_means_no_plan(self, medals, regions):
        assert (
            JoinPlanner().plan("what is the total anywhere", medals, regions)
            is None
        )

    def test_min_key_overlap_gates_the_join(self, medals, regions):
        tiny = Table(
            columns=["Nation", "Continent"],
            rows=[["Fiji", "Oceania"]],
            name="tiny",
        )
        assert (
            JoinPlanner(min_key_overlap=2).plan(
                "what is the total for nations in Oceania", medals, tiny
            )
            is None
        )

    def test_joinable_columns_ranked_by_overlap(self, medals, regions):
        pairs = joinable_columns(medals, regions)
        assert pairs[0][:2] == ("Nation", "Nation")
        assert pairs[0][2] == 5


class TestComposeAnswer:
    def test_compose_pair_returns_provenance(self, medals, regions):
        answer = compose_pair(
            "what is the total for nations in Oceania", medals, regions
        )
        assert answer is not None
        assert answer.answer == ("120", "80", "95")
        assert answer.provenance.primary_name == "medals"
        assert answer.provenance.secondary_name == "regions"
        assert answer.provenance.join_pairs == ((0, 0), (1, 1), (2, 2))
        assert "join-records" in answer.sexpr
        assert answer.seconds >= 0.0

    def test_compose_answer_tries_both_orderings(self, medals, regions):
        question = "what is the total for nations in Oceania"
        forward = compose_answer(question, medals, regions)
        reversed_ = compose_answer(question, regions, medals)
        assert forward is not None and reversed_ is not None
        # Only the medals-primary orientation can answer; both call
        # orders land on it.
        assert forward.provenance.primary_name == "medals"
        assert reversed_.provenance.primary_name == "medals"
        assert forward.answer == reversed_.answer

    def test_unanswerable_pair_returns_none(self, medals, regions):
        assert compose_answer("who won the cup final", medals, regions) is None

    def test_round_trips_through_dict(self, medals, regions):
        answer = compose_pair(
            "what is the total for nations in Oceania", medals, regions
        )
        rebuilt = ComposedAnswer.from_dict(answer.to_dict())
        assert rebuilt == answer


class TestComposedSQLOracle:
    def test_join_query_matches_sql(self, medals, regions):
        query = q.column_values("Total", oceania_join())
        report = check_composed_equivalence(query, medals, regions)
        assert report.equivalent, report.detail

    def test_operators_above_the_join_match_sql(self, medals, regions):
        for query in (
            q.count(oceania_join()),
            q.column_values("Nation", q.argmax_records("Golds", oceania_join())),
            q.sum_(q.column_values("Golds", oceania_join())),
        ):
            report = check_composed_equivalence(query, medals, regions)
            assert report.equivalent, report.detail

    def test_backend_can_be_reused(self, medals, regions):
        backend = JoinSQLiteBackend(medals, regions)
        try:
            for query in (
                q.column_values("Total", oceania_join()),
                q.count(oceania_join()),
            ):
                report = check_composed_equivalence(
                    query, medals, regions, backend=backend
                )
                assert report.equivalent, report.detail
        finally:
            backend.close()

    def test_every_bench_composition_passes_the_oracle(self, medals, regions):
        answer = compose_pair(
            "what is the total for nations in Oceania", medals, regions
        )
        report = check_composed_equivalence(
            from_sexpr(answer.sexpr), medals, regions
        )
        assert report.equivalent, report.detail
