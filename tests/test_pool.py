"""The persistent worker pools (:mod:`repro.perf.pool`).

The serving hot path's contract, flavour by flavour:

* both pools are **persistent** — created once, reused across batches —
  and **bit-identical** to a sequential loop over the same parser;
* the process flavour keeps its worker processes (stable PIDs) and their
  fingerprint-addressed table registries alive between batches, ships
  each table to a worker at most once (incremental registry updates),
  pins shards to workers with a stable hash, and spills
  deterministically;
* the thread flavour's warm registries (candidate lists, ranked parses,
  explanations) survive catalog shard eviction and invalidate on weight
  change.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.perf import (
    BatchParser,
    DeadlineExceeded,
    ProcessWorkerPool,
    ThreadWorkerPool,
    create_pool,
)
from repro.perf.batch import BatchItem

from test_perf_batch import build_items, build_tables, make_parser, signature


def sequential_signatures(items):
    parser = make_parser()
    return [signature(parser.parse(question, table)) for question, table in items]


def normalize(items):
    return [BatchItem(question=question, table=table) for question, table in items]


class TestCreatePool:
    def test_factory_builds_both_flavours(self):
        assert isinstance(create_pool("thread", make_parser()), ThreadWorkerPool)
        assert isinstance(create_pool("process", make_parser()), ProcessWorkerPool)

    def test_factory_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            create_pool("fiber", make_parser())

    def test_closed_pool_rejects_batches(self):
        pool = create_pool("thread", make_parser())
        pool.close()
        with pytest.raises(RuntimeError):
            pool.parse_all(normalize(build_items()[:1]))


class TestThreadPoolPersistence:
    def test_bit_identical_across_repeated_batches(self):
        items = build_items()
        reference = sequential_signatures(items)
        with create_pool("thread", make_parser()) as pool:
            for _ in range(3):
                results = pool.parse_all(normalize(items))
                assert [signature(parse) for parse, _ in results] == reference
            assert pool.batches == 3
            assert pool.units == 3 * len(items)

    def test_warm_registry_survives_parser_eviction(self):
        """Eviction drops the parser's caches; the pool re-seeds them."""
        items = build_items()
        reference = sequential_signatures(items)
        pool = create_pool("thread", make_parser())
        pool.parse_all(normalize(items))
        assert pool.registry_size() > 0
        olympics, medals = build_tables()
        for table in (olympics, medals):
            pool.parser.evict_table(table)
        assert len(pool.parser._candidate_cache) == 0
        # Clear the ranked-parse memo so the re-parse exercises the
        # candidate registry (the memo would short-circuit before it).
        pool._ranked.clear()
        results = pool.parse_all(normalize(items))
        assert [signature(parse) for parse, _ in results] == reference
        # The re-parse came from the warm registry, not regeneration:
        # the registry was re-seeded into the parser cache.
        assert len(pool.parser._candidate_cache) > 0

    def test_ranked_memo_invalidates_on_weight_change(self):
        items = build_items()[:2]
        pool = create_pool("thread", make_parser())
        pool.parse_all(normalize(items))
        assert pool.stats()["ranked"] == len(items)
        # New weights: the memo flushes and fresh parses rank with them,
        # exactly matching a from-scratch parser with the same weights.
        pool.parser.model.weights["op:Aggregate"] = 5.0
        results = pool.parse_all(normalize(items))
        fresh = make_parser()
        fresh.model.weights["op:Aggregate"] = 5.0
        expected = [signature(fresh.parse(q, t)) for q, t in items]
        assert [signature(parse) for parse, _ in results] == expected

    def test_batch_parser_rides_the_pool(self):
        items = build_items()
        reference = sequential_signatures(items)
        pool = create_pool("thread", make_parser())
        batch = BatchParser(pool.parser, pool=pool)
        report = batch.parse_all(items)
        assert report.backend == "thread"
        assert [signature(r.parse) for r in report] == reference
        assert pool.batches == 1


class TestProcessPoolPersistence:
    def test_bit_identical_and_pids_stable_across_batches(self):
        items = build_items()
        reference = sequential_signatures(items)
        with create_pool("process", make_parser()) as pool:
            first = pool.parse_all(normalize(items))
            pids = pool.pids()
            assert pids and all(pid is not None for pid in pids)
            second = pool.parse_all(normalize(items))
            assert pool.pids() == pids, "workers were not reused across batches"
            for results in (first, second):
                assert [signature(parse) for parse, _ in results] == reference

    def test_tables_ship_incrementally(self):
        items = build_items()
        with create_pool("process", make_parser()) as pool:
            pool.parse_all(normalize(items))
            first_shipped = pool.tables_shipped
            assert first_shipped >= len({t.fingerprint.digest for _, t in items})
            # The repeat batch ships nothing: every worker already holds
            # its pinned (and spilled) tables.
            pool.parse_all(normalize(items))
            assert pool.last_shipped == []
            assert pool.tables_shipped == first_shipped

    def test_mid_run_registered_table_ships_alone(self):
        """A table registered between batches crosses the pipe once —
        the rest of the corpus is never re-pickled."""
        olympics, medals = build_tables()
        olympics_digest = olympics.fingerprint.digest
        medals_digest = medals.fingerprint.digest
        first = [
            (q, t)
            for q, t in build_items()
            if t.fingerprint.digest == olympics_digest
        ]
        assert first
        with create_pool("process", make_parser()) as pool:
            pool.parse_all(normalize(first))
            assert pool.last_shipped == [olympics_digest]
            mixed = build_items()
            results = pool.parse_all(normalize(mixed))
            assert pool.last_shipped == [medals_digest]
            assert [signature(parse) for parse, _ in results] == (
                sequential_signatures(mixed)
            )

    def test_weights_resync_only_when_changed(self):
        items = build_items()[:2]
        with create_pool("process", make_parser()) as pool:
            pool.parse_all(normalize(items))
            pool.parser.model.weights["op:Aggregate"] = 5.0
            results = pool.parse_all(normalize(items))
            fresh = make_parser()
            fresh.model.weights["op:Aggregate"] = 5.0
            expected = [signature(fresh.parse(q, t)) for q, t in items]
            assert [signature(parse) for parse, _ in results] == expected

    def test_concurrent_batches_serialise_safely(self):
        items = build_items()
        reference = sequential_signatures(items)
        outcomes: dict = {}
        with create_pool("process", make_parser()) as pool:
            def run(tag):
                outcomes[tag] = pool.parse_all(normalize(items))
            threads = [
                threading.Thread(target=run, args=(tag,)) for tag in ("a", "b")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for tag in ("a", "b"):
            assert [signature(parse) for parse, _ in outcomes[tag]] == reference


class TestDeadlines:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_expired_items_come_back_as_deadline_exceeded_values(self, backend):
        """An already-expired deadline yields a ``DeadlineExceeded``
        *value* (never a raised exception) while the rest of the batch
        parses normally and stays bit-identical."""
        items = build_items()
        reference = sequential_signatures(items)
        expired = time.monotonic() - 1.0
        with create_pool(backend, make_parser()) as pool:
            batch = [
                BatchItem(
                    question=question,
                    table=table,
                    deadline=expired if index == 0 else None,
                )
                for index, (question, table) in enumerate(items)
            ]
            results = pool.parse_all(batch)
            first, _ = results[0]
            assert isinstance(first, DeadlineExceeded)
            for (result, _), expected in list(zip(results, reference))[1:]:
                assert signature(result) == expected
            assert pool.stats()["timeouts"] >= 1


class TestPoolClose:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_close_is_idempotent(self, backend):
        pool = create_pool(backend, make_parser())
        pool.parse_all(normalize(build_items()[:1]))
        pool.close()
        pool.close()  # must not raise, hang, or double-release
        with pytest.raises(RuntimeError):
            pool.parse_all(normalize(build_items()[:1]))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_concurrent_close_is_safe(self, backend):
        pool = create_pool(backend, make_parser())
        pool.parse_all(normalize(build_items()[:1]))
        errors: list = []

        def shutdown():
            try:
                pool.close()
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        threads = [threading.Thread(target=shutdown) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert pool._closed

    def test_close_reaps_worker_processes(self):
        pool = create_pool("process", make_parser())
        pool.parse_all(normalize(build_items()[:1]))
        processes = [worker.process for worker in pool._workers]
        assert all(process.is_alive() for process in processes)
        pool.close()
        for process in processes:
            assert not process.is_alive()


class TestShardAffinity:
    def test_pin_is_stable_and_in_range(self):
        pool = ProcessWorkerPool(make_parser(), max_workers=4)
        olympics, medals = build_tables()
        for table in (olympics, medals):
            digest = table.fingerprint.digest
            assert pool.pin(digest) == pool.pin(digest)
            assert 0 <= pool.pin(digest) < pool.workers

    def test_assignment_without_spill_is_pure_pinning(self):
        pool = ProcessWorkerPool(make_parser(), max_workers=4, spill=False)
        olympics, medals = build_tables()
        groups = {
            olympics.fingerprint.digest: [
                (olympics.fingerprint.digest, "q1", None),
                (olympics.fingerprint.digest, "q2", None),
            ],
            medals.fingerprint.digest: [(medals.fingerprint.digest, "q3", None)],
        }
        assignment = pool._assign(dict(groups))
        for digest, units in groups.items():
            worker = pool.pin(digest)
            assert assignment[worker][digest] == units

    def test_spill_is_deterministic(self):
        olympics, _ = build_tables()
        digest = olympics.fingerprint.digest
        units = [(digest, f"q{i}", None) for i in range(6)]
        assignments = [
            ProcessWorkerPool(make_parser(), max_workers=4)._assign(
                {digest: list(units)}
            )
            for _ in range(3)
        ]
        assert assignments[0] == assignments[1] == assignments[2]
        # The valve actually spilled: more than one worker holds units,
        # and nothing was lost or duplicated.
        spread = assignments[0]
        flat = [
            unit
            for worker_groups in spread.values()
            for group_units in worker_groups.values()
            for unit in group_units
        ]
        assert sorted(flat) == sorted(units)
        if ProcessWorkerPool(make_parser(), max_workers=4).workers > 1:
            assert len(spread) > 1
