"""Unit tests for interactive deployment and the hybrid answer policy."""

import pytest

from repro.dcs import builder as q, execute
from repro.interface import InteractiveDeployment, NLInterface
from repro.parser import EvaluationExample, SemanticParser
from repro.users import worker_pool


def make_example(table, question, gold_query):
    return EvaluationExample(
        question=question,
        table=table,
        gold_query=gold_query,
        gold_answer=tuple(execute(gold_query, table).answer_values()),
    )


@pytest.fixture
def examples(medals_table, shipwrecks_table):
    return [
        make_example(
            medals_table,
            "What was the Total of Fiji?",
            q.column_values("Total", q.column_records("Nation", "Fiji")),
        ),
        make_example(
            shipwrecks_table,
            "How many ships sank in Lake Huron?",
            q.count(q.column_records("Lake", "Lake Huron")),
        ),
        make_example(
            medals_table,
            "Who had the most gold?",
            q.column_values("Nation", q.argmax_records("Gold")),
        ),
    ]


class TestChoicePolicies:
    def test_always_none_falls_back_to_parser(self, examples):
        deployment = InteractiveDeployment(parser=SemanticParser(), k=7)
        outcome = deployment.answer_question(examples[0], choose=lambda shown: None)
        assert outcome.chosen_rank is None
        assert outcome.hybrid_correct == outcome.parser_correct

    def test_out_of_range_choice_treated_as_none(self, examples):
        deployment = InteractiveDeployment(parser=SemanticParser(), k=7)
        outcome = deployment.answer_question(examples[0], choose=lambda shown: 99)
        assert outcome.chosen_rank is None

    def test_choice_indexes_display_order(self, examples):
        deployment = InteractiveDeployment(parser=SemanticParser(), k=7, seed=3)
        outcome = deployment.answer_question(examples[0], choose=lambda shown: 0)
        assert outcome.chosen_rank == outcome.display_order[0]

    def test_returned_query_is_users_choice(self, examples):
        deployment = InteractiveDeployment(parser=SemanticParser(), k=7, seed=3)
        outcome = deployment.answer_question(examples[0], choose=lambda shown: 2)
        expected_rank = outcome.display_order[2]
        assert outcome.returned_query == outcome.response.parse.candidates[expected_rank].query


class TestOracleAndWorkers:
    def test_oracle_matches_bound(self, examples):
        deployment = InteractiveDeployment(parser=SemanticParser(), k=7)
        report = deployment.run_with_oracle(examples)
        assert report.user_correctness == report.correctness_bound
        assert report.hybrid_correctness >= report.parser_correctness

    def test_worker_report_orderings(self, examples):
        deployment = InteractiveDeployment(parser=SemanticParser(), k=7)
        worker = worker_pool(1, seed=11)[0]
        report = deployment.run_with_worker(examples, worker)
        assert report.total == len(examples)
        assert report.user_correctness <= report.correctness_bound + 1e-9
        assert report.hybrid_correctness <= report.correctness_bound + 1e-9

    def test_summary_keys(self, examples):
        deployment = InteractiveDeployment(parser=SemanticParser(), k=7)
        report = deployment.run_with_oracle(examples)
        assert {"examples", "parser", "users", "hybrid", "bound"} == set(report.summary())

    def test_interface_can_be_shared(self, examples):
        interface = NLInterface(k=7)
        deployment = InteractiveDeployment(interface=interface, k=7)
        report = deployment.run_with_oracle(examples[:1])
        assert report.total == 1
