"""Unit tests for parser training (weak and annotation supervision)."""

import pytest

from repro.dcs import builder as q, execute
from repro.parser import (
    SemanticParser,
    Trainer,
    TrainerConfig,
    TrainingExample,
    evaluate_parser,
    train_parser,
)


def make_training_example(table, question, gold_query, annotated=False):
    answer = tuple(execute(gold_query, table).answer_values())
    return TrainingExample(
        question=question,
        table=table,
        answer=answer,
        annotated_queries=(gold_query,) if annotated else (),
    )


@pytest.fixture
def weak_examples(medals_table, shipwrecks_table, roster_table):
    return [
        make_training_example(
            medals_table,
            "What was the total of Fiji?",
            q.column_values("Total", q.column_records("Nation", "Fiji")),
        ),
        make_training_example(
            medals_table,
            "Who had the most gold?",
            q.column_values("Nation", q.argmax_records("Gold")),
        ),
        make_training_example(
            shipwrecks_table,
            "How many ships sank in Lake Huron?",
            q.count(q.column_records("Lake", "Lake Huron")),
        ),
        make_training_example(
            roster_table,
            "What is the average games played?",
            q.avg(q.column_values("Games", q.all_records())),
        ),
    ]


class TestPreparation:
    def test_prepare_marks_weak_rewards(self, weak_examples):
        trainer = Trainer(SemanticParser())
        prepared = trainer.prepare(weak_examples[:1])
        assert prepared[0].weak_indices
        assert prepared[0].annotated_indices == []

    def test_prepare_marks_annotated_rewards(self, medals_table):
        gold = q.column_values("Total", q.column_records("Nation", "Fiji"))
        example = make_training_example(
            medals_table, "What was the total of Fiji?", gold, annotated=True
        )
        trainer = Trainer(SemanticParser())
        prepared = trainer.prepare([example])
        assert prepared[0].annotated_indices
        assert set(prepared[0].annotated_indices) <= set(prepared[0].weak_indices)

    def test_annotated_rewards_are_a_strict_subset_in_ambiguous_cases(self, seasons_table):
        gold = q.max_(q.column_values("Year", q.column_records("League", "USL A-League")))
        example = make_training_example(
            seasons_table,
            "What was the last year the team was in the USL A-League?",
            gold,
            annotated=True,
        )
        trainer = Trainer(SemanticParser())
        prepared = trainer.prepare([example])
        # weak supervision also rewards spurious candidates with the same answer
        assert len(prepared[0].weak_indices) >= len(prepared[0].annotated_indices) >= 1


class TestTrainingLoop:
    def test_training_improves_correctness(self, weak_examples):
        evaluation = [
            # reuse the same questions as a sanity check of fitting capacity
            example for example in weak_examples
        ]
        from repro.parser import EvaluationExample

        eval_examples = [
            EvaluationExample(
                question=example.question,
                table=example.table,
                gold_query=gold,
                gold_answer=example.answer,
            )
            for example, gold in zip(
                evaluation,
                [
                    q.column_values("Total", q.column_records("Nation", "Fiji")),
                    q.column_values("Nation", q.argmax_records("Gold")),
                    q.count(q.column_records("Lake", "Lake Huron")),
                    q.avg(q.column_values("Games", q.all_records())),
                ],
            )
        ]
        untrained_report = evaluate_parser(SemanticParser(), eval_examples, k=7)
        parser = train_parser(weak_examples, epochs=6, use_annotations=False, seed=1)
        trained_report = evaluate_parser(parser, eval_examples, k=7)
        assert trained_report.correctness >= untrained_report.correctness
        assert trained_report.mrr > untrained_report.mrr

    def test_training_stats_recorded(self, weak_examples):
        parser = SemanticParser()
        trainer = Trainer(parser, TrainerConfig(epochs=2, seed=0))
        stats = trainer.train(weak_examples)
        assert len(stats.epochs) == 2
        assert stats.total_examples == len(weak_examples)
        assert stats.epochs[0].examples_used == len(weak_examples)

    def test_log_likelihood_does_not_decrease_much(self, weak_examples):
        parser = SemanticParser()
        trainer = Trainer(parser, TrainerConfig(epochs=4, seed=0, shuffle=False))
        stats = trainer.train(weak_examples)
        assert stats.epochs[-1].mean_log_likelihood >= stats.epochs[0].mean_log_likelihood

    def test_examples_without_reward_are_skipped(self, medals_table):
        example = TrainingExample(
            question="What was the total of Atlantis?",
            table=medals_table,
            answer=(),
        )
        parser = SemanticParser()
        trainer = Trainer(parser)
        stats = trainer.train([example])
        assert stats.skipped_examples == 1
        assert stats.epochs == []

    def test_prepared_examples_can_be_reused(self, weak_examples):
        parser = SemanticParser()
        trainer = Trainer(parser, TrainerConfig(epochs=1))
        prepared = trainer.prepare(weak_examples)
        first = trainer.train(weak_examples, prepared=prepared)
        second = trainer.train(weak_examples, prepared=prepared)
        assert first.total_examples == second.total_examples


class TestAnnotationObjective:
    def test_annotations_tighten_the_reward_set(self, seasons_table):
        gold = q.max_(q.column_values("Year", q.column_records("League", "USL A-League")))
        annotated_example = make_training_example(
            seasons_table,
            "What was the last year the team was in the USL A-League?",
            gold,
            annotated=True,
        )
        weak_parser = train_parser(
            [
                TrainingExample(
                    question=annotated_example.question,
                    table=annotated_example.table,
                    answer=annotated_example.answer,
                )
            ],
            epochs=4,
            use_annotations=False,
            seed=2,
        )
        annotated_parser = train_parser(
            [annotated_example], epochs=4, use_annotations=True, seed=2
        )
        from repro.parser import EvaluationExample

        eval_example = EvaluationExample(
            question=annotated_example.question,
            table=seasons_table,
            gold_query=gold,
            gold_answer=annotated_example.answer,
        )
        weak_report = evaluate_parser(weak_parser, [eval_example], k=7)
        annotated_report = evaluate_parser(annotated_parser, [eval_example], k=7)
        assert annotated_report.mrr >= weak_report.mrr

    def test_annotated_count_in_stats(self, medals_table):
        gold = q.column_values("Total", q.column_records("Nation", "Fiji"))
        example = make_training_example(
            medals_table, "What was the total of Fiji?", gold, annotated=True
        )
        parser = SemanticParser()
        trainer = Trainer(parser, TrainerConfig(epochs=1, use_annotations=True))
        stats = trainer.train([example])
        assert stats.annotated_examples == 1
