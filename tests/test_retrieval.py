"""The corpus-retrieval layer (ISSUE 4): index, router, fallback contract.

Three layers of guarantees, each locked in here:

* **recall superset** — any shard the parser's lexicon could anchor an
  entity or column match on is retrieved by the corpus index (their term
  extraction is literally shared code, so this is checked directly
  against :class:`~repro.parser.lexicon.Lexicon` output);
* **guaranteed fallback** — no retrieval hits ⇒ full broadcast; pruning
  can narrow work, never erase answers (empty-index, no-hit, all-hit and
  evict-during-``ask_any`` cases);
* **ranking stability** — ``ask_any(prune=True)``'s top answer equals
  the broadcast top answer whenever the broadcast's winning shard is
  retrievable, property-tested over random catalogs and questions.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.parser.lexicon import Lexicon
from repro.retrieval import (
    CorpusIndex,
    ShardRouter,
    extract_question_terms,
    extract_shard_posting,
    extract_shard_postings,
)
from repro.tables import Table, TableCatalog


@pytest.fixture
def corpus(olympics_table, medals_table, roster_table):
    questions = {
        "olympics": "which country hosted in 2004",
        "medals": "how many gold did Fiji win",
        "roster": "which club has the most players",
    }
    return [olympics_table, medals_table, roster_table], questions


# ---------------------------------------------------------------------------
# the corpus index
# ---------------------------------------------------------------------------


class TestCorpusIndex:
    def test_postings_are_content_addressed_and_idempotent(self, olympics_table):
        index = CorpusIndex()
        first = index.add(olympics_table)
        again = index.add(olympics_table)
        assert first is again
        assert len(index) == 1
        assert olympics_table.fingerprint.digest in index

    def test_posting_covers_entities_headers_and_numbers(self, olympics_table):
        posting = extract_shard_posting(olympics_table)
        assert "greece" in posting.entity_keys
        assert "rio de janeiro" in posting.entity_keys
        assert {"rio", "de", "janeiro"} <= posting.entity_tokens
        assert {"year", "country", "city"} <= posting.header_tokens
        assert any(number.number == 2004 for number in posting.numbers)

    def test_scoring_hits_the_right_shard(self, corpus):
        tables, _ = corpus
        index = CorpusIndex()
        for table in tables:
            index.add(table)
        hits = index.score_question("which country hosted in 2004")
        digest = tables[0].fingerprint.digest
        assert digest in hits
        assert hits[digest].score > 0
        assert any(term.startswith("header:country") for term in hits[digest].matched)
        assert tables[2].fingerprint.digest not in hits

    def test_scoring_is_deterministic(self, corpus):
        tables, questions = corpus
        index = CorpusIndex()
        for table in tables:
            index.add(table)
        for question in questions.values():
            first = index.score_question(question)
            second = index.score_question(question)
            assert {d: (h.score, h.matched) for d, h in first.items()} == {
                d: (h.score, h.matched) for d, h in second.items()
            }

    def test_discard_removes_every_inverted_entry(self, corpus):
        tables, _ = corpus
        index = CorpusIndex()
        for table in tables:
            index.add(table)
        digest = tables[0].fingerprint.digest
        assert index.discard(digest)
        assert not index.discard(digest)  # already gone
        assert digest not in index
        for question in ("which country hosted in 2004", "Greece", "2004"):
            assert digest not in index.score_question(question)
        # The other shards' entries are untouched.
        assert tables[1].fingerprint.digest in index.score_question("Fiji gold")

    def test_recall_superset_of_lexicon_anchors(self, corpus):
        """Any (question, table) pair where the lexicon finds an entity or
        column match MUST be a retrieval hit — the recall contract."""
        tables, questions = corpus
        index = CorpusIndex()
        for table in tables:
            index.add(table)
        for table in tables:
            lexicon = Lexicon(table)
            for question in questions.values():
                analysis = lexicon.analyze(question)
                if analysis.entities or analysis.columns:
                    hits = index.score_question(question)
                    assert table.fingerprint.digest in hits, (
                        f"lexicon anchors {question!r} on {table.name} "
                        "but retrieval missed it"
                    )

    def test_question_terms_mirror_lexicon_normalization(self):
        terms = extract_question_terms("How many Gold did Fiji win in 2004?")
        assert "fiji" in terms.phrases
        assert "gold" in terms.phrases
        assert "in 2004" in terms.phrases  # spans may cross stop words
        assert "in" not in terms.phrases  # lone stop words are not probes
        assert any(number.number == 2004 for number in terms.numbers)


# ---------------------------------------------------------------------------
# the router and the fallback contract
# ---------------------------------------------------------------------------


class TestShardRouter:
    def test_empty_index_falls_back_to_broadcast(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        refs = catalog.register_all(tables)
        router = ShardRouter(CorpusIndex())  # nothing indexed
        decision = router.route("which country hosted in 2004", refs)
        assert decision.fallback
        assert decision.candidates == tuple(refs)
        assert decision.pruned == ()

    def test_no_hit_question_falls_back(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        catalog.register_all(tables)
        decision = catalog.routing("zyxgarblefrobnicate quux")
        assert decision.fallback
        assert decision.num_candidates == 3
        assert decision.num_pruned == 0

    def test_all_hit_question_keeps_every_shard(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        catalog.register_all(tables)
        # One anchor per fixture shard: an olympics entity, a medals
        # entity and a roster club.
        decision = catalog.routing("Greece Fiji Servette")
        assert not decision.fallback
        assert decision.num_candidates == 3
        assert decision.num_pruned == 0

    def test_partial_hit_question_prunes_the_rest(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        refs = catalog.register_all(tables)
        decision = catalog.routing("which country hosted in 2004")
        assert not decision.fallback
        assert refs[0] in decision.candidates
        assert refs[2] in decision.pruned

    def test_ranking_is_score_then_registration_order(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        refs = catalog.register_all(tables)
        decision = catalog.routing("which country hosted in 2004")
        scores = [scored.score for scored in decision.scored]
        assert scores == sorted(scores, reverse=True)
        # Zero-score shards keep registration order (stable sort).
        zeros = [s.ref for s in decision.scored if s.score == 0.0]
        assert zeros == [ref for ref in refs if ref in zeros]

    def test_max_candidates_caps_the_survivors(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        refs = catalog.register_all(tables)
        router = ShardRouter(catalog._index, max_candidates=1)
        decision = router.route("Greece Fiji United 10", refs)
        assert decision.num_candidates == 1

    def test_max_candidates_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(CorpusIndex(), max_candidates=0)
        catalog = TableCatalog()
        with pytest.raises(ValueError):
            catalog.routing("anything", max_candidates=0)

    def test_per_call_cap_overrides_router_default(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        catalog.register_all(tables)
        capped = catalog.routing("Greece Fiji Servette", max_candidates=2)
        assert not capped.fallback
        assert capped.num_candidates == 2
        assert capped.num_pruned == 1
        # The capped decision only carries the survivors' scores.
        assert len(capped.scored) == 2

    def test_capped_zero_hit_question_still_falls_back(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        refs = catalog.register_all(tables)
        capped = catalog.routing("zyxgarblefrobnicate quux", max_candidates=1)
        full = catalog.routing("zyxgarblefrobnicate quux")
        assert capped.fallback
        assert capped.candidates == tuple(refs) == full.candidates
        assert capped.scored == full.scored


# ---------------------------------------------------------------------------
# bulk extraction and the heap-routing hot path
# ---------------------------------------------------------------------------


class TestBulkExtraction:
    def test_batch_postings_match_per_table_extraction(self, corpus):
        """The batch-memoized extractor is bit-identical to mapping
        extract_shard_posting over the tables — memoization is a pure
        cache, never a semantic change."""
        tables, _ = corpus
        batch = extract_shard_postings(tables)
        singles = [extract_shard_posting(table) for table in tables]
        assert batch == singles

    def test_register_many_builds_the_same_index_as_register_all(self, corpus):
        tables, _ = corpus
        sequential = TableCatalog()
        sequential.register_all(tables)
        bulk = TableCatalog()
        refs = bulk.register_many(tables)
        assert bulk._index.snapshot() == sequential._index.snapshot()
        assert [ref.digest for ref in refs] == [
            ref.digest for ref in sequential.refs()
        ]

    def test_register_many_rejects_conflicts_before_mutating(self, corpus):
        from repro.tables.catalog import NameConflictError

        tables, _ = corpus
        catalog = TableCatalog()
        catalog.register(tables[0], name="taken")
        with pytest.raises(NameConflictError):
            catalog.register_many(tables[1:], names=["fresh", "taken"])
        # Atomic: the non-conflicting table was NOT registered.
        assert len(catalog) == 1
        assert [ref.name for ref in catalog.refs()] == ["taken"]

    def test_postings_size_counters_track_add_and_discard(self, corpus):
        tables, _ = corpus
        index = CorpusIndex()
        empty = index.stats()
        assert empty["postings_terms"] == 0 and empty["postings_bytes"] == 0

        postings = [index.add(table) for table in tables]
        stats = index.stats()
        assert stats["postings_terms"] == sum(p.num_terms for p in postings)
        assert stats["postings_bytes"] == sum(p.nbytes for p in postings)

        index.discard(tables[0].fingerprint.digest)
        after = index.stats()
        assert after["postings_terms"] == sum(p.num_terms for p in postings[1:])
        assert after["postings_bytes"] == sum(p.nbytes for p in postings[1:])

    def test_catalog_stats_mirror_postings_counters(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        catalog.register_many(tables)
        retrieval = catalog.stats()["retrieval"]
        index_stats = catalog._index.stats()
        assert retrieval["postings_terms"] == index_stats["postings_terms"]
        assert retrieval["postings_bytes"] == index_stats["postings_bytes"]
        assert retrieval["postings_bytes"] > 0


class TestEvictionInteraction:
    def test_pruned_out_evicted_shards_stay_on_disk(self, corpus, tmp_path):
        """The ISSUE 4 regression: ask_any must not rehydrate evicted
        shards that retrieval pruned out."""
        tables, _ = corpus
        catalog = TableCatalog(cache_dir=str(tmp_path), max_hot_shards=1)
        catalog.register_all(tables)  # LRU keeps only roster hot
        assert catalog.is_hot("roster")
        assert not catalog.is_hot("olympics") and not catalog.is_hot("medals")

        answer = catalog.ask_any("which club has the most players")
        assert answer.best_ref.name == "roster"
        assert answer.shards_parsed == 1
        # The evicted shards were pruned, not rehydrated-and-ranked-last.
        assert catalog.stats()["rehydrations"] == 0
        assert not catalog.is_hot("olympics") and not catalog.is_hot("medals")

    def test_evicted_shard_with_hits_rehydrates_during_ask_any(
        self, corpus, tmp_path
    ):
        tables, _ = corpus
        catalog = TableCatalog(cache_dir=str(tmp_path), max_hot_shards=1)
        catalog.register_all(tables)
        assert not catalog.is_hot("olympics")

        answer = catalog.ask_any("which country hosted in 2004")
        assert answer.best_ref.name == "olympics"
        assert answer.answer == ("Greece",)
        assert catalog.stats()["rehydrations"] >= 1

    def test_evict_during_ask_any_workload_keeps_answers(self, corpus, tmp_path):
        """Interleaving evictions with corpus-wide asks never changes
        answers — postings outlive eviction, parsing rehydrates on hit."""
        tables, questions = corpus
        reference = TableCatalog()
        reference.register_all(tables)
        expected = {
            question: reference.ask_any(question).answer
            for question in questions.values()
        }

        catalog = TableCatalog(cache_dir=str(tmp_path))
        catalog.register_all(tables)
        for name, question in questions.items():
            catalog.evict(name)  # the shard the question targets goes cold
            answer = catalog.ask_any(question)
            assert answer.answer == expected[question]


# ---------------------------------------------------------------------------
# the property: pruned top == broadcast top whenever retrievable
# ---------------------------------------------------------------------------

WORDS = ["lyra", "vega", "altair", "deneb", "rigel", "sirius", "capella", "mizar"]
HEADERS = [["Star", "Magnitude"], ["City", "People"], ["Team", "Points"]]


@st.composite
def catalogs_and_questions(draw):
    """A random multi-table catalog plus a question mixing shard terms
    and noise — sometimes anchorable, sometimes not."""
    num_tables = draw(st.integers(min_value=2, max_value=4))
    tables = []
    for position in range(num_tables):
        headers = draw(st.sampled_from(HEADERS))
        num_rows = draw(st.integers(min_value=2, max_value=4))
        names = draw(
            st.lists(
                st.sampled_from(WORDS), min_size=num_rows, max_size=num_rows,
                unique=True,
            )
        )
        numbers = draw(
            st.lists(
                st.integers(min_value=1, max_value=50),
                min_size=num_rows,
                max_size=num_rows,
            )
        )
        tables.append(
            Table(
                columns=list(headers),
                rows=[[name, number] for name, number in zip(names, numbers)],
                name=f"shard-{position}",
            )
        )
    # Question: a few tokens drawn from shard vocabulary + pure noise.
    vocab = sorted({word for table in tables for word in
                    (cell.value.display().lower() for record in table.records
                     for cell in record.cells)})
    num_terms = draw(st.integers(min_value=0, max_value=3))
    terms = draw(
        st.lists(st.sampled_from(vocab), min_size=num_terms, max_size=num_terms)
        if vocab and num_terms
        else st.just([])
    )
    noise = draw(
        st.lists(
            st.text(alphabet=string.ascii_lowercase, min_size=4, max_size=8),
            min_size=0,
            max_size=2,
        )
    )
    question = " ".join(["what is"] + terms + noise) or "what"
    return tables, question


class TestPrunedMatchesBroadcastProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(catalogs_and_questions())
    def test_pruned_top_matches_broadcast_when_retrievable(self, case):
        tables, question = case
        catalog = TableCatalog()
        catalog.register_all(tables)
        broadcast = catalog.ask_any(question, prune=False)
        pruned = catalog.ask_any(question, prune=True)

        # Fallback contract: pruning never empties the answer set when a
        # broadcast would have found one.
        if broadcast.ranked:
            assert pruned.ranked

        top_ref = broadcast.best_ref
        if top_ref is not None and pruned.routing.is_candidate(top_ref.digest):
            assert pruned.best_ref == top_ref
            assert pruned.answer == broadcast.answer

        # Survivor responses are bit-identical to their broadcast runs —
        # pruning changes which shards parse, never how they parse.
        broadcast_by_digest = {
            ref.digest: response for ref, response in broadcast.ranked
        }
        for ref, response in pruned.ranked:
            reference = broadcast_by_digest[ref.digest]
            assert [item.answer for item in response.explained] == [
                item.answer for item in reference.explained
            ]

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(catalogs_and_questions(), st.integers(min_value=1, max_value=5))
    def test_heap_top_n_equals_full_ranking_prefix(self, case, cap):
        """The heap hot path is an optimization, not a reranking: the
        capped decision's candidates are exactly the first N of the full
        deterministic ranking, with identical scores and matched terms."""
        tables, question = case
        catalog = TableCatalog()
        catalog.register_all(tables)
        full = catalog.routing(question)
        capped = catalog.routing(question, max_candidates=cap)

        assert capped.fallback == full.fallback
        if capped.fallback:
            # Zero-hit: the capped route degrades to the identical
            # broadcast decision.
            assert capped.candidates == full.candidates
            assert capped.scored == full.scored
            return

        survivors = full.candidates[:cap]
        assert capped.candidates == survivors
        assert set(capped.pruned) == set(full.candidates[cap:]) | set(full.pruned)
        full_by_digest = {s.ref.digest: s for s in full.scored}
        for scored in capped.scored:
            reference = full_by_digest[scored.ref.digest]
            assert scored.score == reference.score
            assert scored.matched == reference.matched

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(catalogs_and_questions(), st.integers(min_value=1, max_value=5))
    def test_capped_ask_any_matches_broadcast_when_gold_survives(self, case, cap):
        """Top-N pruned ask_any is bit-identical to broadcast at the top
        whenever the broadcast's winning shard survived the cap."""
        tables, question = case
        catalog = TableCatalog()
        catalog.register_all(tables)
        broadcast = catalog.ask_any(question, prune=False)
        capped = catalog.ask_any(question, max_candidates=cap)

        if broadcast.ranked:
            assert capped.ranked  # fallback contract survives the cap

        top_ref = broadcast.best_ref
        if top_ref is not None and capped.routing.is_candidate(top_ref.digest):
            assert capped.best_ref == top_ref
            assert capped.answer == broadcast.answer
