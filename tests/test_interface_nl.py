"""Unit tests for the NL interface (parse + explain)."""

import pytest

from repro.interface import NLInterface
from repro.parser import SemanticParser


class TestAsk:
    def test_returns_explained_candidates(self, medals_table):
        interface = NLInterface(k=5)
        response = interface.ask("What was the Total of Fiji?", medals_table)
        assert 0 < len(response.explained) <= 5
        assert response.top is not None
        assert response.top.utterance
        assert response.top.answer

    def test_ranks_match_parser_order(self, medals_table):
        interface = NLInterface(k=7)
        response = interface.ask("Who had the most gold?", medals_table)
        for rank, item in enumerate(response.explained):
            assert item.rank == rank
            assert item.candidate.sexpr == response.parse.candidates[rank].sexpr

    def test_explanations_have_highlights(self, medals_table):
        interface = NLInterface(k=3)
        response = interface.ask("What was the Total of Fiji?", medals_table)
        for item in response.explained:
            assert item.explanation.highlighted.summary()["colored"] >= 1

    def test_timing_fields_populated(self, medals_table):
        interface = NLInterface(k=3)
        response = interface.ask("What was the Total of Fiji?", medals_table)
        assert response.parse_seconds > 0
        assert response.explain_seconds > 0

    def test_k_override(self, medals_table):
        interface = NLInterface(k=7)
        response = interface.ask("What was the Total of Fiji?", medals_table, k=2)
        assert len(response.explained) <= 2

    def test_as_text_contains_question_and_utterances(self, medals_table):
        interface = NLInterface(k=3)
        response = interface.ask("What was the Total of Fiji?", medals_table)
        text = response.as_text()
        assert "What was the Total of Fiji?" in text
        assert "candidate 1" in text

    def test_explanation_generators_cached_per_table(self, medals_table, olympics_table):
        interface = NLInterface(k=2)
        interface.ask("total of Fiji", medals_table)
        interface.ask("total of Fiji again", medals_table)
        interface.ask("when did Greece host", olympics_table)
        assert len(interface._generators) == 2

    def test_custom_parser_injected(self, medals_table):
        parser = SemanticParser()
        parser.model.weights = {"trigger:count:match": 3.0}
        interface = NLInterface(parser=parser, k=3)
        response = interface.ask("How many nations are there?", medals_table)
        assert response.parse.top is not None
