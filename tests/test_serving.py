"""Tests for the asyncio serving layer (ISSUE 3).

The acceptance bar: >= 8 concurrent sessions with order-stable outputs,
bit-identical to the sequential path, plus the TCP front end and the
serving bench integrity sweep.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.interface import NLInterface
from repro.tables import CatalogError, TableCatalog
from repro.serving import AsyncServer, ServerClosed, answer_payload, run_serving_bench


@pytest.fixture
def corpus(olympics_table, medals_table, roster_table):
    questions = {
        "olympics": "which country hosted in 2004",
        "medals": "how many gold did Fiji win",
        "roster": "which club has the most players",
    }
    return [olympics_table, medals_table, roster_table], questions


@pytest.fixture
def catalog(corpus):
    tables, _ = corpus
    catalog = TableCatalog()
    catalog.register_all(tables)
    return catalog


def _signature(response):
    return [
        (item.rank, item.answer, item.utterance, item.candidate.sexpr, item.candidate.score)
        for item in response.explained
    ]


class TestAsyncServer:
    def test_concurrent_sessions_are_order_stable_and_bit_identical(
        self, corpus, catalog
    ):
        """Acceptance: >= 8 concurrent sessions, outputs identical to the
        sequential NLInterface path, per-session order preserved."""
        tables, questions = corpus
        workload = [(questions[table.name], table.name) for table in tables] * 2

        reference_interface = NLInterface()
        reference = [
            _signature(reference_interface.ask(question, tables[i % 3]))
            for i, (question, _) in enumerate(workload)
        ]

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                sessions = [server.run_session(workload) for _ in range(8)]
                return await asyncio.gather(*sessions), server.stats.as_dict()

        per_session, stats = asyncio.run(drive())
        assert len(per_session) == 8
        for answers in per_session:
            assert [_signature(response) for response in answers] == reference
        assert stats["requests"] == 8 * len(workload)
        assert stats["errors"] == 0
        # Shard-affinity batching composed every batch (a group per
        # distinct shard, never more groups than requests) — and, per the
        # assertions above, changed no output.
        assert stats["batches"] <= stats["shard_groups"] <= stats["requests"]

    def test_batches_are_composed_with_shard_affinity(self, corpus, catalog):
        """Within one dispatcher batch, requests reach ask_many grouped by
        resolved shard (contiguous digest runs), in arrival order within
        each run — and answers still come back request-aligned."""
        tables, questions = corpus
        observed: list = []
        inner_ask_many = catalog.ask_many

        def recording_ask_many(items, **kwargs):
            observed.append([ref.digest for _, ref in items])
            return inner_ask_many(items, **kwargs)

        catalog.ask_many = recording_ask_many
        # Interleave shards so arrival order is maximally un-grouped.
        interleaved = [
            (questions[table.name], table.name)
            for _ in range(3)
            for table in tables
        ]

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                return await server.ask_gathered(interleaved)

        answers = asyncio.run(drive())
        catalog.ask_many = inner_ask_many
        for (question, name), response in zip(interleaved, answers):
            assert _signature(response) == _signature(catalog.ask(question, name))
        for batch_digests in observed:
            runs = [
                digest
                for i, digest in enumerate(batch_digests)
                if i == 0 or digest != batch_digests[i - 1]
            ]
            assert len(runs) == len(set(runs)), (
                f"batch not grouped by shard: {batch_digests}"
            )

    def test_micro_batching_merges_concurrent_arrivals(self, corpus, catalog):
        _, questions = corpus

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                await asyncio.gather(
                    *(
                        server.ask(questions["olympics"], "olympics")
                        for _ in range(12)
                    )
                )
                return server.stats.as_dict()

        stats = asyncio.run(drive())
        assert stats["requests"] == 12
        # At least some arrivals were merged (the first batch may be 1).
        assert stats["batches"] < 12

    def test_ask_gathered_is_index_aligned(self, corpus, catalog):
        tables, questions = corpus
        items = [(questions[table.name], table.name) for table in tables]

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                return await server.ask_gathered(items)

        answers = asyncio.run(drive())
        for (question, name), response in zip(items, answers):
            assert _signature(response) == _signature(catalog.ask(question, name))

    def test_mixed_k_requests_keep_their_own_k(self, corpus, catalog):
        _, questions = corpus

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                return await asyncio.gather(
                    server.ask(questions["olympics"], "olympics", k=2),
                    server.ask(questions["olympics"], "olympics", k=5),
                )

        small, large = asyncio.run(drive())
        assert len(small.explained) == 2
        assert len(large.explained) == 5

    def test_corpus_wide_routing(self, corpus, catalog):
        tables, questions = corpus

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                return await server.ask(questions["olympics"])  # no table

        answer = asyncio.run(drive())
        assert answer.best_ref.digest == tables[0].fingerprint.digest
        assert answer.answer == ("Greece",)

    def test_unknown_ref_fails_only_its_own_request(self, corpus, catalog):
        _, questions = corpus

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                return await asyncio.gather(
                    server.ask(questions["olympics"], "olympics"),
                    server.ask(questions["olympics"], "atlantis"),
                    server.ask(questions["medals"], "medals"),
                    return_exceptions=True,
                )

        good, bad, also_good = asyncio.run(drive())
        assert good.top.answer == ("Greece",)
        assert isinstance(bad, CatalogError)
        assert also_good.top is not None

    def test_stop_fails_queued_requests(self, corpus, catalog):
        _, questions = corpus

        async def drive():
            server = AsyncServer(catalog, max_workers=4)
            await server.start()
            # Enqueue without giving the dispatcher a chance to finish,
            # then stop: the pending future must fail, not hang.
            task = asyncio.get_running_loop().create_task(
                server.ask(questions["olympics"], "olympics")
            )
            await asyncio.sleep(0)
            await server.stop()
            with pytest.raises(ServerClosed):
                await asyncio.wait_for(task, timeout=10)

        asyncio.run(drive())


class TestAnswerPayload:
    def test_single_table_payload(self, corpus, catalog):
        _, questions = corpus
        payload = answer_payload(catalog.ask(questions["olympics"], "olympics"))
        assert payload["ok"] is True
        assert payload["routed"] == "table"
        assert payload["answer"] == ["Greece"]
        assert payload["candidates"] >= 1
        json.dumps(payload)  # wire-serialisable

    def test_corpus_wide_payload(self, corpus, catalog):
        _, questions = corpus
        payload = answer_payload(catalog.ask_any(questions["olympics"]))
        assert payload["ok"] is True
        assert payload["routed"] == "any"
        assert payload["answer"] == ["Greece"]
        # The retrieve-then-parse pipeline: only parsed shards are ranked,
        # and the payload reports the routing decision.
        assert payload["pruned"] is True
        assert payload["fallback"] is False
        assert len(payload["ranked"]) == payload["shards_parsed"]
        assert payload["shards_parsed"] + payload["shards_pruned"] == 3
        json.dumps(payload)

    def test_corpus_wide_payload_broadcast(self, corpus, catalog):
        _, questions = corpus
        payload = answer_payload(
            catalog.ask_any(questions["olympics"], prune=False)
        )
        assert payload["pruned"] is False
        assert len(payload["ranked"]) == 3
        assert payload["shards_pruned"] == 0
        json.dumps(payload)


class TestTcpEndpoint:
    def test_json_lines_roundtrip(self, corpus, catalog):
        tables, questions = corpus

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                try:
                    tcp = await server.serve(host="127.0.0.1", port=0)
                except OSError as error:  # pragma: no cover - sandboxed CI
                    pytest.skip(f"cannot bind a loopback socket: {error}")
                port = tcp.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)

                async def call(request) -> dict:
                    data = request if isinstance(request, bytes) else (
                        json.dumps(request).encode("utf-8")
                    )
                    writer.write(data + b"\n")
                    await writer.drain()
                    return json.loads(await reader.readline())

                assert (await call({"op": "ping"}))["pong"] is True

                listing = await call({"op": "list"})
                assert {entry["name"] for entry in listing["tables"]} == {
                    table.name for table in tables
                }

                routed = await call(
                    {"question": questions["olympics"], "table": "olympics"}
                )
                assert routed["answer"] == ["Greece"]

                anywhere = await call({"question": questions["olympics"]})
                assert anywhere["routed"] == "any"
                assert anywhere["answer"] == ["Greece"]

                stats = await call({"op": "stats"})
                assert stats["catalog"]["shards"] == 3
                assert stats["server"]["requests"] >= 2

                unknown = await call({"question": "x", "table": "atlantis"})
                assert unknown["ok"] is False

                garbage = await call(b"not json")
                assert garbage["ok"] is False

                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

        asyncio.run(drive())


@pytest.mark.bench_smoke
class TestServingBenchSmoke:
    def test_serving_bench_stays_bit_identical(self, corpus, tmp_path):
        """The serving harness sweep: sequential vs async vs hot-set
        eviction, every mode bit-identical to the reference."""
        tables, questions = corpus
        pairs = [(questions[table.name], table) for table in tables]
        report = run_serving_bench(
            pairs,
            sessions=4,
            workers=4,
            repeats=2,
            disk_cache_dir=str(tmp_path),
            max_hot_shards=2,
        )
        assert set(report.modes) == {"sequential", "async", "async_hotset"}
        assert all(timing.identical for timing in report.modes.values())
        hotset = report.modes["async_hotset"]
        assert hotset.catalog_stats["evictions"] >= 1
        # The route mode ran and upheld the fallback contract; on this
        # disjoint-content corpus pruning parsed strictly fewer shards.
        assert report.route is not None
        assert report.route.top_answers_match
        assert report.route.strictly_fewer
        payload = report.to_payload()
        assert payload["schema"] == "repro-bench-serve-v2"
        assert payload["route"]["top_answers_match"] is True
        assert payload["route"]["strictly_fewer"] is True
        assert set(payload["timings"]["route"]) == {
            "broadcast_seconds", "pruned_seconds", "speedup"
        }
        json.dumps(payload)
