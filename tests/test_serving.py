"""Tests for the asyncio serving layer (ISSUE 3).

The acceptance bar: >= 8 concurrent sessions with order-stable outputs,
bit-identical to the sequential path, plus the TCP front end and the
serving bench integrity sweep.
"""

from __future__ import annotations

import asyncio
import json

import pytest

import warnings

from repro.api import ReproEngine
from repro.api.wire import v1_answer_payload
from repro.interface import NLInterface
from repro.tables import CatalogError, TableCatalog
from repro.serving import AsyncServer, ServerClosed, answer_payload, run_serving_bench


@pytest.fixture
def corpus(olympics_table, medals_table, roster_table):
    questions = {
        "olympics": "which country hosted in 2004",
        "medals": "how many gold did Fiji win",
        "roster": "which club has the most players",
    }
    return [olympics_table, medals_table, roster_table], questions


@pytest.fixture
def catalog(corpus):
    tables, _ = corpus
    catalog = TableCatalog()
    catalog.register_all(tables)
    return catalog


def _signature(response):
    return [
        (item.rank, item.answer, item.utterance, item.candidate.sexpr, item.candidate.score)
        for item in response.explained
    ]


class TestAsyncServer:
    def test_concurrent_sessions_are_order_stable_and_bit_identical(
        self, corpus, catalog
    ):
        """Acceptance: >= 8 concurrent sessions, outputs identical to the
        sequential NLInterface path, per-session order preserved."""
        tables, questions = corpus
        workload = [(questions[table.name], table.name) for table in tables] * 2

        reference_interface = NLInterface()
        reference = [
            _signature(reference_interface.ask(question, tables[i % 3]))
            for i, (question, _) in enumerate(workload)
        ]

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                sessions = [server.run_session(workload) for _ in range(8)]
                return await asyncio.gather(*sessions), server.stats.as_dict()

        per_session, stats = asyncio.run(drive())
        assert len(per_session) == 8
        for answers in per_session:
            assert [_signature(response) for response in answers] == reference
        assert stats["requests"] == 8 * len(workload)
        assert stats["errors"] == 0
        # Shard-affinity batching composed every batch (a group per
        # distinct shard, never more groups than requests) — and, per the
        # assertions above, changed no output.
        assert stats["batches"] <= stats["shard_groups"] <= stats["requests"]

    def test_batches_are_composed_with_shard_affinity(self, corpus, catalog):
        """Within one dispatcher batch, requests reach ask_many grouped by
        resolved shard (contiguous digest runs), in arrival order within
        each run — and answers still come back request-aligned."""
        tables, questions = corpus
        observed: list = []
        inner_ask_many = catalog.ask_many

        def recording_ask_many(items, **kwargs):
            observed.append([ref.digest for _, ref in items])
            return inner_ask_many(items, **kwargs)

        catalog.ask_many = recording_ask_many
        # Interleave shards so arrival order is maximally un-grouped.
        interleaved = [
            (questions[table.name], table.name)
            for _ in range(3)
            for table in tables
        ]

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                return await server.ask_gathered(interleaved)

        answers = asyncio.run(drive())
        catalog.ask_many = inner_ask_many
        for (question, name), response in zip(interleaved, answers):
            assert _signature(response) == _signature(catalog.ask(question, name))
        for batch_digests in observed:
            runs = [
                digest
                for i, digest in enumerate(batch_digests)
                if i == 0 or digest != batch_digests[i - 1]
            ]
            assert len(runs) == len(set(runs)), (
                f"batch not grouped by shard: {batch_digests}"
            )

    def test_micro_batching_merges_concurrent_arrivals(self, corpus, catalog):
        _, questions = corpus

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                await asyncio.gather(
                    *(
                        server.ask(questions["olympics"], "olympics")
                        for _ in range(12)
                    )
                )
                return server.stats.as_dict()

        stats = asyncio.run(drive())
        assert stats["requests"] == 12
        # At least some arrivals were merged (the first batch may be 1).
        assert stats["batches"] < 12

    def test_ask_gathered_is_index_aligned(self, corpus, catalog):
        tables, questions = corpus
        items = [(questions[table.name], table.name) for table in tables]

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                return await server.ask_gathered(items)

        answers = asyncio.run(drive())
        for (question, name), response in zip(items, answers):
            assert _signature(response) == _signature(catalog.ask(question, name))

    def test_mixed_k_requests_keep_their_own_k(self, corpus, catalog):
        _, questions = corpus

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                return await asyncio.gather(
                    server.ask(questions["olympics"], "olympics", k=2),
                    server.ask(questions["olympics"], "olympics", k=5),
                )

        small, large = asyncio.run(drive())
        assert len(small.explained) == 2
        assert len(large.explained) == 5

    def test_corpus_wide_routing(self, corpus, catalog):
        tables, questions = corpus

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                return await server.ask(questions["olympics"])  # no table

        answer = asyncio.run(drive())
        assert answer.best_ref.digest == tables[0].fingerprint.digest
        assert answer.answer == ("Greece",)

    def test_unknown_ref_fails_only_its_own_request(self, corpus, catalog):
        _, questions = corpus

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                return await asyncio.gather(
                    server.ask(questions["olympics"], "olympics"),
                    server.ask(questions["olympics"], "atlantis"),
                    server.ask(questions["medals"], "medals"),
                    return_exceptions=True,
                )

        good, bad, also_good = asyncio.run(drive())
        assert good.top.answer == ("Greece",)
        assert isinstance(bad, CatalogError)
        assert also_good.top is not None

    def test_hard_stop_fails_queued_requests(self, corpus, catalog):
        _, questions = corpus

        async def drive():
            server = AsyncServer(catalog, max_workers=4)
            await server.start()
            # Enqueue without giving the dispatcher a chance to finish,
            # then hard-stop: the pending future must fail, not hang.
            task = asyncio.get_running_loop().create_task(
                server.ask(questions["olympics"], "olympics")
            )
            await asyncio.sleep(0)
            await server.stop(drain=False)
            with pytest.raises(ServerClosed):
                await asyncio.wait_for(task, timeout=10)

        asyncio.run(drive())

    def test_graceful_stop_drains_accepted_requests(self, corpus, catalog):
        """The default stop() finishes accepted work before closing —
        an enqueued request gets its real answer, while a request
        arriving *during* the drain is turned away with ServerClosed."""
        _, questions = corpus

        async def drive():
            server = AsyncServer(catalog, max_workers=4)
            await server.start()
            task = asyncio.get_running_loop().create_task(
                server.ask(questions["olympics"], "olympics")
            )
            await asyncio.sleep(0)
            await server.stop()
            answer = await asyncio.wait_for(task, timeout=10)
            assert answer.top.answer == ("Greece",)
            # While a drain is in progress, new work is turned away.
            server._draining = True
            with pytest.raises(ServerClosed):
                await server.ask(questions["olympics"], "olympics")
            server._draining = False
            # After the drain finishes, lazy restart works again.
            again = await server.ask(questions["olympics"], "olympics")
            assert again.top.answer == ("Greece",)
            await server.stop()

        asyncio.run(drive())


class TestAnswerPayload:
    def test_deprecated_shim_warns_and_delegates(self, corpus, catalog):
        """repro.serving.answer_payload survives as a warning shim over
        the frozen v1 codec in repro.api.wire."""
        _, questions = corpus
        answer = catalog.ask(questions["olympics"], "olympics")
        with pytest.warns(DeprecationWarning, match="v1_answer_payload"):
            shimmed = answer_payload(answer)
        assert shimmed == v1_answer_payload(answer)

    def test_single_table_payload(self, corpus, catalog):
        _, questions = corpus
        payload = v1_answer_payload(catalog.ask(questions["olympics"], "olympics"))
        assert payload["ok"] is True
        assert payload["routed"] == "table"
        assert payload["answer"] == ["Greece"]
        assert payload["candidates"] >= 1
        json.dumps(payload)  # wire-serialisable

    def test_corpus_wide_payload(self, corpus, catalog):
        _, questions = corpus
        payload = v1_answer_payload(catalog.ask_any(questions["olympics"]))
        assert payload["ok"] is True
        assert payload["routed"] == "any"
        assert payload["answer"] == ["Greece"]
        # The retrieve-then-parse pipeline: only parsed shards are ranked,
        # and the payload reports the routing decision.
        assert payload["pruned"] is True
        assert payload["fallback"] is False
        assert len(payload["ranked"]) == payload["shards_parsed"]
        assert payload["shards_parsed"] + payload["shards_pruned"] == 3
        json.dumps(payload)

    def test_corpus_wide_payload_broadcast(self, corpus, catalog):
        _, questions = corpus
        payload = v1_answer_payload(
            catalog.ask_any(questions["olympics"], prune=False)
        )
        assert payload["pruned"] is False
        assert len(payload["ranked"]) == 3
        assert payload["shards_pruned"] == 0
        json.dumps(payload)


class TestTcpEndpoint:
    def test_json_lines_roundtrip(self, corpus, catalog):
        tables, questions = corpus

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                try:
                    tcp = await server.serve(host="127.0.0.1", port=0)
                except OSError as error:  # pragma: no cover - sandboxed CI
                    pytest.skip(f"cannot bind a loopback socket: {error}")
                port = tcp.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)

                async def call(request) -> dict:
                    data = request if isinstance(request, bytes) else (
                        json.dumps(request).encode("utf-8")
                    )
                    writer.write(data + b"\n")
                    await writer.drain()
                    return json.loads(await reader.readline())

                assert (await call({"op": "ping"}))["pong"] is True

                listing = await call({"op": "list"})
                assert {entry["name"] for entry in listing["tables"]} == {
                    table.name for table in tables
                }

                routed = await call(
                    {"question": questions["olympics"], "table": "olympics"}
                )
                assert routed["answer"] == ["Greece"]

                anywhere = await call({"question": questions["olympics"]})
                assert anywhere["routed"] == "any"
                assert anywhere["answer"] == ["Greece"]

                stats = await call({"op": "stats"})
                assert stats["catalog"]["shards"] == 3
                assert stats["server"]["requests"] >= 2

                unknown = await call({"question": "x", "table": "atlantis"})
                assert unknown["ok"] is False

                garbage = await call(b"not json")
                assert garbage["ok"] is False

                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

        asyncio.run(drive())


class TestServingRaceRegressions:
    """The stop()/ask() races and thread-placement contracts."""

    def test_ask_racing_stop_is_server_closed_never_attribute_error(
        self, corpus, catalog
    ):
        """Regression: a stop() landing while asks were in flight used to
        surface as ``AttributeError: 'NoneType' object has no attribute
        'put'`` on the nulled queue.  Every racing ask must now end in a
        real answer or a clean ServerClosed."""
        _, questions = corpus

        async def drive():
            server = AsyncServer(catalog, max_workers=2)
            await server.start()

            async def one_ask():
                try:
                    return await server.ask(questions["olympics"], "olympics")
                except ServerClosed as error:
                    return error

            tasks = [
                asyncio.get_running_loop().create_task(one_ask())
                for _ in range(8)
            ]
            await asyncio.sleep(0)
            await server.stop()
            outcomes = await asyncio.gather(*tasks)
            # A straggler ask may have lazily restarted the dispatcher;
            # tear it down again so nothing outlives the loop.
            await server.stop()
            return outcomes

        for outcome in asyncio.run(drive()):
            assert isinstance(outcome, ServerClosed) or outcome.top is not None

    def test_stop_nulling_queue_between_start_and_capture(self, corpus, catalog):
        """The exact historical interleaving, pinned deterministically:
        stop() nulls the queue after ask()'s lazy start() returns but
        before the queue reference is captured."""
        _, questions = corpus

        async def drive():
            server = AsyncServer(catalog)
            await server.start()
            real_start = server.start

            async def start_then_lose_queue():
                await real_start()
                server._queue = None  # what the concurrent stop() does

            server.start = start_then_lose_queue
            with pytest.raises(ServerClosed):
                await server.ask(questions["olympics"], "olympics")
            server.start = real_start
            await server.stop()

        asyncio.run(drive())

    def test_stop_swapping_queue_after_the_put(self, corpus, catalog):
        """The narrower window: stop() drains and nulls the queue right
        after the put but before the dispatcher picks the request up."""
        _, questions = corpus

        async def drive():
            server = AsyncServer(catalog)
            await server.start()
            # Let the dispatcher park on the original queue, then hand
            # _enqueue a side queue nothing consumes, whose put itself
            # loses the queue — the identity check must fail the future
            # instead of letting it hang.
            await asyncio.sleep(0)
            real_queue = server._queue
            real_start = server.start
            parked = asyncio.Queue()
            real_put = parked.put_nowait

            def put_then_lose_queue(item):
                real_put(item)
                server._queue = None

            parked.put_nowait = put_then_lose_queue
            server._queue = parked

            async def noop_start():
                return server

            server.start = noop_start
            with pytest.raises(ServerClosed):
                await asyncio.wait_for(
                    server.ask(questions["olympics"], "olympics"), timeout=10
                )
            server.start = real_start
            server._queue = real_queue
            await server.stop()

        asyncio.run(drive())

    def test_resolve_runs_on_dispatcher_thread_not_event_loop(
        self, corpus, catalog
    ):
        """Regression: aquery used to call catalog.resolve on the event
        loop; the catalog lock (held across disk writes during eviction)
        could stall every session.  Resolution must happen on the
        dispatcher thread."""
        import threading

        from repro.api.envelope import QueryRequest

        _, questions = corpus
        seen_threads = []
        real_resolve = catalog.resolve

        def recording_resolve(ref):
            seen_threads.append(threading.current_thread().name)
            return real_resolve(ref)

        catalog.resolve = recording_resolve

        async def drive():
            async with AsyncServer(catalog, max_workers=2) as server:
                return await server.aquery(
                    QueryRequest(
                        question=questions["olympics"], target="olympics"
                    )
                )

        try:
            result = asyncio.run(drive())
        finally:
            catalog.resolve = real_resolve
        assert result.ok
        assert seen_threads
        for name in seen_threads:
            assert name.startswith("repro-serve")
            assert name != threading.main_thread().name

    def test_broadcasts_run_on_jobs_executor_interleaved_with_routed(
        self, corpus, catalog
    ):
        """Regression: corpus-wide ask_any used to run inline on the
        dispatcher thread, strictly before the routed groups.  In a mixed
        batch it must run on the jobs executor, and both halves must stay
        bit-identical to the direct catalog calls."""
        import threading

        _, questions = corpus
        seen_threads = []
        real_ask_any = catalog.ask_any

        def recording_ask_any(question, **kwargs):
            seen_threads.append(threading.current_thread().name)
            return real_ask_any(question, **kwargs)

        catalog.ask_any = recording_ask_any

        async def drive():
            async with AsyncServer(catalog, max_workers=2, max_batch=8) as server:
                routed_task = asyncio.get_running_loop().create_task(
                    server.ask(questions["olympics"], "olympics")
                )
                broadcast_task = asyncio.get_running_loop().create_task(
                    server.ask(questions["medals"])
                )
                return await asyncio.gather(routed_task, broadcast_task)

        try:
            routed, broadcast = asyncio.run(drive())
        finally:
            catalog.ask_any = real_ask_any
        assert seen_threads
        for name in seen_threads:
            assert name.startswith("repro-serve-job")
        assert routed.top.answer == ("Greece",)
        reference = real_ask_any(questions["medals"])
        assert broadcast.answer == reference.answer
        assert broadcast.best_ref.digest == reference.best_ref.digest


class TestBackpressure:
    def test_full_queue_sheds_with_coded_overloaded(self, corpus, catalog):
        """With ``max_pending=1`` and the dispatcher pinned mid-batch,
        the first waiting request queues and the next is shed
        immediately with a retryable coded OVERLOADED (never queue
        delay, never a raw exception)."""
        import threading

        from repro.api.errors import RETRYABLE_CODES, ApiError, ErrorCode

        _, questions = corpus

        async def drive():
            server = AsyncServer(catalog, max_workers=2, max_pending=1)
            await server.start()
            gate = threading.Event()
            real_answer_batch = server._answer_batch

            def gated_answer_batch(requests):
                gate.wait(timeout=30)
                return real_answer_batch(requests)

            server._answer_batch = gated_answer_batch
            loop = asyncio.get_running_loop()
            # First ask: picked up by the dispatcher, stuck at the gate.
            busy = loop.create_task(server.ask(questions["olympics"], "olympics"))
            await asyncio.sleep(0.05)
            # Second ask: fills the (size-1) queue.
            queued = loop.create_task(server.ask(questions["medals"], "medals"))
            await asyncio.sleep(0.05)
            # Third ask: the queue is full — shed, coded, immediate.
            with pytest.raises(ApiError) as excinfo:
                await server.ask(questions["roster"], "roster")
            assert excinfo.value.code is ErrorCode.OVERLOADED
            assert excinfo.value.code in RETRYABLE_CODES
            gate.set()
            first, second = await asyncio.gather(busy, queued)
            stats = server.stats.as_dict()
            await server.stop()
            return first, second, stats

        first, second, stats = asyncio.run(drive())
        # The accepted requests were served normally after the stall.
        assert first.top is not None and second.top is not None
        assert stats["shed"] == 1
        assert stats["errors"] == 0  # shed happens before acceptance

    def test_double_stop_is_clean(self, corpus, catalog):
        """stop() is idempotent: calling it twice (or on a server that
        never started) returns cleanly, no tracebacks, no hangs."""
        _, questions = corpus

        async def drive():
            server = AsyncServer(catalog, max_workers=2)
            await server.stop()  # never started: still clean
            answer = await server.ask(questions["olympics"], "olympics")
            await server.stop()
            await server.stop()
            return answer

        answer = asyncio.run(drive())
        assert answer.top.answer == ("Greece",)


class TestServerStats:
    def test_mean_batch_is_always_a_float(self, catalog):
        """Regression: mean_batch degraded to the int 0 before the first
        batch but was a rounded float afterwards — the type is stable now."""
        server = AsyncServer(catalog)
        assert isinstance(server.stats.as_dict()["mean_batch"], float)
        assert server.stats.as_dict()["mean_batch"] == 0.0
        server.stats.requests = 7
        server.stats.batches = 2
        assert isinstance(server.stats.as_dict()["mean_batch"], float)
        assert server.stats.as_dict()["mean_batch"] == 3.5


async def _tcp_call(reader, writer, request) -> dict:
    data = request if isinstance(request, bytes) else (
        json.dumps(request).encode("utf-8")
    )
    writer.write(data + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


async def _open_server(server):
    try:
        tcp = await server.serve(host="127.0.0.1", port=0)
    except OSError as error:  # pragma: no cover - sandboxed CI
        pytest.skip(f"cannot bind a loopback socket: {error}")
    port = tcp.sockets[0].getsockname()[1]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    return tcp, reader, writer


class TestWireProtocolV2:
    def test_hello_negotiates_and_query_matches_in_process_engine(
        self, corpus, catalog
    ):
        """Acceptance: the v2 TCP path returns answers bit-identical to
        in-process ReproEngine.query — including ask_any routing
        metadata — modulo the run-dependent fields canonical_dict strips."""
        from repro.api import QueryResult

        tables, questions = corpus
        engine = ReproEngine(catalog)

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                tcp, reader, writer = await _open_server(server)
                hello = await _tcp_call(reader, writer, {"v": 2, "op": "hello"})
                assert hello["ok"] is True and 2 in hello["versions"]

                # Routed to one table.
                routed = await _tcp_call(
                    reader, writer,
                    {"v": 2, "id": 1, "op": "query",
                     "question": questions["olympics"], "target": "olympics"},
                )
                assert routed["v"] == 2 and routed["id"] == 1 and routed["ok"]
                wire_result = QueryResult.from_dict(routed["result"])
                local = engine.query(questions["olympics"], target="olympics")
                assert wire_result.canonical_dict() == local.canonical_dict()
                assert wire_result.answer == ("Greece",)

                # Corpus-wide: the routing decision crosses the wire.
                anywhere = await _tcp_call(
                    reader, writer,
                    {"v": 2, "id": 2, "op": "query",
                     "question": questions["olympics"]},
                )
                wire_any = QueryResult.from_dict(anywhere["result"])
                local_any = engine.query(questions["olympics"])
                assert wire_any.canonical_dict() == local_any.canonical_dict()
                assert wire_any.routing.mode == "any"
                assert wire_any.routing.pruned is True
                assert wire_any.routing.scores  # per-shard retrieval scores
                assert wire_any.shard.name == "olympics"

                # After hello, lines may omit "v" and still speak v2.
                bare = await _tcp_call(
                    reader, writer, {"question": questions["medals"],
                                     "target": "medals"},
                )
                assert bare["v"] == 2 and bare["ok"] is True

                # v2 auxiliary ops.
                pong = await _tcp_call(reader, writer, {"v": 2, "op": "ping"})
                assert pong == {"v": 2, "id": None, "ok": True, "pong": True}
                listing = await _tcp_call(reader, writer, {"v": 2, "op": "list"})
                assert {entry["name"] for entry in listing["tables"]} == {
                    table.name for table in tables
                }
                stats = await _tcp_call(reader, writer, {"v": 2, "op": "stats"})
                assert stats["ok"] and "server" in stats and "catalog" in stats

                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

        asyncio.run(drive())

    def test_v1_lines_keep_byte_compatible_shapes(self, corpus, catalog):
        """A connection that never says "v" is a v1 client: every response
        keeps the exact legacy key set (locked against the v1 schema)."""
        from repro.api import schema as wire_schema

        _, questions = corpus
        v1_schema = wire_schema.load_schema("serve_response.v1.json")

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                tcp, reader, writer = await _open_server(server)

                routed = await _tcp_call(
                    reader, writer,
                    {"question": questions["olympics"], "table": "olympics"},
                )
                assert set(routed) == {
                    "ok", "routed", "table", "answer", "utterance",
                    "candidates", "parse_seconds",
                }
                wire_schema.validate_payload(routed, v1_schema)
                assert routed["answer"] == ["Greece"]

                anywhere = await _tcp_call(
                    reader, writer, {"question": questions["olympics"]}
                )
                assert set(anywhere) == {
                    "ok", "routed", "table", "answer", "ranked", "pruned",
                    "shards_parsed", "shards_pruned", "fallback",
                }
                wire_schema.validate_payload(anywhere, v1_schema)

                unknown = await _tcp_call(
                    reader, writer, {"question": "x", "table": "atlantis"}
                )
                assert set(unknown) == {"ok", "error"}
                wire_schema.validate_payload(unknown, v1_schema)

                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

        asyncio.run(drive())

    def test_oversized_line_gets_bad_request_and_connection_survives(
        self, corpus, catalog
    ):
        """Regression: a >64 KiB line used to kill the connection with no
        response (StreamReader.readline raised past the handler).  Now it
        is answered with a structured BAD_REQUEST and the connection keeps
        serving — in both protocol versions."""
        _, questions = corpus

        async def drive():
            async with AsyncServer(catalog, max_workers=4) as server:
                tcp, reader, writer = await _open_server(server)

                # v1 connection: oversized line → legacy error shape.
                huge = json.dumps(
                    {"question": "x" * (80 * 1024), "table": "olympics"}
                ).encode("utf-8")
                assert len(huge) > 64 * 1024
                answer = await _tcp_call(reader, writer, huge)
                assert answer["ok"] is False and "error" in answer
                # ... and the next request on the same connection works.
                ok = await _tcp_call(
                    reader, writer,
                    {"question": questions["olympics"], "table": "olympics"},
                )
                assert ok["ok"] is True and ok["answer"] == ["Greece"]

                # v2-negotiated connection: structured code, same survival.
                await _tcp_call(reader, writer, {"v": 2, "op": "hello"})
                answer = await _tcp_call(reader, writer, huge)
                assert answer["ok"] is False
                assert answer["error"]["code"] == "BAD_REQUEST"
                ok = await _tcp_call(
                    reader, writer,
                    {"question": questions["olympics"], "target": "olympics"},
                )
                assert ok["ok"] is True

                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

        asyncio.run(drive())


#: The wire-protocol error paths, by expected code.  Each case gives the
#: request body (bytes are sent raw); the v2 variant adds {"v": 2}
#: (malformed lines that cannot carry "v" are sent on a hello-negotiated
#: connection instead).
_ERROR_CASES = [
    ("malformed-utf8", b"\xff\xfe{", "BAD_REQUEST"),
    ("not-json", b"{nope", "BAD_REQUEST"),
    ("non-object", b'"just a string"', "BAD_REQUEST"),
    ("unknown-op", {"op": "zap"}, "UNKNOWN_OP"),
    ("missing-question", {"table": "olympics"}, "BAD_REQUEST"),
    ("blank-question", {"question": "   "}, "BAD_REQUEST"),
    ("bad-k-type", {"question": "x", "k": "five"}, "BAD_REQUEST"),
    ("bad-k-bool", {"question": "x", "k": True}, "BAD_REQUEST"),
    ("bad-prune-type", {"question": "x", "prune": "yes"}, "BAD_REQUEST"),
    ("unknown-table", {"question": "x", "table": "atlantis"}, "UNKNOWN_TABLE"),
]


class TestWireErrorPaths:
    """Satellite: every malformed line answers with a *coded* error on v2
    and the frozen two-key shape on v1 — codes asserted, never messages."""

    @pytest.mark.parametrize(
        "name,body,code", _ERROR_CASES, ids=[case[0] for case in _ERROR_CASES]
    )
    def test_v1_error_shape(self, catalog, name, body, code):
        async def drive():
            async with AsyncServer(catalog, max_workers=2) as server:
                tcp, reader, writer = await _open_server(server)
                response = await _tcp_call(reader, writer, body)
                assert response["ok"] is False
                assert set(response) == {"ok", "error"}
                assert isinstance(response["error"], str)
                # The connection survived the error.
                pong = await _tcp_call(reader, writer, {"op": "ping"})
                assert pong["pong"] is True
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

        asyncio.run(drive())

    @pytest.mark.parametrize(
        "name,body,code", _ERROR_CASES, ids=[case[0] for case in _ERROR_CASES]
    )
    def test_v2_error_codes(self, catalog, name, body, code):
        async def drive():
            async with AsyncServer(catalog, max_workers=2) as server:
                tcp, reader, writer = await _open_server(server)
                # Negotiate v2 so even unparsable lines answer in v2 shape.
                await _tcp_call(reader, writer, {"v": 2, "op": "hello"})
                request = body if isinstance(body, bytes) else {"v": 2, **body}
                response = await _tcp_call(reader, writer, request)
                assert response["v"] == 2
                assert response["ok"] is False
                assert response["error"]["code"] == code
                pong = await _tcp_call(reader, writer, {"v": 2, "op": "ping"})
                assert pong["pong"] is True
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

        asyncio.run(drive())

    def test_unsupported_version_is_coded(self, catalog):
        async def drive():
            async with AsyncServer(catalog, max_workers=2) as server:
                tcp, reader, writer = await _open_server(server)
                response = await _tcp_call(
                    reader, writer, {"v": 3, "op": "query", "question": "x"}
                )
                assert response["ok"] is False
                assert response["error"]["code"] == "UNSUPPORTED_VERSION"
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

        asyncio.run(drive())


@pytest.mark.bench_smoke
class TestServingBenchSmoke:
    def test_serving_bench_stays_bit_identical(self, corpus, tmp_path):
        """The serving harness sweep: sequential vs async vs hot-set
        eviction, every mode bit-identical to the reference."""
        tables, questions = corpus
        pairs = [(questions[table.name], table) for table in tables]
        report = run_serving_bench(
            pairs,
            sessions=4,
            workers=4,
            repeats=2,
            disk_cache_dir=str(tmp_path),
            max_hot_shards=2,
        )
        assert set(report.modes) == {"sequential", "async", "async_hotset"}
        assert all(timing.identical for timing in report.modes.values())
        hotset = report.modes["async_hotset"]
        assert hotset.catalog_stats["evictions"] >= 1
        # The route mode ran and upheld the fallback contract; on this
        # disjoint-content corpus pruning parsed strictly fewer shards.
        assert report.route is not None
        assert report.route.top_answers_match
        assert report.route.strictly_fewer
        payload = report.to_payload()
        assert payload["schema"] == "repro-bench-serve-v3"
        assert payload["route"]["top_answers_match"] is True
        assert payload["route"]["strictly_fewer"] is True
        assert set(payload["timings"]["route"]) == {
            "broadcast_seconds", "pruned_seconds", "speedup"
        }
        # v3: every mode records request-latency percentiles, and each
        # mode timed as many questions as it answered.
        for name, timing in report.modes.items():
            mode_timings = payload["timings"]["modes"][name]
            assert set(mode_timings["latency"]) == {"p50_ms", "p95_ms", "p99_ms"}
            assert mode_timings["latency"]["p50_ms"] > 0
            assert (
                mode_timings["latency"]["p50_ms"]
                <= mode_timings["latency"]["p95_ms"]
                <= mode_timings["latency"]["p99_ms"]
            )
            assert len(timing.per_question_seconds) == timing.questions
        json.dumps(payload)
        # The committed-artifact gate: the payload satisfies the v3
        # wire schema the CI fixture check enforces.
        from repro.api.schema import load_schema, validate_payload

        validate_payload(payload, load_schema("bench_serve.v3.json"))
