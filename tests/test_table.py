"""Unit tests for the Table / Record / Cell data model."""

import pytest

from repro.tables import DateValue, NumberValue, StringValue, Table, TableError


class TestConstruction:
    def test_row_and_column_counts(self, olympics_table):
        assert olympics_table.num_rows == 6
        assert olympics_table.num_columns == 3
        assert len(olympics_table) == 6

    def test_duplicate_headers_rejected(self):
        with pytest.raises(TableError):
            Table(columns=["A", "A"], rows=[[1, 2]])

    def test_ragged_row_rejected(self):
        with pytest.raises(TableError):
            Table(columns=["A", "B"], rows=[[1]])

    def test_unknown_date_column_rejected(self):
        with pytest.raises(TableError):
            Table(columns=["A"], rows=[[1]], date_columns=["B"])

    def test_cells_are_typed(self, olympics_table):
        assert isinstance(olympics_table.cell(0, "Year").value, NumberValue)
        assert isinstance(olympics_table.cell(0, "Country").value, StringValue)

    def test_date_columns_parse_years_as_dates(self):
        table = Table(columns=["Year"], rows=[[1896]], date_columns=["Year"])
        assert isinstance(table.cell(0, "Year").value, DateValue)


class TestRecords:
    def test_indices_are_sequential(self, olympics_table):
        assert [record.index for record in olympics_table] == list(range(6))

    def test_prev_index(self, olympics_table):
        assert olympics_table.record(0).prev_index is None
        assert olympics_table.record(3).prev_index == 2

    def test_record_cell_lookup(self, olympics_table):
        assert olympics_table.record(2).value("City").display() == "Athens"

    def test_record_missing_column(self, olympics_table):
        with pytest.raises(TableError):
            olympics_table.record(0).cell("Continent")

    def test_record_out_of_range(self, olympics_table):
        with pytest.raises(TableError):
            olympics_table.record(99)


class TestColumns:
    def test_column_cells_in_row_order(self, olympics_table):
        cells = olympics_table.column_cells("City")
        assert [cell.row_index for cell in cells] == list(range(6))

    def test_column_values(self, medals_table):
        values = medals_table.column_values("Nation")
        assert values[0].display() == "New Caledonia"
        assert len(values) == 8

    def test_missing_column(self, olympics_table):
        with pytest.raises(TableError):
            olympics_table.column_cells("Continent")

    def test_has_column(self, olympics_table):
        assert olympics_table.has_column("Year")
        assert not olympics_table.has_column("year ")

    def test_all_cells_count(self, olympics_table):
        assert len(olympics_table.all_cells()) == 18


class TestCellCoordinates:
    def test_coordinate(self, olympics_table):
        cell = olympics_table.cell(4, "City")
        assert cell.coordinate == (4, "City")
        assert cell.display() == "London"


class TestConvenience:
    def test_from_dicts_roundtrip(self):
        rows = [{"A": 1, "B": "x"}, {"A": 2, "B": "y"}]
        table = Table.from_dicts(rows, name="t")
        assert table.columns == ["A", "B"]
        assert table.to_dicts() == [{"A": "1", "B": "x"}, {"A": "2", "B": "y"}]

    def test_from_dicts_empty_requires_columns(self):
        with pytest.raises(TableError):
            Table.from_dicts([])

    def test_from_dicts_missing_key_becomes_empty(self):
        table = Table.from_dicts([{"A": 1}], columns=["A", "B"])
        assert table.cell(0, "B").display() == ""

    def test_subtable_preserves_columns_and_reindexes(self, medals_table):
        sample = medals_table.subtable([3, 6])
        assert sample.num_rows == 2
        assert sample.columns == medals_table.columns
        assert sample.cell(0, "Nation").display() == "Fiji"
        assert sample.cell(1, "Nation").display() == "Tonga"
        assert sample.record(1).index == 1
