"""Deterministic chaos tests (:mod:`repro.faults` + the failpoint hooks).

The fault-tolerance acceptance bar of ISSUE 7:

* failpoints fire deterministically by (name, hit-count) — the same
  spec over the same workload produces the same faults, every run;
* a worker killed mid-batch (real fork, real ``os._exit``) is detected,
  respawned (tables re-shipped) and its units retried — the batch stays
  **bit-identical** to an unfaulted run;
* respawn failing ``max_respawn_failures`` times in a row degrades the
  pool to the thread backend — same answers, loudly visible in stats;
* a hanging worker plus a tiny ``deadline_ms`` yields a coded
  ``TIMEOUT`` within budget while batch-mates still succeed;
* a corrupted disk-cache read degrades to a miss, never an error;
* a dropped TCP connection surfaces as a coded error the client's
  retry loop rides through.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro import faults
from repro.api import QueryRequest, ReproClient
from repro.api.errors import ApiError, ErrorCode
from repro.perf import create_pool
from repro.perf.batch import BatchItem
from repro.perf.diskcache import DiskCache
from repro.serving import AsyncServer
from repro.tables import TableCatalog

from test_perf_batch import build_items, make_parser, signature
from test_api import _ServerThread


@pytest.fixture(autouse=True)
def clean_failpoints():
    """Every test starts and ends with nothing armed."""
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def corpus(olympics_table, medals_table, roster_table):
    questions = {
        "olympics": "which country hosted in 2004",
        "medals": "how many gold did Fiji win",
        "roster": "which club has the most players",
    }
    return [olympics_table, medals_table, roster_table], questions


@pytest.fixture
def catalog(corpus):
    tables, _ = corpus
    catalog = TableCatalog()
    catalog.register_all(tables)
    return catalog


def normalize(items):
    return [BatchItem(question=question, table=table) for question, table in items]


def sequential_signatures(items):
    parser = make_parser()
    return [signature(parser.parse(question, table)) for question, table in items]


def result_signatures(results):
    return [signature(parse) for parse, _ in results]


class TestFailpointRegistry:
    def test_parse_spec_forms(self):
        armed = faults.parse_spec(
            "worker.crash_before_batch;"
            "wire.drop_connection:2,4;"
            "worker.hang:*:0.25"
        )
        assert armed["worker.crash_before_batch"] == (frozenset({1}), None)
        assert armed["wire.drop_connection"] == (frozenset({2, 4}), None)
        assert armed["worker.hang"] == (None, 0.25)

    @pytest.mark.parametrize(
        "spec", ["a:b:c:d", ":1", "name:zero", "name:0", "name:*:soon"]
    )
    def test_parse_spec_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            faults.parse_spec(spec)

    def test_fires_deterministically_by_hit_count(self):
        faults.arm("demo.point", hits=(2, 3))
        fired = [faults.should_fire("demo.point") for _ in range(5)]
        assert fired == [False, True, True, False, False]
        # Re-arming starts a fresh deterministic window.
        faults.arm("demo.point", hits=(1,))
        assert faults.should_fire("demo.point") is True
        assert faults.should_fire("demo.point") is False

    def test_unarmed_points_never_fire(self):
        assert faults.should_fire("never.armed") is False
        assert faults.is_armed("never.armed") is False

    def test_armed_context_restores_previous_state(self):
        with faults.armed("demo.point", hits=(1,)):
            assert faults.is_armed("demo.point")
        assert not faults.is_armed("demo.point")

    def test_arm_from_env(self):
        faults.arm_from_env({faults.ENV_VAR: "demo.env:2"})
        assert faults.is_armed("demo.env")
        assert faults.should_fire("demo.env") is False
        assert faults.should_fire("demo.env") is True

    def test_param_and_stats(self):
        faults.arm("worker.hang", hits=None, param=0.5)
        assert faults.param("worker.hang", 30.0) == 0.5
        assert faults.param("worker.other", 30.0) == 30.0
        faults.should_fire("worker.hang")
        assert faults.stats()["worker.hang"] == {"hits": 1, "fired": 1}


class TestWorkerCrashChaos:
    def test_killed_worker_respawns_and_batch_stays_bit_identical(self):
        """Acceptance: 32 questions, first worker dispatch killed hard
        (``os._exit`` in a real fork) — the answers are bit-identical to
        an unfaulted run and the respawn is visible in stats."""
        items = (build_items() * 6)[:32]
        reference = sequential_signatures(items)
        with create_pool("process", make_parser()) as pool:
            with faults.armed("worker.crash_before_batch", hits=(1,)):
                results = pool.parse_all(normalize(items))
            assert result_signatures(results) == reference
            stats = pool.stats()
            assert stats["respawns"] >= 1
            assert stats["retries"] >= 1
            assert stats["downgrades"] == 0 and not pool.downgraded
            # The pool stays healthy: the next (unfaulted) batch reuses
            # the survivors and the respawned worker.
            again = pool.parse_all(normalize(items))
            assert result_signatures(again) == reference

    def test_crash_mid_run_preserves_partial_results(self):
        """Units a worker answered before dying are kept; only the
        unanswered remainder is retried."""
        items = build_items()
        reference = sequential_signatures(items)
        with create_pool("process", make_parser()) as pool:
            pool.parse_all(normalize(items))  # warm: tables shipped
            with faults.armed("worker.crash_before_batch", hits=(1,)):
                results = pool.parse_all(normalize(items))
            assert result_signatures(results) == reference
            # Tables were re-shipped to the replacement worker.
            assert pool.stats()["respawns"] >= 1


class TestRespawnFailureDowngrade:
    def test_three_respawn_failures_degrade_to_thread_backend(self):
        """Acceptance: respawn failing ``max_respawn_failures`` times in
        a row flips the pool to the thread fallback — identical answers,
        ``downgraded`` visible in stats."""
        items = build_items()
        reference = sequential_signatures(items)
        with create_pool("process", make_parser()) as pool:
            assert pool.max_respawn_failures == 3
            with faults.armed("worker.crash_before_batch", hits=(1,)):
                with faults.armed("pool.respawn_fail", hits=(1, 2, 3)):
                    results = pool.parse_all(normalize(items))
            assert result_signatures(results) == reference
            stats = pool.stats()
            assert pool.downgraded is True
            assert stats["downgraded"] is True
            assert stats["downgrades"] == 1
            assert stats["respawn_failures"] == 3
            assert "fallback" in stats
            # Later batches ride the fallback transparently.
            again = pool.parse_all(normalize(items))
            assert result_signatures(again) == reference
            assert stats["downgrades"] == 1

    def test_transient_respawn_failure_recovers_without_downgrade(self):
        """A respawn that fails once then succeeds keeps the process
        backend (the failure streak resets on success)."""
        items = build_items()
        reference = sequential_signatures(items)
        with create_pool("process", make_parser()) as pool:
            with faults.armed("worker.crash_before_batch", hits=(1,)):
                with faults.armed("pool.respawn_fail", hits=(1,)):
                    results = pool.parse_all(normalize(items))
            assert result_signatures(results) == reference
            stats = pool.stats()
            assert not pool.downgraded
            assert stats["respawn_failures"] == 1
            assert stats["respawns"] >= 1


class TestDeadlineWithHangingWorker:
    def test_timeout_is_coded_and_batchmates_succeed(self, corpus, catalog):
        """Acceptance: a hanging worker plus a tiny ``deadline_ms``
        yields a coded TIMEOUT well before the hang would end, while a
        concurrent request in the same batch still gets its answer."""
        _, questions = corpus

        async def drive():
            async with AsyncServer(
                catalog, max_workers=1, backend="process"
            ) as server:
                # The hang (8s) dwarfs both the deadline (400ms) and the
                # test budget: passing proves the worker was killed, not
                # waited out.
                faults.arm("worker.hang", hits=(1,), param=8.0)
                started = time.monotonic()
                timed, mate = await asyncio.gather(
                    server.aquery(
                        QueryRequest(
                            question=questions["olympics"],
                            target="olympics",
                            deadline_ms=400,
                        )
                    ),
                    server.ask("what is the highest year", "olympics"),
                )
                elapsed = time.monotonic() - started
                server._refresh_pool_counters()  # what the stats op does
                return timed, mate, elapsed, server.stats.as_dict()

        timed, mate, elapsed, stats = asyncio.run(drive())
        assert timed.ok is False
        assert timed.error_code is ErrorCode.TIMEOUT
        assert mate.top is not None  # the batch-mate was retried and answered
        assert elapsed < 6.0
        assert stats["timeouts"] >= 1
        assert stats["worker_respawns"] >= 1


class TestDeadlineOnTheWire:
    def test_deadline_ms_travels_the_v2_wire(self, corpus, catalog):
        """``deadline_ms`` is an additive v2 request field: the server
        accepts it and (with budget to spare) answers normally."""
        _, questions = corpus
        with _ServerThread(catalog) as hosted:
            with ReproClient.connect("127.0.0.1", hosted.port) as client:
                result = client.query(
                    questions["olympics"], target="olympics", deadline_ms=60_000
                )
                assert result.ok is True
                assert result.answer == ("Greece",)


class TestDiskCacheCorruptRead:
    def test_corrupt_read_degrades_to_a_miss_and_drops_the_entry(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("candidates", ("key",), {"payload": 1})
        assert cache.get("candidates", ("key",)) == {"payload": 1}
        with faults.armed("diskcache.corrupt_read", hits=(1,)):
            assert cache.get("candidates", ("key",)) is None
        stats = cache.stats()
        assert stats["errors"] == 1
        assert stats["misses"] == 1
        # The poisoned entry was unlinked: the next read is a clean miss
        # (rebuildable), not a repeat error.
        assert cache.get("candidates", ("key",)) is None
        assert cache.stats() == {"hits": 1, "misses": 2, "writes": 1, "errors": 1}


class TestWireDropConnection:
    def test_client_rides_through_a_dropped_connection(self, corpus, catalog):
        _, questions = corpus
        with _ServerThread(catalog) as hosted:
            with ReproClient.connect(
                "127.0.0.1", hosted.port, timeout=30.0
            ) as client:
                faults.arm("wire.drop_connection", hits=(1,))
                result = client.query(questions["olympics"], target="olympics")
                assert result.ok is True
                assert result.answer == ("Greece",)
                assert faults.stats()["wire.drop_connection"]["fired"] == 1

    def test_drop_without_retries_is_coded_server_closed(self, corpus, catalog):
        _, questions = corpus
        with _ServerThread(catalog) as hosted:
            with ReproClient.connect(
                "127.0.0.1", hosted.port, timeout=30.0, retries=0
            ) as client:
                faults.arm("wire.drop_connection", hits=(1,))
                with pytest.raises(ApiError) as excinfo:
                    client.query(questions["olympics"], target="olympics")
                assert excinfo.value.code is ErrorCode.SERVER_CLOSED
