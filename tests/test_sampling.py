"""Unit tests for highlight sampling on large tables (Section 5.3)."""

import pytest

from repro.core import HighlightLevel, sample_highlights
from repro.dcs import builder as q


class TestSampleComposition:
    def test_sample_covers_every_stratum(self, large_table):
        query = q.max_(
            q.column_values("Growth Rate", q.column_records("Country", "Madagascar"))
        )
        sample = sample_highlights(query, large_table, seed=1)
        rows = set(sample.row_indices)
        assert rows & sample.output_rows
        assert rows & (sample.column_rows - sample.execution_rows)
        assert len(sample.row_indices) <= 3

    def test_sample_rows_are_ordered(self, large_table):
        query = q.count(q.column_records("Country", "Kenya"))
        sample = sample_highlights(query, large_table, seed=2)
        assert list(sample.row_indices) == sorted(sample.row_indices)

    def test_difference_query_samples_both_operands(self, medals_table):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        sample = sample_highlights(query, medals_table, seed=0)
        assert {3, 6} <= set(sample.row_indices)

    def test_sample_is_deterministic_for_a_seed(self, large_table):
        query = q.column_values("Year", q.column_records("Country", "Ghana"))
        first = sample_highlights(query, large_table, seed=5)
        second = sample_highlights(query, large_table, seed=5)
        assert first.row_indices == second.row_indices

    def test_small_table_sample_is_bounded_by_table(self, olympics_table):
        query = q.column_values("Year", q.column_records("Country", "Greece"))
        sample = sample_highlights(query, olympics_table)
        assert all(0 <= row < olympics_table.num_rows for row in sample.row_indices)


class TestRestrictedHighlight:
    def test_highlight_restricted_to_sampled_rows(self, large_table):
        query = q.max_(
            q.column_values("Growth Rate", q.column_records("Country", "Madagascar"))
        )
        sample = sample_highlights(query, large_table, seed=1)
        highlighted_rows = {
            coordinate[0] for coordinate, level in sample.highlighted.levels.items()
            if level != HighlightLevel.NONE
        }
        assert highlighted_rows <= set(sample.row_indices)

    def test_sampled_table_extraction(self, large_table):
        query = q.count(q.column_records("Country", "Togo"))
        sample = sample_highlights(query, large_table, seed=3)
        extracted = sample.sampled_table()
        assert extracted.num_rows == sample.sample_size
        assert extracted.columns == large_table.columns

    def test_larger_strata_request(self, large_table):
        query = q.column_values("Year", q.column_records("Country", "Kenya"))
        sample = sample_highlights(query, large_table, seed=4, max_rows_per_stratum=2)
        assert sample.sample_size <= 6
        assert sample.sample_size >= 2
