"""Equivalence of the lambda DCS executor and the SQL translation on sqlite.

These tests are the oracle for the executor: every operator of Table 10 is
run both natively and through the generated SQL, and the results must
agree.
"""

import pytest

from repro.dcs import SuperlativeKind, SuperlativeRecords, builder as q
from repro.sql import SQLiteBackend, check_equivalence, check_many


def medal_queries():
    return [
        q.column_records("Nation", "Fiji"),
        q.column_records("Nation", q.union("Fiji", "Samoa")),
        q.comparison_records("Gold", ">", 40),
        q.comparison_records("Gold", "<=", 8),
        q.prev_records(q.column_records("Nation", "Tonga")),
        q.next_records(q.column_records("Nation", "Fiji")),
        q.intersection(
            q.comparison_records("Gold", ">", 20), q.comparison_records("Silver", ">", 40)
        ),
        q.argmax_records("Total"),
        q.argmin_records("Total"),
        SuperlativeRecords(
            SuperlativeKind.ARGMAX, "Gold", q.comparison_records("Total", "<", 100)
        ),
        q.first_record(),
        q.last_record(q.column_records("Nation", "Fiji")),
        q.column_values("Total", q.column_records("Nation", "Fiji")),
        q.column_values("Nation", q.argmin_records("Total")),
        q.value_in_last_record("Nation"),
        q.most_common("Nation"),
        q.compare_values("Total", "Nation", q.union("Fiji", "Samoa")),
        q.compare_values("Total", "Nation", q.union("Fiji", "Samoa"), kind="argmin"),
        q.union(
            q.column_values("Nation", q.column_records("Rank", 1)),
            q.column_values("Nation", q.column_records("Rank", 2)),
        ),
        q.count(q.column_records("Nation", "Fiji")),
        q.count(q.comparison_records("Total", ">=", 100)),
        q.max_(q.column_values("Gold", q.all_records())),
        q.min_(q.column_values("Gold", q.all_records())),
        q.sum_(q.column_values("Silver", q.all_records())),
        q.avg(q.column_values("Bronze", q.all_records())),
        q.value_difference("Total", "Nation", "Fiji", "Tonga"),
        q.count_difference("Nation", "Fiji", "Tonga"),
    ]


class TestOperatorEquivalence:
    @pytest.mark.parametrize(
        "query", medal_queries(), ids=lambda query: type(query).__name__
    )
    def test_dcs_matches_sql(self, medals_table, query):
        report = check_equivalence(query, medals_table)
        assert report.equivalent, report.detail


class TestBatchedChecks:
    def test_check_many_reuses_backend(self, medals_table):
        reports = check_many(medal_queries(), medals_table)
        assert len(reports) == len(medal_queries())
        assert all(report.equivalent for report in reports)

    def test_equivalence_on_shipwrecks(self, shipwrecks_table):
        queries = [
            q.count_difference("Lake", "Lake Huron", "Lake Erie"),
            q.most_common("Lake"),
            q.count(q.column_records("Vessel", "Steamer")),
            q.column_values("Ship", q.argmax_records("Lives lost")),
        ]
        assert all(report.equivalent for report in check_many(queries, shipwrecks_table))


class TestBackend:
    def test_backend_materialises_all_rows(self, medals_table):
        with SQLiteBackend(medals_table) as backend:
            rows = backend.run_sql("SELECT COUNT(*) FROM T")
            assert rows[0][0] == medals_table.num_rows

    def test_backend_preserves_index_order(self, olympics_table):
        with SQLiteBackend(olympics_table) as backend:
            rows = backend.run_sql('SELECT "Index", "City" FROM T ORDER BY "Index"')
            assert rows[0][1] == "Athens"
            assert rows[-1][1] == "Rio de Janeiro"

    def test_text_comparison_is_case_insensitive(self, olympics_table):
        with SQLiteBackend(olympics_table) as backend:
            rows = backend.run_sql("SELECT COUNT(*) FROM T WHERE \"City\" = 'athens'")
            assert rows[0][0] == 2

    def test_run_query_returns_typed_result(self, olympics_table):
        with SQLiteBackend(olympics_table) as backend:
            result = backend.run_query(q.count(q.column_records("City", "Athens")))
            assert result.scalar() == 2.0
