"""Unit tests for the feedback-retraining pipeline (Table 9 machinery)."""

import pytest

from repro.interface import RetrainingConfig, RetrainingPipeline
from repro.users import FeedbackConfig, JudgmentParameters


@pytest.fixture(scope="module")
def pipeline_inputs():
    from repro.dataset import DatasetConfig, build_dataset, split_by_tables
    from repro.parser import train_parser

    dataset = build_dataset(DatasetConfig(num_tables=10, questions_per_table=5, seed=61))
    split = split_by_tables(dataset, test_fraction=0.3, seed=5)
    baseline = train_parser(
        split.train.training_examples()[:30], epochs=2, use_annotations=False, seed=1
    )
    return baseline, split


class TestFeedbackCollection:
    def test_collect_feedback_produces_training_examples(self, pipeline_inputs):
        baseline, split = pipeline_inputs
        pipeline = RetrainingPipeline(baseline, RetrainingConfig(epochs=2))
        feedback = pipeline.collect_feedback(split.train.examples[:12])
        assert len(feedback.training_examples) == 12
        assert feedback.annotated_count > 0


class TestComparison:
    def test_compare_reports_both_parsers(self, pipeline_inputs):
        baseline, split = pipeline_inputs
        pipeline = RetrainingPipeline(
            baseline,
            RetrainingConfig(
                epochs=2,
                feedback=FeedbackConfig(
                    seed=2,
                    judgment=JudgmentParameters(recognise_correct=0.95, reject_incorrect=0.99),
                ),
            ),
        )
        feedback = pipeline.collect_feedback(split.train.examples[:12])
        dev = split.test.evaluation_examples()[:10]
        comparison = pipeline.compare(
            annotated_training=feedback.training_examples,
            unannotated_training=[],
            dev_examples=dev,
        )
        summary = comparison.summary()
        assert summary["train_examples"] == 12
        assert 0.0 <= summary["correctness_with"] <= 1.0
        assert 0.0 <= summary["correctness_without"] <= 1.0
        assert "mrr_gain" in summary

    def test_train_parser_fresh_does_not_mutate_baseline(self, pipeline_inputs):
        baseline, split = pipeline_inputs
        before = dict(baseline.model.weights)
        pipeline = RetrainingPipeline(baseline, RetrainingConfig(epochs=1))
        pipeline.train_parser(
            split.train.training_examples()[:8], use_annotations=False, fresh=True
        )
        assert baseline.model.weights == before
