"""Unit tests for the Table 3 grammar-rule inventory."""

import pytest

from repro.core import TABLE3_RULES, format_table3, rules_for_node
from repro.dcs import ast


class TestRuleInventory:
    def test_fifteen_rules_like_table3(self):
        assert len(TABLE3_RULES) == 15

    def test_rule_names_are_unique(self):
        names = [rule.name for rule in TABLE3_RULES]
        assert len(names) == len(set(names))

    def test_every_rule_has_example_and_template(self):
        for rule in TABLE3_RULES:
            assert rule.example
            assert rule.template
            assert rule.lhs in {"Values", "Records", "Entity"}

    def test_rules_map_to_ast_node_types(self):
        node_types = {rule.node_type for rule in TABLE3_RULES}
        assert ast.ColumnRecords in node_types
        assert ast.Difference in node_types
        assert ast.CompareValues in node_types

    def test_rules_for_node(self):
        difference_rules = rules_for_node(ast.Difference)
        assert len(difference_rules) == 2
        assert rules_for_node(ast.PrevRecords)[0].name == "prev-records"

    def test_rules_for_unknown_node_empty(self):
        assert rules_for_node(ast.NextRecords) == ()


class TestFormatting:
    def test_format_table3_has_header_and_all_rules(self):
        text = format_table3()
        lines = text.splitlines()
        assert lines[0].startswith("Rule")
        assert len(lines) == 2 + len(TABLE3_RULES)

    def test_format_contains_paper_examples(self):
        text = format_table3()
        assert "maximum of values in column Year" in text
        assert "rows where value in column City is Athens or London." in text
