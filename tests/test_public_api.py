"""The public API surface: everything advertised in ``__all__`` exists."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.tables",
    "repro.dcs",
    "repro.sql",
    "repro.core",
    "repro.parser",
    "repro.dataset",
    "repro.users",
    "repro.interface",
    "repro.perf",
    "repro.serving",
    "repro.api",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_imports(package_name):
    module = importlib.import_module(package_name)
    assert module is not None


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package_name} should declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{package_name}.{name} missing"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_docstrings_on_public_modules():
    for package_name in PACKAGES:
        module = importlib.import_module(package_name)
        assert module.__doc__, f"{package_name} lacks a module docstring"


def test_core_entry_points_exist():
    from repro.core import explain, highlight, utterance, compute_provenance
    from repro.parser import SemanticParser
    from repro.interface import NLInterface

    assert callable(explain) and callable(highlight)
    assert callable(utterance) and callable(compute_provenance)
    assert SemanticParser and NLInterface
