"""Unit tests for majority-vote feedback collection."""

import pytest

from repro.users import FeedbackCollector, FeedbackConfig, JudgmentParameters


@pytest.fixture(scope="module")
def feedback_inputs():
    from repro.dataset import DatasetConfig, build_dataset
    from repro.parser import train_parser, SemanticParser

    dataset = build_dataset(DatasetConfig(num_tables=8, questions_per_table=4, seed=47))
    parser = train_parser(
        dataset.training_examples()[:25], epochs=2, use_annotations=False, seed=0
    )
    return parser, dataset.examples[:20]


class TestCollection:
    def test_one_record_per_example(self, feedback_inputs):
        parser, examples = feedback_inputs
        collector = FeedbackCollector(parser, FeedbackConfig(seed=1))
        result = collector.collect(examples)
        assert len(result.records) == len(examples)
        assert len(result.training_examples) == len(examples)

    def test_annotations_require_majority(self, feedback_inputs):
        parser, examples = feedback_inputs
        collector = FeedbackCollector(parser, FeedbackConfig(seed=2))
        result = collector.collect(examples)
        for record in result.records:
            if record.has_annotation:
                assert record.workers_agreeing >= 2

    def test_some_annotations_collected(self, feedback_inputs):
        parser, examples = feedback_inputs
        collector = FeedbackCollector(parser, FeedbackConfig(seed=3))
        result = collector.collect(examples)
        assert result.annotated_count > 0
        assert 0.0 < result.annotation_rate <= 1.0

    def test_training_examples_carry_annotations(self, feedback_inputs):
        parser, examples = feedback_inputs
        collector = FeedbackCollector(parser, FeedbackConfig(seed=4))
        result = collector.collect(examples)
        annotated = [example for example in result.training_examples if example.annotated_queries]
        assert len(annotated) == result.annotated_count

    def test_annotation_precision_reasonable(self, feedback_inputs):
        """Majority voting should keep most annotations faithful to the question."""
        parser, examples = feedback_inputs
        collector = FeedbackCollector(parser, FeedbackConfig(seed=5))
        result = collector.collect(examples)
        if result.annotated_count:
            assert result.annotation_precision() >= 0.3

    def test_perfect_workers_yield_only_correct_annotations(self, feedback_inputs):
        parser, examples = feedback_inputs
        config = FeedbackConfig(
            seed=6,
            judgment=JudgmentParameters(recognise_correct=1.0, reject_incorrect=1.0),
        )
        collector = FeedbackCollector(parser, config)
        result = collector.collect(examples[:10])
        from repro.dcs import to_sexpr
        from repro.parser import queries_equivalent

        for record in result.records:
            gold = record.example.gold_query
            for sexpr in record.annotated_sexprs:
                from repro.dcs import from_sexpr

                candidate = from_sexpr(sexpr)
                assert queries_equivalent(
                    candidate, gold, record.example.table, perturbations=2
                )

    def test_agreement_threshold_configurable(self, feedback_inputs):
        parser, examples = feedback_inputs
        strict = FeedbackCollector(parser, FeedbackConfig(seed=7, agreement_threshold=3))
        lenient = FeedbackCollector(parser, FeedbackConfig(seed=7, agreement_threshold=1))
        strict_result = strict.collect(examples[:10])
        lenient_result = lenient.collect(examples[:10])
        assert lenient_result.annotated_count >= strict_result.annotated_count
