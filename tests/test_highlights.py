"""Unit tests for provenance-based highlights (Algorithm 1)."""

import pytest

from repro.core import HighlightLevel, Highlighter, highlight
from repro.dcs import builder as q


class TestFigure1:
    """max(R[Year].Country.Greece) on the Olympics table."""

    @pytest.fixture
    def highlighted(self, olympics_table):
        query = q.max_(q.column_values("Year", q.column_records("Country", "Greece")))
        return highlight(query, olympics_table)

    def test_output_cells_colored(self, highlighted):
        assert highlighted.level(0, "Year") == HighlightLevel.COLORED
        assert highlighted.level(2, "Year") == HighlightLevel.COLORED

    def test_execution_cells_framed(self, highlighted):
        assert highlighted.level(0, "Country") == HighlightLevel.FRAMED
        assert highlighted.level(2, "Country") == HighlightLevel.FRAMED

    def test_column_cells_lit(self, highlighted):
        assert highlighted.level(1, "Year") == HighlightLevel.LIT
        assert highlighted.level(3, "Country") == HighlightLevel.LIT

    def test_unrelated_cells_unhighlighted(self, highlighted):
        assert highlighted.level(0, "City") == HighlightLevel.NONE

    def test_aggregate_header_marker(self, highlighted):
        assert highlighted.header_label("Year") == "MAX(Year)"
        assert highlighted.header_label("City") == "City"


class TestFigure6:
    """sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga) on the medals table."""

    @pytest.fixture
    def highlighted(self, medals_table):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        return highlight(query, medals_table)

    def test_subtracted_values_colored(self, highlighted):
        assert highlighted.level(3, "Total") == HighlightLevel.COLORED
        assert highlighted.level(6, "Total") == HighlightLevel.COLORED

    def test_nations_framed(self, highlighted):
        assert highlighted.level(3, "Nation") == HighlightLevel.FRAMED
        assert highlighted.level(6, "Nation") == HighlightLevel.FRAMED

    def test_other_rows_of_projected_columns_lit(self, highlighted):
        assert highlighted.level(0, "Nation") == HighlightLevel.LIT
        assert highlighted.level(1, "Total") == HighlightLevel.LIT

    def test_unrelated_columns_untouched(self, highlighted):
        for row in range(8):
            assert highlighted.level(row, "Gold") == HighlightLevel.NONE

    def test_summary_counts(self, highlighted):
        counts = highlighted.summary()
        assert counts["colored"] == 2
        assert counts["framed"] == 2
        assert counts["lit"] == 12


class TestFigure4:
    """Comparison: rows where values of column Games are more than 4."""

    def test_comparison_highlights(self, roster_table):
        query = q.comparison_records("Games", ">", 4)
        highlighted = highlight(query, roster_table)
        colored = {cell.coordinate for cell in highlighted.colored_cells}
        assert colored == {(2, "Games"), (4, "Games"), (5, "Games")}
        assert highlighted.level(0, "Games") == HighlightLevel.LIT


class TestLevelsPrecedence:
    def test_colored_beats_framed_beats_lit(self, olympics_table):
        query = q.column_values("Year", q.column_records("City", "Athens"))
        highlighted = highlight(query, olympics_table)
        # Output cells are also execution and column cells; colored must win.
        assert highlighted.level(0, "Year") == HighlightLevel.COLORED
        # Execution-only cells are framed even though they belong to a lit column.
        assert highlighted.level(0, "City") == HighlightLevel.FRAMED

    def test_cells_at_level_sorted(self, olympics_table):
        query = q.column_records("Country", "Greece")
        highlighted = highlight(query, olympics_table)
        rows = [cell.row_index for cell in highlighted.colored_cells]
        assert rows == sorted(rows)


class TestOutputFlag:
    def test_output_false_returns_provenance_without_marks(self, olympics_table):
        highlighter = Highlighter(olympics_table)
        highlighted = highlighter.highlight(q.most_common("City"), output=False)
        assert highlighted.levels == {}
        assert highlighted.provenance is not None


class TestHighlightedRowsAndRestriction:
    def test_highlighted_rows(self, medals_table):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        highlighted = highlight(query, medals_table)
        assert highlighted.highlighted_rows() == list(range(8))

    def test_restricted_to_rows(self, medals_table):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        highlighted = highlight(query, medals_table).restricted_to_rows([3, 6])
        assert highlighted.level(3, "Total") == HighlightLevel.COLORED
        assert highlighted.level(0, "Nation") == HighlightLevel.NONE


class TestIdenticalHighlightsForDifferentQueries:
    def test_paper_section52_ambiguity(self, roster_table):
        """Two different queries can produce identical highlights (Section 5.2)."""
        more_than_4 = q.comparison_records("Games", ">", 4)
        at_least_5 = q.comparison_records("Games", ">=", 5)
        first = highlight(more_than_4, roster_table)
        second = highlight(at_least_5, roster_table)
        assert first.levels == second.levels
