"""Tests for the unified query API (ISSUE 5).

The acceptance bar: one typed, versioned envelope across library, CLI
and wire — lossless codecs (``from_dict(to_dict(x)) == x`` for any
served question), a coded error taxonomy replacing stringly errors, and
the client path (in-process and TCP) bit-identical to the engine.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ApiError,
    ErrorCode,
    ErrorInfo,
    QueryRequest,
    QueryResult,
    ReproClient,
    ReproEngine,
    ShardInfo,
    classify_exception,
    result_from_served,
)
from repro.interface import InterfaceSession, NLInterface
from repro.serving import AsyncServer, ServerClosed
from repro.tables import (
    AmbiguousTableError,
    CatalogError,
    TableCatalog,
    UnknownTableError,
)


@pytest.fixture
def corpus(olympics_table, medals_table, roster_table):
    questions = {
        "olympics": "which country hosted in 2004",
        "medals": "how many gold did Fiji win",
        "roster": "which club has the most players",
    }
    return [olympics_table, medals_table, roster_table], questions


@pytest.fixture
def engine(corpus):
    tables, _ = corpus
    return ReproEngine(tables=tables)


def _signature(response):
    return [
        (item.rank, item.answer, item.utterance, item.candidate.sexpr,
         item.candidate.score)
        for item in response.explained
    ]


class TestQueryRequest:
    def test_defaults_and_auto_mode(self):
        request = QueryRequest(question="q")
        assert request.resolved_mode == "any"
        assert QueryRequest(question="q", target="t").resolved_mode == "table"

    def test_round_trips_through_dict(self):
        request = QueryRequest(
            question="q", target="olympics", mode="table", k=3, prune=False,
            backend="thread", request_id="r-1",
        )
        assert QueryRequest.from_dict(request.to_dict()) == request

    def test_table_alias_is_accepted(self):
        request = QueryRequest.from_dict({"question": "q", "table": "olympics"})
        assert request.target == "olympics"

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ApiError) as caught:
            QueryRequest.from_dict({"question": "q", "zap": 1})
        assert caught.value.code is ErrorCode.BAD_REQUEST

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"question": ""},
            {"question": "   "},
            {"question": None},
            {"question": "q", "k": "five"},
            {"question": "q", "k": True},
            {"question": "q", "k": 0},
            {"question": "q", "prune": "yes"},
            {"question": "q", "mode": "sideways"},
            {"question": "q", "mode": "table"},  # table mode needs a target
            {"question": "q", "mode": "any", "target": "t"},
            {"question": "q", "backend": "quantum"},
        ],
    )
    def test_validate_rejects_malformed_requests(self, kwargs):
        with pytest.raises(ApiError) as caught:
            QueryRequest(**kwargs).validate()
        assert caught.value.code is ErrorCode.BAD_REQUEST


class TestErrorTaxonomy:
    def test_catalog_errors_map_to_codes(self, engine):
        with pytest.raises(UnknownTableError) as unknown:
            engine.catalog.resolve("atlantis")
        assert classify_exception(unknown.value).code is ErrorCode.UNKNOWN_TABLE

        digests = [ref.digest for ref in engine.refs()]
        prefix = None
        for length in range(8, 64):
            prefixes = {digest[:length] for digest in digests}
            if len(prefixes) < len(digests):
                collided = [
                    digest for digest in digests
                    if sum(d.startswith(digest[:length]) for d in digests) > 1
                ]
                prefix = collided[0][:length]
                break
        if prefix is not None:
            with pytest.raises(AmbiguousTableError) as ambiguous:
                engine.catalog.resolve(prefix)
            assert (
                classify_exception(ambiguous.value).code
                is ErrorCode.AMBIGUOUS_TABLE
            )

    def test_generic_exceptions_become_internal(self):
        assert classify_exception(RuntimeError("boom")).code is ErrorCode.INTERNAL
        assert (
            classify_exception(ServerClosed("stopped")).code
            is ErrorCode.SERVER_CLOSED
        )
        # A bare ValueError escaping deep execution on a well-formed
        # request is a server bug, not a caller mistake — and non-catalog
        # messages keep the legacy "TypeName: message" v1 wire form.
        assert classify_exception(ValueError("x")).code is ErrorCode.INTERNAL
        assert classify_exception(ValueError("x")).message == "ValueError: x"
        assert (
            classify_exception(ServerClosed("stopped")).message
            == "ServerClosed: stopped"
        )

    def test_api_error_round_trips(self):
        error = ApiError(ErrorCode.UNKNOWN_TABLE, "no such table")
        restored = ApiError.from_dict(error.to_dict())
        assert restored.code is error.code and restored.message == error.message


class TestReproEngine:
    def test_query_matches_catalog_ask(self, corpus, engine):
        tables, questions = corpus
        result = engine.query(questions["olympics"], target="olympics")
        assert result.ok and result.answer == ("Greece",)
        assert result.shard.name == "olympics"
        assert result.routing.mode == "table"
        reference = engine.catalog.ask(questions["olympics"], "olympics")
        assert _signature(result.raw) == _signature(reference)
        assert [
            (c.rank, tuple(c.answer), c.utterance, c.sexpr, c.score)
            for c in result.candidates
        ] == _signature(reference)

    def test_corpus_wide_query_carries_routing(self, corpus, engine):
        _, questions = corpus
        result = engine.query(questions["olympics"])
        assert result.ok and result.routing.mode == "any"
        assert result.routing.pruned is True
        assert result.routing.shards_parsed == len(result.ranked)
        assert result.routing.scores  # every shard scored
        assert result.shard.name == "olympics"

    def test_unknown_table_is_an_error_envelope(self, engine):
        result = engine.query("q", target="atlantis")
        assert not result.ok
        assert result.error_code is ErrorCode.UNKNOWN_TABLE
        with pytest.raises(ApiError):
            result.raise_for_error()

    def test_bad_request_is_an_error_envelope(self, engine):
        assert engine.query("").error_code is ErrorCode.BAD_REQUEST
        assert (
            engine.query("q", k="five").error_code is ErrorCode.BAD_REQUEST
        )

    def test_parse_failure_keeps_routing_metadata(self):
        """An empty candidate list envelopes as PARSE_FAILURE but keeps
        the shard/routing context (the request *was* routed and parsed)."""
        from types import SimpleNamespace

        from repro.api import result_from_response

        response = SimpleNamespace(
            question="q", table=None, explained=[],
            parse_seconds=0.01, explain_seconds=0.0,
        )
        shard = ShardInfo(digest="d" * 64, name="t", rows=1, columns=1)
        result = result_from_response(
            QueryRequest(question="q", target="t"), response, shard=shard
        )
        assert not result.ok
        assert result.error_code is ErrorCode.PARSE_FAILURE
        assert result.shard == shard and result.routing.mode == "table"
        assert QueryResult.from_dict(result.to_dict()) == result

    def test_query_many_is_index_aligned_and_batched(self, corpus, engine):
        tables, questions = corpus
        requests = [
            QueryRequest(question=questions[table.name], target=table.name)
            for table in tables
        ] * 2
        requests.insert(2, QueryRequest(question="q", target="atlantis"))
        requests.insert(4, QueryRequest(question=questions["olympics"]))
        results = engine.query_many(requests)
        assert len(results) == len(requests)
        for request, result in zip(requests, results):
            if request.target == "atlantis":
                assert result.error_code is ErrorCode.UNKNOWN_TABLE
            elif request.target is None:
                assert result.routing.mode == "any"
            else:
                single = engine.query(request)
                assert result.canonical_dict() == single.canonical_dict()

    def test_aquery_matches_query(self, corpus, engine):
        _, questions = corpus

        async def drive():
            return await engine.aquery(questions["olympics"], target="olympics")

        result = asyncio.run(drive())
        reference = engine.query(questions["olympics"], target="olympics")
        assert result.canonical_dict() == reference.canonical_dict()

    def test_options_alongside_a_request_object_are_rejected(self, engine):
        request = QueryRequest(question="q")
        result = engine.query(request, k=3)
        assert result.error_code is ErrorCode.BAD_REQUEST


class TestRoundTripProperty:
    def test_every_served_question_round_trips(self, corpus, engine):
        """Acceptance: for any served question,
        QueryResult.from_dict(result.to_dict()) == result — through an
        actual JSON string, both modes, errors included."""
        tables, questions = corpus
        results = []
        for table in tables:
            results.append(
                engine.query(questions[table.name], target=table.name)
            )
            results.append(engine.query(questions[table.name]))  # corpus-wide
            results.append(
                engine.query(questions[table.name], prune=False, k=3)
            )
        results.append(engine.query("q", target="atlantis"))
        results.append(engine.query(""))
        for result in results:
            wire = json.loads(json.dumps(result.to_dict()))
            assert QueryResult.from_dict(wire) == result
            # canonical_dict is to_dict minus the run-dependent fields.
            assert set(result.to_dict()) - set(result.canonical_dict()) == {
                "timing", "cache", "request_id", "corpus_version"
            }

    @settings(max_examples=25, deadline=None)
    @given(
        question=st.text(min_size=1, max_size=40).filter(str.strip),
        ok=st.booleans(),
        answer=st.lists(st.text(max_size=10), max_size=4),
        score=st.floats(allow_nan=False, allow_infinity=False),
        request_id=st.none() | st.text(max_size=8),
        code=st.sampled_from(list(ErrorCode)),
    )
    def test_codec_is_lossless_on_generated_envelopes(
        self, question, ok, answer, score, request_id, code
    ):
        """Property: the codec is exact for arbitrary field values
        (floats survive the JSON round trip bit-for-bit)."""
        from repro.api import CandidateInfo, RoutingInfo, TimingInfo

        result = QueryResult(
            question=question,
            ok=ok,
            answer=tuple(answer),
            request_id=request_id,
            error=None if ok else ErrorInfo(code=code, message="m"),
            shard=ShardInfo(digest="d" * 64, name="t", rows=3, columns=2),
            candidates=(
                CandidateInfo(
                    rank=0, answer=tuple(answer), utterance="u",
                    sexpr="(all-records)", score=score,
                ),
            ),
            routing=RoutingInfo(
                mode="table", pruned=False, fallback=False,
                shards_parsed=1, shards_pruned=0,
            ),
            timing=TimingInfo(
                parse_seconds=abs(score) if score == score else 0.0,
                explain_seconds=0.0,
                total_seconds=abs(score),
            ),
            cache={"candidates": {"hits": 1, "misses": 2}},
        )
        wire = json.loads(json.dumps(result.to_dict()))
        assert QueryResult.from_dict(wire) == result


class _ServerThread:
    """Hosts an AsyncServer's TCP endpoint in a background event loop."""

    def __init__(self, catalog: TableCatalog) -> None:
        self.catalog = catalog
        self.port = None
        self.error = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as error:  # pragma: no cover - surfaced via skip
            self.error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        async with AsyncServer(self.catalog, max_workers=2) as server:
            tcp = await server.serve(host="127.0.0.1", port=0)
            self.port = tcp.sockets[0].getsockname()[1]
            self._ready.set()
            await self._stop.wait()
            tcp.close()
            await tcp.wait_closed()

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self.port is None:
            pytest.skip(f"cannot host a loopback TCP server: {self.error}")
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


class TestReproClient:
    def test_in_process_client_matches_engine(self, corpus, engine):
        _, questions = corpus
        with ReproClient.in_process(engine) as client:
            assert client.ping() is True
            assert {entry["name"] for entry in client.tables()} == {
                "olympics", "medals", "roster"
            }
            result = client.query(questions["olympics"], target="olympics")
            reference = engine.query(questions["olympics"], target="olympics")
            assert result.canonical_dict() == reference.canonical_dict()

    def test_tcp_client_is_bit_identical_to_engine(self, corpus, engine):
        """Acceptance: the exact client path over a real socket returns
        the same canonical envelope as the in-process engine — both
        modes, errors included."""
        _, questions = corpus
        with _ServerThread(engine.catalog) as hosted:
            with ReproClient.connect("127.0.0.1", hosted.port) as client:
                assert client.ping() is True
                assert len(client.tables()) == 3

                for target in ("olympics", None):
                    wire_result = client.query(
                        questions["olympics"], target=target
                    )
                    local = engine.query(questions["olympics"], target=target)
                    assert (
                        wire_result.canonical_dict() == local.canonical_dict()
                    )

                unknown = client.query("q", target="atlantis")
                assert unknown.error_code is ErrorCode.UNKNOWN_TABLE
                local_unknown = engine.query("q", target="atlantis")
                assert (
                    unknown.canonical_dict() == local_unknown.canonical_dict()
                )

                many = client.query_many(
                    [
                        QueryRequest(
                            question=questions["medals"], target="medals"
                        ),
                        QueryRequest(question=questions["roster"]),
                    ]
                )
                locals_ = engine.query_many(
                    [
                        QueryRequest(
                            question=questions["medals"], target="medals"
                        ),
                        QueryRequest(question=questions["roster"]),
                    ]
                )
                for wire_result, local in zip(many, locals_):
                    assert (
                        wire_result.canonical_dict() == local.canonical_dict()
                    )

    def test_alias_registered_shard_keeps_its_registered_name_on_the_wire(
        self, olympics_table
    ):
        """Regression: the served v2 envelope must carry the *registered*
        shard identity (which may alias the table's own name), exactly as
        ReproEngine.query reports it."""
        engine = ReproEngine()
        engine.register(olympics_table, name="games-2004")
        question = "which country hosted in 2004"
        local = engine.query(question, target="games-2004")
        assert local.shard.name == "games-2004"
        with _ServerThread(engine.catalog) as hosted:
            with ReproClient.connect("127.0.0.1", hosted.port) as client:
                wire_result = client.query(question, target="games-2004")
                assert wire_result.shard.name == "games-2004"
                assert wire_result.canonical_dict() == local.canonical_dict()

    def test_transports_return_identical_auxiliary_shapes(self, corpus, engine):
        """tables()/stats() parse the same whichever transport backs the
        client (server counters are None in-process — no dispatcher)."""
        with ReproClient.in_process(engine) as local:
            local_tables = local.tables()
            local_stats = local.stats()
        with _ServerThread(engine.catalog) as hosted:
            with ReproClient.connect("127.0.0.1", hosted.port) as remote:
                remote_tables = remote.tables()
                remote_stats = remote.stats()
        assert [set(entry) for entry in local_tables] == [
            set(entry) for entry in remote_tables
        ]
        assert {entry["name"] for entry in local_tables} == {
            entry["name"] for entry in remote_tables
        }
        assert set(local_stats) == set(remote_stats) == {"catalog", "server"}
        assert local_stats["server"] is None
        assert set(local_stats["catalog"]) == set(remote_stats["catalog"])

    def test_tcp_client_aquery(self, corpus, engine):
        _, questions = corpus
        with _ServerThread(engine.catalog) as hosted:
            with ReproClient.connect("127.0.0.1", hosted.port) as client:

                async def drive():
                    return await client.aquery(
                        questions["olympics"], target="olympics"
                    )

                result = asyncio.run(drive())
                assert result.answer == ("Greece",)


class TestTransportFaults:
    """Client-vs-dead-server: every transport fault is a coded ApiError
    — never a raw socket exception, never a hang."""

    def test_connect_to_closed_port_is_coded_server_closed(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        with pytest.raises(ApiError) as excinfo:
            ReproClient.connect("127.0.0.1", port, timeout=5.0)
        assert excinfo.value.code is ErrorCode.SERVER_CLOSED

    def test_unresponsive_server_is_coded_timeout(self):
        import socket

        silent = socket.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)  # accepts, never answers the hello
        port = silent.getsockname()[1]
        try:
            with pytest.raises(ApiError) as excinfo:
                ReproClient.connect("127.0.0.1", port, timeout=0.3)
            assert excinfo.value.code is ErrorCode.TIMEOUT
        finally:
            silent.close()

    def test_server_dying_mid_session_is_coded_server_closed(self, corpus, engine):
        """The server goes away between two queries: the next query (and
        the reconnect attempts the retry loop makes) fail with coded
        SERVER_CLOSED, not ConnectionResetError/BrokenPipeError."""
        _, questions = corpus
        with _ServerThread(engine.catalog) as hosted:
            client = ReproClient.connect(
                "127.0.0.1", hosted.port, timeout=5.0, retries=1,
                backoff_base=0.01,
            )
            assert client.query(
                questions["olympics"], target="olympics"
            ).ok is True
        # hosted has now fully stopped; the port no longer listens.
        with pytest.raises(ApiError) as excinfo:
            client.query(questions["olympics"], target="olympics")
        assert excinfo.value.code is ErrorCode.SERVER_CLOSED
        client.close()


class TestSessionRewiring:
    def test_session_over_an_engine_routes_through_query(self, corpus, engine):
        tables, questions = corpus
        session = InterfaceSession(engine=engine, k=5)
        turn = session.ask(questions["olympics"], "olympics")
        assert turn.answer == ("Greece",)
        assert len(turn.response.explained) <= 5
        # The catalog saw the session's traffic (recency bookkeeping).
        assert engine.catalog.stats()["asks"] >= 1
        # Unknown refs still raise the catalog's typed error.
        with pytest.raises(CatalogError):
            session.ask("q", "atlantis")

    def test_session_answers_match_plain_interface(self, corpus, engine):
        tables, questions = corpus
        session = InterfaceSession(engine=engine, k=7)
        turn = session.ask(questions["medals"], "medals")
        reference = NLInterface(k=7).ask(questions["medals"], tables[1])
        assert _signature(turn.response) == _signature(reference)


class TestResultFromServed:
    def test_adapts_both_answer_shapes(self, corpus, engine):
        _, questions = corpus
        response = engine.catalog.ask(questions["olympics"], "olympics")
        single = result_from_served(questions["olympics"], response)
        assert single.routing.mode == "table" and single.ok
        ranking = engine.catalog.ask_any(questions["olympics"])
        wide = result_from_served(questions["olympics"], ranking)
        assert wide.routing.mode == "any" and wide.ranked
        # Identical to the engine path, canonically.
        assert (
            wide.canonical_dict()
            == engine.query(questions["olympics"]).canonical_dict()
        )
