"""Tests for the content-addressed on-disk cache (``repro.perf.diskcache``)
and its wiring into :class:`~repro.parser.candidates.SemanticParser`.

The acceptance contract of ISSUE 2: a warm-start process (fresh parser,
same disk store) produces candidates identical to a cold run — and skips
generation entirely.
"""

from __future__ import annotations

import pickle

import pytest

from repro.parser import ParserConfig, SemanticParser
from repro.parser.grammar import CandidateGrammar
from repro.perf import DiskCache
from repro.perf.diskcache import CANDIDATES_NAMESPACE, DISK_CACHE_SCHEMA
from repro.tables import Table


def small_table(name: str = "t") -> Table:
    return Table(
        columns=["Year", "Country"],
        rows=[[1896, "Greece"], [1900, "France"], [2004, "Greece"]],
        name=name,
    )


def signature(parse):
    return [(c.sexpr, c.score, c.probability, c.answer) for c in parse.candidates]


class TestDiskCacheStore:
    def test_roundtrip_and_stats(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get("candidates", ("k",)) is None
        cache.put("candidates", ("k",), {"payload": 1})
        assert cache.get("candidates", ("k",)) == {"payload": 1}
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 1, "writes": 1, "errors": 0}
        assert len(cache) == 1

    def test_layout_is_fanned_out_under_version_root(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put_candidates("ab" * 32, "question", "sig", ())
        entries = list((tmp_path / "v1" / CANDIDATES_NAMESPACE).rglob("*.pkl"))
        assert len(entries) == 1
        # Two-hex fan-out directory between namespace and entry.
        assert len(entries[0].parent.name) == 2

    def test_corrupted_entry_degrades_to_miss_and_is_removed(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("candidates", ("k",), "value")
        path = cache._path("candidates", ("k",))
        path.write_bytes(b"not a pickle")
        assert cache.get("candidates", ("k",)) is None
        assert not path.exists()
        assert cache.stats()["errors"] == 1

    def test_schema_mismatch_degrades_to_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache._path("candidates", ("k",))
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps(("some-other-schema", ("k",), "value")))
        assert cache.get("candidates", ("k",)) is None
        assert DISK_CACHE_SCHEMA == "repro-diskcache-v1"

    def test_shared_root_between_instances(self, tmp_path):
        DiskCache(tmp_path).put("candidates", ("k",), 42)
        assert DiskCache(tmp_path).get("candidates", ("k",)) == 42


class TestParserDiskWiring:
    def test_warm_start_is_identical_to_cold_run(self, tmp_path, monkeypatch):
        """Fresh process simulation: a second parser over the same store
        must produce bit-identical candidates without generating."""
        cold_parser = SemanticParser(config=ParserConfig(disk_cache_dir=str(tmp_path)))
        questions = ["which country hosted in 2004", "what is the highest year"]
        cold = [signature(cold_parser.parse(question, small_table())) for question in questions]

        generate_calls = []
        original_generate = CandidateGrammar.generate
        monkeypatch.setattr(
            CandidateGrammar,
            "generate",
            lambda self, analysis: generate_calls.append(1)
            or original_generate(self, analysis),
        )
        warm_parser = SemanticParser(config=ParserConfig(disk_cache_dir=str(tmp_path)))
        warm = [signature(warm_parser.parse(question, small_table())) for question in questions]

        assert warm == cold
        assert generate_calls == [], "warm start re-ran candidate generation"
        stats = warm_parser.cache_stats()
        assert stats["disk"]["hits"] == len(questions)

    def test_disk_disabled_reports_zero_stats(self):
        parser = SemanticParser()
        assert parser.cache_stats()["disk"] == DiskCache.empty_stats()
        assert "indexes" in parser.cache_stats()

    def test_execution_bundle_warms_new_questions_on_known_table(self, tmp_path):
        first = SemanticParser(config=ParserConfig(disk_cache_dir=str(tmp_path)))
        first.parse("which country hosted in 2004", small_table())

        second = SemanticParser(config=ParserConfig(disk_cache_dir=str(tmp_path)))
        second.parse("what is the highest year", small_table())  # new question
        stats = second.cache_stats()
        # The persisted execution bundle pre-populated the cache: shared
        # sub-queries (column selections etc.) hit without re-execution.
        assert stats["execution"]["hits"] > 0
        assert stats["disk"]["hits"] >= 1  # the execution bundle itself

    def test_different_generation_config_never_shares_entries(self, tmp_path):
        loose = ParserConfig(disk_cache_dir=str(tmp_path), drop_empty_answers=False)
        strict = ParserConfig(disk_cache_dir=str(tmp_path))
        assert loose.generation_signature() != strict.generation_signature()
        question = "how many rows have country greece"
        loose_parse = SemanticParser(config=loose).parse(question, small_table())
        strict_parse = SemanticParser(config=strict).parse(question, small_table())
        reference = SemanticParser(config=ParserConfig()).parse(question, small_table())
        assert signature(strict_parse) == signature(reference)
        assert len(loose_parse.candidates) >= len(strict_parse.candidates)

    def test_table_edit_changes_disk_key(self, tmp_path):
        parser = SemanticParser(config=ParserConfig(disk_cache_dir=str(tmp_path)))
        question = "which country hosted in 2004"
        parser.parse(question, small_table())
        edited = Table(
            columns=["Year", "Country"],
            rows=[[1896, "Greece"], [1900, "France"], [2004, "Sweden"]],
        )
        fresh = SemanticParser(config=ParserConfig(disk_cache_dir=str(tmp_path)))
        parse = fresh.parse(question, edited)
        answers = {answer for candidate in parse.candidates for answer in candidate.answer}
        # No stale payload served for the edited content: the host of 2004
        # is now Sweden, and the disk lookup was a miss (different key).
        assert "Sweden" in answers
        assert fresh.cache_stats()["disk"]["hits"] == 0


class TestEvictionHooks:
    """The parser-level flush/evict hooks behind catalog shard eviction."""

    def test_flush_table_persists_the_execution_bundle(self, tmp_path):
        parser = SemanticParser(config=ParserConfig(disk_cache_dir=str(tmp_path)))
        table = small_table()
        parser.parse("which country hosted in 2004", table)
        parser.flush_table(table)
        bundle = DiskCache(tmp_path).get_execution_bundle(table.fingerprint.digest)
        assert bundle  # non-empty dict of sexpr -> result

    def test_evict_table_drops_in_memory_state(self, tmp_path):
        parser = SemanticParser(config=ParserConfig(disk_cache_dir=str(tmp_path)))
        table = small_table()
        parser.parse("which country hosted in 2004", table)
        assert table.fingerprint in parser._lexicons
        parser.flush_table(table)
        parser.evict_table(table)
        assert table.fingerprint not in parser._lexicons
        assert table.fingerprint not in parser._grammars
        assert not any(
            key[0] == table.fingerprint for key in parser._candidate_cache.keys()
        )
        assert not parser._execution_cache.entries_for(table.fingerprint)

    def test_parse_after_evict_is_identical_and_served_from_disk(self, tmp_path):
        parser = SemanticParser(config=ParserConfig(disk_cache_dir=str(tmp_path)))
        table = small_table()
        before = signature(parser.parse("which country hosted in 2004", table))
        parser.flush_table(table)
        parser.evict_table(table)
        disk_hits = parser._disk_cache.hits
        after = signature(parser.parse("which country hosted in 2004", table))
        assert after == before
        assert parser._disk_cache.hits > disk_hits  # candidates came from disk

    def test_evict_without_disk_cache_is_safe(self):
        parser = SemanticParser()
        table = small_table()
        before = signature(parser.parse("which country hosted in 2004", table))
        parser.flush_table(table)  # no-op without a store
        parser.evict_table(table)
        assert signature(parser.parse("which country hosted in 2004", table)) == before

    def test_execution_cache_evict_fingerprint_is_scoped(self):
        parser = SemanticParser()
        table_a, table_b = small_table("a"), Table(
            columns=["Rank", "Nation"], rows=[[1, "Fiji"], [2, "Samoa"]], name="b"
        )
        parser.parse("which country hosted in 2004", table_a)
        parser.parse("which nation is ranked 1", table_b)
        removed = parser._execution_cache.evict_fingerprint(table_a.fingerprint)
        assert removed > 0
        assert not parser._execution_cache.entries_for(table_a.fingerprint)
        assert parser._execution_cache.entries_for(table_b.fingerprint)
