"""Tests for the fingerprint-addressed multi-table catalog (ISSUE 3)."""

from __future__ import annotations

import pytest

from repro.interface import InterfaceSession, NLInterface
from repro.perf import DiskCache
from repro.tables import CatalogError, Table, TableCatalog, TableRef


@pytest.fixture
def corpus(olympics_table, medals_table, roster_table):
    """Three distinct tables and one routable question for each."""
    questions = {
        "olympics": "which country hosted in 2004",
        "medals": "how many gold did Fiji win",
        "roster": "which club has the most players",
    }
    return [olympics_table, medals_table, roster_table], questions


def _signature(response):
    """Everything observable about a response except wall-clock timings."""
    return [
        (item.rank, item.answer, item.utterance, item.candidate.sexpr, item.candidate.score)
        for item in response.explained
    ]


class TestRegistration:
    def test_register_returns_content_ref(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        ref = catalog.register(tables[0])
        assert isinstance(ref, TableRef)
        assert ref.digest == tables[0].fingerprint.digest
        assert ref.name == tables[0].name
        assert (ref.num_rows, ref.num_columns) == (
            tables[0].num_rows,
            tables[0].num_columns,
        )

    def test_register_all_is_index_aligned(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        refs = catalog.register_all(tables)
        assert [ref.digest for ref in refs] == [
            table.fingerprint.digest for table in tables
        ]
        assert len(catalog) == 3
        assert catalog.refs() == refs

    def test_reregistering_equal_content_is_idempotent(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        first = catalog.register(tables[0])
        again = catalog.register(tables[0], name="alias")
        assert again.digest == first.digest
        assert len(catalog) == 1
        # Both names now resolve to the same shard.
        assert catalog.resolve("alias").digest == first.digest
        assert catalog.resolve(tables[0].name).digest == first.digest

    def test_name_collision_with_different_content_raises(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        catalog.register(tables[0], name="shared")
        with pytest.raises(CatalogError, match="already registered"):
            catalog.register(tables[1], name="shared")
        # The rejected table must leave no corpus-index posting behind.
        assert catalog.stats()["retrieval"]["shards"] == len(catalog) == 1


class TestResolution:
    def test_resolves_name_digest_prefix_table_and_ref(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        ref = catalog.register(tables[0])
        for handle in (ref, ref.name, ref.digest, ref.digest[:12], tables[0]):
            assert catalog.resolve(handle) == ref

    def test_unknown_handles_raise(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        catalog.register(tables[0])
        with pytest.raises(CatalogError):
            catalog.resolve("atlantis")
        with pytest.raises(CatalogError):
            catalog.resolve(tables[1])  # never registered
        with pytest.raises(CatalogError):
            catalog.resolve(42)

    def test_short_prefixes_are_rejected(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        ref = catalog.register(tables[0])
        # A 4-hex prefix is below the safety floor even when unambiguous.
        with pytest.raises(CatalogError):
            catalog.resolve(ref.digest[:4])

    def test_contains(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        catalog.register(tables[0])
        assert tables[0] in catalog
        assert tables[1] not in catalog


class TestRouting:
    def test_ask_is_bit_identical_to_direct_interface(self, corpus):
        """Acceptance: >= 3 distinct tables, answers identical to NLInterface.ask."""
        tables, questions = corpus
        catalog = TableCatalog()
        catalog.register_all(tables)
        reference = NLInterface()
        for table in tables:
            question = questions[table.name]
            routed = catalog.ask(question, table.name)
            direct = reference.ask(question, table)
            assert routed.table.fingerprint == table.fingerprint
            assert _signature(routed) == _signature(direct)

    def test_ask_many_matches_per_ask(self, corpus):
        tables, questions = corpus
        catalog = TableCatalog()
        catalog.register_all(tables)
        items = [(questions[table.name], table.name) for table in tables] * 2
        batched = catalog.ask_many(items, workers=4)
        assert len(batched) == len(items)
        for (question, name), response in zip(items, batched):
            assert _signature(response) == _signature(catalog.ask(question, name))

    def test_ask_any_routes_to_the_right_table(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        refs = catalog.register_all(tables)
        answer = catalog.ask_any("which country hosted in 2004")
        # Retrieve-then-parse: only the anchorable shard was parsed.
        assert answer.pruned
        assert answer.best_ref == refs[0]  # the olympics shard
        assert answer.answer == ("Greece",)
        assert answer.shards_parsed < 3
        assert answer.shards_parsed + answer.shards_pruned == 3
        assert not answer.routing.fallback

    def test_ask_any_broadcast_parses_every_shard(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        refs = catalog.register_all(tables)
        answer = catalog.ask_any("which country hosted in 2004", prune=False)
        assert len(answer.ranked) == 3
        assert answer.best_ref == refs[0]
        assert answer.answer == ("Greece",)
        assert answer.shards_pruned == 0

    def test_ask_any_pruned_top_matches_broadcast_top(self, corpus):
        tables, questions = corpus
        catalog = TableCatalog()
        catalog.register_all(tables)
        for question in questions.values():
            broadcast = catalog.ask_any(question, prune=False)
            pruned = catalog.ask_any(question, prune=True)
            assert pruned.routing.is_candidate(broadcast.best_ref.digest)
            assert pruned.best_ref == broadcast.best_ref
            assert pruned.answer == broadcast.answer

    def test_ask_any_falls_back_to_broadcast_on_no_hits(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        catalog.register_all(tables)
        answer = catalog.ask_any("zyxgarblefrobnicate quux")
        assert answer.routing.fallback
        assert answer.shards_parsed == 3  # nothing pruned: answers never lost
        assert answer.shards_pruned == 0

    def test_ask_any_is_deterministic(self, corpus):
        tables, _ = corpus
        catalog = TableCatalog()
        catalog.register_all(tables)
        first = catalog.ask_any("which country hosted in 2004")
        second = catalog.ask_any("which country hosted in 2004")
        assert [ref for ref, _ in first.ranked] == [ref for ref, _ in second.ranked]
        assert [
            _signature(response) for _, response in first.ranked
        ] == [_signature(response) for _, response in second.ranked]


class TestEviction:
    def test_eviction_roundtrip_is_bit_identical(self, corpus, tmp_path):
        """Acceptance: evict -> disk -> rehydrate with identical results."""
        tables, questions = corpus
        catalog = TableCatalog(cache_dir=str(tmp_path))
        catalog.register_all(tables)
        question = questions["olympics"]
        before = catalog.ask(question, "olympics")

        catalog.evict("olympics")
        assert not catalog.is_hot("olympics")
        # The table and its execution bundle landed in the disk store.
        disk = DiskCache(tmp_path)
        digest = tables[0].fingerprint.digest
        assert disk.get_table(digest) is not None
        assert disk.get_execution_bundle(digest)

        after = catalog.ask(question, "olympics")
        assert _signature(after) == _signature(before)
        assert catalog.is_hot("olympics")
        assert catalog.stats()["rehydrations"] == 1

    def test_eviction_without_disk_keeps_the_table(self, corpus):
        tables, questions = corpus
        catalog = TableCatalog()
        catalog.register_all(tables)
        before = catalog.ask(questions["medals"], "medals")
        catalog.evict("medals")
        assert not catalog.is_hot("medals")
        after = catalog.ask(questions["medals"], "medals")
        assert _signature(after) == _signature(before)

    def test_max_hot_shards_evicts_lru(self, corpus, tmp_path):
        tables, questions = corpus
        catalog = TableCatalog(cache_dir=str(tmp_path), max_hot_shards=2)
        catalog.register_all(tables)
        for table in tables:
            catalog.ask(questions[table.name], table.name)
        stats = catalog.stats()
        assert stats["hot"] <= 2
        assert stats["cold"] >= 1
        assert stats["evictions"] >= 1
        # The least recently used shard is the cold one.
        assert catalog.is_hot("roster")
        assert not catalog.is_hot("olympics")

    def test_evict_cold_keeps_the_most_recent(self, corpus, tmp_path):
        tables, questions = corpus
        catalog = TableCatalog(cache_dir=str(tmp_path))
        catalog.register_all(tables)
        for table in tables:
            catalog.ask(questions[table.name], table.name)
        evicted = catalog.evict_cold(keep=1)
        assert len(evicted) == 2
        assert catalog.is_hot("roster")
        assert not catalog.is_hot("olympics")
        assert not catalog.is_hot("medals")

    def test_rehydration_after_cold_restart(self, corpus, tmp_path):
        """A fresh catalog over the same cache dir rehydrates evicted shards."""
        tables, questions = corpus
        first = TableCatalog(cache_dir=str(tmp_path))
        ref = first.register(tables[0])
        before = first.ask(questions["olympics"], ref)
        first.evict(ref)

        # New process, new catalog: only the ref survives (e.g. from a
        # request log); the shard itself comes back from the disk store.
        second = TableCatalog(cache_dir=str(tmp_path))
        rebuilt = second.register(second_table_from_disk(tmp_path, ref))
        after = second.ask(questions["olympics"], rebuilt)
        assert _signature(after) == _signature(before)


def second_table_from_disk(cache_dir, ref: TableRef) -> Table:
    table = DiskCache(cache_dir).get_table(ref.digest)
    assert table is not None
    assert table.fingerprint.digest == ref.digest
    return table


class TestSessionWiring:
    def test_session_routes_through_catalog_by_name(self, corpus):
        tables, questions = corpus
        catalog = TableCatalog()
        catalog.register_all(tables)
        session = InterfaceSession(catalog=catalog)
        turn = session.ask(questions["olympics"], "olympics")
        assert isinstance(turn.table, Table)
        assert turn.table.fingerprint == tables[0].fingerprint
        assert turn.answer == ("Greece",)

    def test_session_auto_registers_new_tables(self, corpus):
        tables, questions = corpus
        catalog = TableCatalog()
        session = InterfaceSession(catalog=catalog)
        session.ask(questions["medals"], tables[1])
        assert tables[1] in catalog

    def test_session_without_catalog_requires_a_table(self, corpus):
        _, questions = corpus
        session = InterfaceSession()
        with pytest.raises(TypeError):
            session.ask(questions["olympics"], "olympics")
