"""Shared fixtures: the paper's running-example tables and small datasets."""

from __future__ import annotations

import pytest

from repro.tables import Table


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench_smoke: fast, scaled-down sweep of the bench code paths "
        "(parse: all backends, disk cache warm/cold; serving: sequential "
        "vs async vs hot-set eviction); select with -m bench_smoke",
    )


@pytest.fixture
def olympics_table() -> Table:
    """The Figure 1 table: Olympic games host cities."""
    return Table(
        columns=["Year", "Country", "City"],
        rows=[
            [1896, "Greece", "Athens"],
            [1900, "France", "Paris"],
            [2004, "Greece", "Athens"],
            [2008, "China", "Beijing"],
            [2012, "UK", "London"],
            [2016, "Brazil", "Rio de Janeiro"],
        ],
        name="olympics",
    )


@pytest.fixture
def medals_table() -> Table:
    """The Figure 6 table: Pacific Games medal tally."""
    return Table(
        columns=["Rank", "Nation", "Gold", "Silver", "Bronze", "Total"],
        rows=[
            [1, "New Caledonia", 120, 107, 61, 288],
            [2, "Tahiti", 60, 42, 42, 144],
            [3, "Papua New Guinea", 48, 25, 48, 121],
            [4, "Fiji", 33, 44, 53, 130],
            [5, "Samoa", 22, 17, 34, 73],
            [6, "Nauru", 8, 10, 10, 28],
            [7, "Tonga", 4, 6, 10, 20],
            [8, "Vanuatu", 3, 5, 8, 16],
        ],
        name="medals",
    )


@pytest.fixture
def roster_table() -> Table:
    """The Figure 4 table: national team appearances."""
    return Table(
        columns=["Name", "Position", "Games", "Club", "Goals"],
        rows=[
            ["Erich Burgener", "GK", 3, "Servette", 0],
            ["Charly In-Albon", "DF", 4, "Grasshoppers", 0],
            ["Andy Egli", "DF", 6, "Grasshoppers", 1],
            ["Marcel Koller", "DF", 2, "Grasshoppers", 0],
            ["Heinz Hermann", "MF", 6, "Grasshoppers", 2],
            ["Lucien Favre", "MF", 5, "Toulouse", 1],
            ["Roger Berbig", "GK", 3, "Grasshoppers", 0],
            ["Rene Botteron", "MF", 1, "FC Nuremburg", 0],
        ],
        name="roster",
    )


@pytest.fixture
def shipwrecks_table() -> Table:
    """The Figure 9 table: Great Lakes shipwrecks."""
    return Table(
        columns=["Ship", "Vessel", "Lake", "Lives lost"],
        rows=[
            ["Argus", "Steamer", "Lake Huron", 25],
            ["Hydrus", "Steamer", "Lake Huron", 28],
            ["Plymouth", "Barge", "Lake Michigan", 7],
            ["Issac M. Scott", "Steamer", "Lake Huron", 28],
            ["Henry B. Smith", "Steamer", "Lake Superior", 23],
            ["Lightship No. 82", "Lightship", "Lake Erie", 6],
            ["Wexford", "Steamer", "Lake Huron", 17],
            ["Leafield", "Steamer", "Lake Superior", 18],
        ],
        name="shipwrecks",
    )


@pytest.fixture
def seasons_table() -> Table:
    """The Figure 8 table: club seasons (USL A-League)."""
    return Table(
        columns=["Year", "League", "Attendance", "Open Cup"],
        rows=[
            [2002, "USL A-League", 6260, "Did not qualify"],
            [2003, "USL A-League", 5871, "Did not qualify"],
            [2004, "USL A-League", 5628, "4th Round"],
            [2005, "USL First Division", 6028, "4th Round"],
            [2006, "USL First Division", 5575, "3rd Round"],
            [2007, "USL First Division", 6851, "2nd Round"],
            [2008, "USL First Division", 8567, "1st Round"],
            [2009, "USL First Division", 9734, "3rd Round"],
        ],
        name="seasons",
        date_columns=[],
    )


@pytest.fixture
def large_table() -> Table:
    """A table large enough to require highlight sampling (Section 5.3)."""
    rows = []
    countries = ["Madagascar", "Burkina Faso", "Kenya", "Ghana", "Togo"]
    for index in range(200):
        rows.append(
            [
                index + 1,
                countries[index % len(countries)],
                1980 + (index % 35),
                round(1.5 + (index % 17) * 0.1, 2),
            ]
        )
    return Table(
        columns=["Row", "Country", "Year", "Growth Rate"],
        rows=rows,
        name="growth",
    )


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small synthetic dataset shared by parser / interface tests."""
    from repro.dataset import DatasetConfig, build_dataset

    return build_dataset(DatasetConfig(num_tables=12, questions_per_table=5, seed=21))


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    from repro.dataset import split_by_tables

    return split_by_tables(tiny_dataset, test_fraction=0.25, seed=2)


@pytest.fixture(scope="session")
def small_trained_parser(tiny_split):
    """A parser trained briefly with weak supervision (session-scoped: reused)."""
    from repro.parser import train_parser

    return train_parser(
        tiny_split.train.training_examples(annotated=False)[:50],
        epochs=2,
        use_annotations=False,
        seed=3,
    )
