"""Unit tests for the online-learning extension (paper Future Work)."""

import pytest

from repro.interface.online import OnlineLearner, OnlineReport
from repro.parser import SemanticParser
from repro.users import JudgmentParameters, SimulatedWorker, worker_pool


@pytest.fixture(scope="module")
def online_inputs():
    from repro.dataset import DatasetConfig, build_dataset

    dataset = build_dataset(DatasetConfig(num_tables=12, questions_per_table=5, seed=77))
    return dataset.evaluation_examples()[:30]


class TestOnlineLoop:
    def test_every_question_produces_an_interaction(self, online_inputs):
        learner = OnlineLearner(SemanticParser(), k=7)
        worker = worker_pool(1, seed=1)[0]
        report = learner.run(online_inputs[:10], worker)
        assert report.total == 10
        assert 0.0 <= report.hybrid_correctness() <= 1.0

    def test_updates_applied_when_user_picks(self, online_inputs):
        parser = SemanticParser()
        learner = OnlineLearner(parser, k=7)
        worker = worker_pool(1, seed=2)[0]
        report = learner.run(online_inputs[:12], worker)
        assert report.updates_applied > 0
        assert parser.model.updates_applied == report.updates_applied
        assert parser.model.weights  # something was learned

    def test_learning_disabled_keeps_model_untouched(self, online_inputs):
        parser = SemanticParser()
        learner = OnlineLearner(parser, k=7, learn=False)
        worker = worker_pool(1, seed=3)[0]
        report = learner.run(online_inputs[:8], worker)
        assert report.updates_applied == 0
        assert parser.model.weights == {}

    def test_online_learning_improves_over_the_stream(self, online_inputs):
        """With a reliable worker, the second half should not be worse than the
        first half by much (the parser is learning from the corrections)."""
        parser = SemanticParser()
        learner = OnlineLearner(parser, k=7)
        worker = SimulatedWorker(
            "oracle-ish",
            judgment=JudgmentParameters(recognise_correct=1.0, reject_incorrect=1.0),
            seed=4,
        )
        report = learner.run(online_inputs, worker)
        first, second = report.halves()
        assert second >= first - 0.1
        assert report.hybrid_correctness() >= report.parser_correctness()

    def test_learning_curve_length(self, online_inputs):
        learner = OnlineLearner(SemanticParser(), k=7)
        worker = worker_pool(1, seed=5)[0]
        report = learner.run(online_inputs[:15], worker)
        curve = report.learning_curve(window=5)
        assert len(curve) == 11
        assert all(0.0 <= value <= 1.0 for value in curve)

    def test_empty_report(self):
        report = OnlineReport()
        assert report.parser_correctness() == 0.0
        assert report.halves() == (0.0, 0.0)
