"""Unit tests for the text and HTML renderers."""

import pytest

from repro.core import (
    TEXT_LEGEND,
    highlight,
    render_html,
    render_table_text,
    render_text,
)
from repro.dcs import builder as q


@pytest.fixture
def figure6_highlight(medals_table):
    return highlight(q.value_difference("Total", "Nation", "Fiji", "Tonga"), medals_table)


class TestTextRendering:
    def test_contains_all_headers(self, figure6_highlight, medals_table):
        text = render_text(figure6_highlight)
        for column in medals_table.columns:
            assert column in text

    def test_colored_cells_use_double_asterisks(self, figure6_highlight):
        text = render_text(figure6_highlight)
        assert "**130**" in text
        assert "**20**" in text

    def test_framed_cells_use_brackets(self, figure6_highlight):
        text = render_text(figure6_highlight)
        assert "[Fiji]" in text
        assert "[Tonga]" in text

    def test_lit_cells_use_tildes(self, figure6_highlight):
        assert "~Samoa~" in render_text(figure6_highlight)

    def test_legend_toggle(self, figure6_highlight):
        assert TEXT_LEGEND in render_text(figure6_highlight, legend=True)
        assert TEXT_LEGEND not in render_text(figure6_highlight, legend=False)

    def test_row_subset(self, figure6_highlight):
        text = render_text(figure6_highlight, rows=[3, 6], legend=False)
        assert "Fiji" in text and "Tonga" in text
        assert "Samoa" not in text

    def test_ansi_mode_emits_escape_codes(self, figure6_highlight):
        text = render_text(figure6_highlight, ansi=True)
        assert "\033[" in text

    def test_ansi_columns_stay_aligned(self, figure6_highlight):
        plain = render_text(figure6_highlight, legend=False)
        ansi = render_text(figure6_highlight, ansi=True, legend=False)
        assert len(plain.splitlines()) == len(ansi.splitlines())

    def test_aggregate_header_marker_rendered(self, olympics_table):
        highlighted = highlight(
            q.max_(q.column_values("Year", q.column_records("Country", "Greece"))),
            olympics_table,
        )
        assert "MAX(Year)" in render_text(highlighted)

    def test_plain_table_rendering(self, olympics_table):
        text = render_table_text(olympics_table)
        assert "Athens" in text and "Rio de Janeiro" in text


class TestHTMLRendering:
    def test_produces_table_markup(self, figure6_highlight):
        html = render_html(figure6_highlight)
        assert html.startswith("<table")
        assert html.endswith("</table>")
        assert html.count("<tr>") == 9  # header + 8 rows

    def test_caption(self, figure6_highlight):
        html = render_html(figure6_highlight, caption="difference in column Total")
        assert "<caption>difference in column Total</caption>" in html

    def test_styles_attached_to_highlighted_cells(self, figure6_highlight):
        html = render_html(figure6_highlight)
        assert "background-color:#7ddf7d" in html  # colored
        assert "border:2px solid" in html          # framed
        assert "background-color:#fff2b3" in html  # lit

    def test_cell_text_is_escaped(self):
        from repro.tables import Table

        table = Table(columns=["A"], rows=[["<script>"]])
        highlighted = highlight(q.column_records("A", "<script>"), table)
        assert "<script>" not in render_html(highlighted)
        assert "&lt;script&gt;" in render_html(highlighted)

    def test_row_subset(self, figure6_highlight):
        html = render_html(figure6_highlight, rows=[3, 6])
        assert html.count("<tr>") == 3
