"""Unit tests for schema inference (column profiling)."""

import pytest

from repro.tables import Table, infer_schema, profile_column


class TestProfiles:
    def test_numeric_column_detected(self, medals_table):
        schema = infer_schema(medals_table)
        assert schema.column("Gold").is_numeric
        assert not schema.column("Nation").is_numeric

    def test_textual_column_detected(self, medals_table):
        schema = infer_schema(medals_table)
        assert schema.column("Nation").is_textual

    def test_date_column_detected(self):
        table = Table(
            columns=["Date", "Event"],
            rows=[["June 8, 2013", "a"], ["July 9, 2014", "b"], ["May 1, 2015", "c"]],
        )
        schema = infer_schema(table)
        assert schema.column("Date").is_date
        assert "Date" in schema.date_columns

    def test_distinct_counts(self, shipwrecks_table):
        profile = profile_column(shipwrecks_table, "Lake")
        assert profile.distinct_count == 4
        assert profile.total_count == 8
        assert 0 < profile.distinct_fraction < 1

    def test_empty_table_profile(self):
        table = Table(columns=["A"], rows=[])
        profile = profile_column(table, "A")
        assert profile.total_count == 0
        assert profile.distinct_fraction == 0.0


class TestSchemaGroups:
    def test_numeric_columns(self, medals_table):
        schema = infer_schema(medals_table)
        assert set(schema.numeric_columns) == {"Rank", "Gold", "Silver", "Bronze", "Total"}

    def test_textual_columns(self, medals_table):
        schema = infer_schema(medals_table)
        assert schema.textual_columns == ["Nation"]

    def test_comparable_columns_include_dates(self):
        table = Table(
            columns=["Year", "City"],
            rows=[[1896, "Athens"], [1900, "Paris"]],
            date_columns=["Year"],
        )
        schema = infer_schema(table)
        assert "Year" in schema.comparable_columns

    def test_mostly_numeric_column_counts_as_numeric(self):
        table = Table(
            columns=["Score"],
            rows=[[1], [2], [3], [4], ["n/a"]],
        )
        schema = infer_schema(table)
        assert schema.column("Score").is_numeric
