"""Unit tests for the simulated work-time model."""

import pytest

from repro.users import ExplanationMode, TimingParameters, WorkTimeModel


class TestQuestionTimes:
    def test_highlights_are_faster_than_utterances_only(self):
        fast = WorkTimeModel(ExplanationMode.UTTERANCES_AND_HIGHLIGHTS, seed=1)
        slow = WorkTimeModel(ExplanationMode.UTTERANCES_ONLY, seed=1)
        fast_avg = sum(fast.question_seconds(7) for _ in range(200)) / 200
        slow_avg = sum(slow.question_seconds(7) for _ in range(200)) / 200
        assert fast_avg < slow_avg
        # The paper reports roughly a one-third saving (Table 5).
        assert 0.5 < fast_avg / slow_avg < 0.85

    def test_formal_only_is_slowest(self):
        formal = WorkTimeModel(ExplanationMode.FORMAL_ONLY, seed=2)
        utterances = WorkTimeModel(ExplanationMode.UTTERANCES_ONLY, seed=2)
        formal_avg = sum(formal.question_seconds(7) for _ in range(100)) / 100
        utterances_avg = sum(utterances.question_seconds(7) for _ in range(100)) / 100
        assert formal_avg > utterances_avg

    def test_more_candidates_take_longer(self):
        model = WorkTimeModel(ExplanationMode.UTTERANCES_ONLY, seed=3)
        short = sum(model.question_seconds(3) for _ in range(100)) / 100
        long = sum(model.question_seconds(10) for _ in range(100)) / 100
        assert long > short

    def test_times_are_positive(self):
        model = WorkTimeModel(ExplanationMode.UTTERANCES_AND_HIGHLIGHTS, seed=4)
        assert all(model.question_seconds(7) > 0 for _ in range(50))

    def test_session_minutes_near_paper_calibration(self):
        fast = WorkTimeModel(ExplanationMode.UTTERANCES_AND_HIGHLIGHTS, seed=5)
        slow = WorkTimeModel(ExplanationMode.UTTERANCES_ONLY, seed=5)
        fast_minutes = fast.session_minutes(20, 7)
        slow_minutes = slow.session_minutes(20, 7)
        assert 10 < fast_minutes < 25
        assert 18 < slow_minutes < 35
        assert fast_minutes < slow_minutes

    def test_custom_parameters(self):
        params = TimingParameters(read_utterance_seconds=1.0, question_overhead_seconds=0.0,
                                  noise_fraction=0.0)
        model = WorkTimeModel(ExplanationMode.UTTERANCES_ONLY, params, seed=6)
        assert model.question_seconds(5) == pytest.approx(5.0)
