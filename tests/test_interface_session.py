"""Unit tests for the terminal interface session."""

import pytest

from repro.interface import InterfaceSession, NLInterface


class TestSession:
    def test_ask_records_turn(self, medals_table):
        session = InterfaceSession(k=5)
        turn = session.ask("What was the Total of Fiji?", medals_table)
        assert len(session.turns) == 1
        assert turn.answer

    def test_default_choice_is_parser_top(self, medals_table):
        session = InterfaceSession(k=5)
        turn = session.ask("What was the Total of Fiji?", medals_table)
        assert turn.chosen is None
        assert turn.executed_query == turn.response.top.candidate.query

    def test_explicit_choice(self, medals_table):
        session = InterfaceSession(k=5)
        turn = session.ask(
            "What was the Total of Fiji?", medals_table, choose=lambda response: 1
        )
        assert turn.chosen_index == 1
        assert turn.executed_query == turn.response.explained[1].candidate.query

    def test_out_of_range_choice_falls_back(self, medals_table):
        session = InterfaceSession(k=3)
        turn = session.ask(
            "What was the Total of Fiji?", medals_table, choose=lambda response: 42
        )
        assert turn.chosen is None
        assert turn.answer == turn.response.top.answer

    def test_feedback_examples_from_choices(self, medals_table, olympics_table):
        session = InterfaceSession(k=5)
        session.ask("What was the Total of Fiji?", medals_table, choose=lambda response: 0)
        session.ask("When did Greece host?", olympics_table)  # no choice -> no feedback
        feedback = session.feedback_examples()
        assert len(feedback) == 1
        assert feedback[0].annotated_queries

    def test_shared_interface(self, medals_table):
        interface = NLInterface(k=4)
        session = InterfaceSession(interface=interface, k=4)
        session.ask("total of Fiji", medals_table)
        assert session.interface is interface
