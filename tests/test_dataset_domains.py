"""Unit tests for the synthetic-corpus domain schemas."""

import pytest

from repro.dataset import DOMAINS, get_domain
from repro.dataset.domains import ColumnSpec


class TestDomainInventory:
    def test_at_least_ten_domains(self):
        assert len(DOMAINS) >= 10

    def test_domain_names_unique(self):
        names = [domain.name for domain in DOMAINS]
        assert len(names) == len(set(names))

    def test_every_domain_has_at_least_five_columns(self):
        for domain in DOMAINS:
            assert len(domain.columns) >= 5, domain.name

    def test_every_domain_meets_wikitables_min_rows(self):
        for domain in DOMAINS:
            assert domain.min_rows >= 8

    def test_key_column_exists_and_is_textual(self):
        for domain in DOMAINS:
            spec = domain.column(domain.key_column)
            assert spec.kind == "key"

    def test_every_domain_has_a_numeric_column(self):
        for domain in DOMAINS:
            assert domain.numeric_columns, domain.name

    def test_key_pools_are_large_enough(self):
        for domain in DOMAINS:
            spec = domain.column(domain.key_column)
            assert len(spec.pool) >= domain.max_rows, domain.name

    def test_distinct_headers_across_domains(self):
        headers = set()
        for domain in DOMAINS:
            headers.update(domain.column_names)
        assert len(headers) >= 30


class TestDomainAccessors:
    def test_get_domain(self):
        assert get_domain("olympics").key_column == "City"

    def test_get_domain_unknown(self):
        with pytest.raises(KeyError):
            get_domain("does-not-exist")

    def test_column_lookup_unknown(self):
        with pytest.raises(KeyError):
            get_domain("olympics").column("Continent")

    def test_paraphrase_cycles_through_options(self):
        domain = get_domain("medal_tally")
        first = domain.paraphrase_of("Total", 0)
        second = domain.paraphrase_of("Total", 1)
        assert first == "total"
        assert second != first

    def test_column_spec_type_flags(self):
        spec = ColumnSpec(name="Gold", kind="number", low=0, high=10)
        assert spec.is_numeric and not spec.is_textual
        key = ColumnSpec(name="Nation", kind="key", pool=("a", "b"))
        assert key.is_textual and not key.is_numeric
