"""Unit tests for combined query explanations (utterance + highlights)."""

import pytest

from repro.core import (
    LARGE_TABLE_THRESHOLD,
    ExplanationGenerator,
    explain,
    explain_candidates,
)
from repro.dcs import builder as q, to_sexpr


class TestSingleExplanation:
    def test_explanation_bundles_everything(self, medals_table):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        explanation = explain(query, medals_table)
        assert explanation.utterance.startswith("difference in values of column Total")
        assert explanation.answer == ("110",)
        assert explanation.sexpr == to_sexpr(query)
        assert explanation.highlighted.summary()["colored"] == 2

    def test_small_table_shows_every_row(self, medals_table):
        query = q.count(q.column_records("Nation", "Fiji"))
        explanation = explain(query, medals_table)
        assert not explanation.uses_sampling
        assert explanation.display_rows() == list(range(medals_table.num_rows))

    def test_large_table_falls_back_to_sampling(self, large_table):
        assert large_table.num_rows > LARGE_TABLE_THRESHOLD
        query = q.max_(
            q.column_values("Growth Rate", q.column_records("Country", "Madagascar"))
        )
        explanation = explain(query, large_table)
        assert explanation.uses_sampling
        assert 0 < len(explanation.display_rows()) <= 3

    def test_text_rendering_contains_utterance(self, olympics_table):
        query = q.column_values("Year", q.column_records("Country", "Greece"))
        explanation = explain(query, olympics_table)
        text = explanation.as_text()
        assert text.startswith("utterance: values in column Year")
        assert "Athens" in text

    def test_html_rendering_contains_caption(self, olympics_table):
        query = q.most_common("City")
        explanation = explain(query, olympics_table)
        assert "<caption>" in explanation.as_html()

    def test_derivation_matches_utterance(self, olympics_table):
        query = q.count(q.column_records("City", "Athens"))
        explanation = explain(query, olympics_table)
        assert explanation.derivation.text == explanation.utterance


class TestCandidateExplanations:
    def test_explains_every_candidate(self, seasons_table):
        queries = [
            q.max_(q.column_values("Year", q.column_records("League", "USL A-League"))),
            q.min_(q.column_values("Year", q.argmax_records("Attendance"))),
            q.count(q.column_records("League", "USL A-League")),
        ]
        explanations = explain_candidates(queries, seasons_table)
        assert len(explanations) == 3
        assert len({explanation.utterance for explanation in explanations}) == 3

    def test_generator_reuse(self, olympics_table):
        generator = ExplanationGenerator(olympics_table)
        first = generator.explain(q.most_common("City"))
        second = generator.explain(q.count(q.all_records()))
        assert first.table is second.table
