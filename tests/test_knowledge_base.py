"""Unit tests for the knowledge-base view of a table."""

import pytest

from repro.tables import KnowledgeBase, NumberValue, StringValue


@pytest.fixture
def kb(olympics_table):
    return KnowledgeBase(olympics_table)


class TestTriples:
    def test_triple_count_is_rows_times_columns(self, kb, olympics_table):
        assert len(kb.triples) == olympics_table.num_rows * olympics_table.num_columns

    def test_properties_are_column_headers(self, kb):
        assert kb.properties == ["Year", "Country", "City"]

    def test_entities_contain_cities_and_years(self, kb):
        entities = kb.entities()
        assert StringValue("Athens") in entities
        assert NumberValue(2004) in entities

    def test_column_entities(self, kb):
        cities = kb.column_entities("City")
        assert StringValue("Paris") in cities
        assert StringValue("Greece") not in cities


class TestJoins:
    def test_records_with_value(self, kb):
        assert kb.records_with_value("Country", StringValue("Greece")) == frozenset({0, 2})

    def test_records_with_value_cross_type(self, kb):
        assert kb.records_with_value("Year", StringValue("2004")) == frozenset({2})

    def test_records_with_missing_value(self, kb):
        assert kb.records_with_value("Country", StringValue("Atlantis")) == frozenset()

    def test_values_of_records_ordered_by_index(self, kb):
        values = kb.values_of_records("City", {2, 0})
        assert [value.display() for value in values] == ["Athens", "Athens"]


class TestSearch:
    def test_find_entity_exact(self, kb):
        matches = kb.find_entity("athens")
        assert ("City", StringValue("Athens")) in matches

    def test_find_entity_no_match(self, kb):
        assert kb.find_entity("Atlantis") == []

    def test_find_entity_matches_each_column_once(self, kb):
        matches = kb.find_entity("Greece")
        assert len(matches) == 1

    def test_find_columns(self, kb):
        assert kb.find_columns("city") == ["City"]
        assert kb.find_columns("continent") == []
