"""Unit tests for the knowledge-base view of a table."""

import pytest

from repro.tables import KnowledgeBase, NumberValue, StringValue


@pytest.fixture
def kb(olympics_table):
    return KnowledgeBase(olympics_table)


class TestTriples:
    def test_triple_count_is_rows_times_columns(self, kb, olympics_table):
        assert len(kb.triples) == olympics_table.num_rows * olympics_table.num_columns

    def test_properties_are_column_headers(self, kb):
        assert kb.properties == ["Year", "Country", "City"]

    def test_entities_contain_cities_and_years(self, kb):
        entities = kb.entities()
        assert StringValue("Athens") in entities
        assert NumberValue(2004) in entities

    def test_column_entities(self, kb):
        cities = kb.column_entities("City")
        assert StringValue("Paris") in cities
        assert StringValue("Greece") not in cities


class TestJoins:
    def test_records_with_value(self, kb):
        assert kb.records_with_value("Country", StringValue("Greece")) == frozenset({0, 2})

    def test_records_with_value_cross_type(self, kb):
        assert kb.records_with_value("Year", StringValue("2004")) == frozenset({2})

    def test_records_with_missing_value(self, kb):
        assert kb.records_with_value("Country", StringValue("Atlantis")) == frozenset()

    def test_values_of_records_ordered_by_index(self, kb):
        values = kb.values_of_records("City", {2, 0})
        assert [value.display() for value in values] == ["Athens", "Athens"]


class TestSearch:
    def test_find_entity_exact(self, kb):
        matches = kb.find_entity("athens")
        assert ("City", StringValue("Athens")) in matches

    def test_find_entity_no_match(self, kb):
        assert kb.find_entity("Atlantis") == []

    def test_find_entity_matches_each_column_once(self, kb):
        matches = kb.find_entity("Greece")
        assert len(matches) == 1

    def test_find_columns(self, kb):
        assert kb.find_columns("city") == ["City"]
        assert kb.find_columns("continent") == []


class TestMixedTypeColumns:
    """ISSUE 3 regression: an exact typed-index hit must not short-circuit
    the cross-type ``values_equal`` rows (the seed dropped them)."""

    @pytest.fixture
    def mixed_kb(self):
        from repro.tables import Table

        # "Year" holds the *string* "2004" in row 0 and the *number* 2004
        # in row 1 — both must answer the C.v join for either probe type.
        return KnowledgeBase(
            Table(
                columns=["Year", "Label"],
                rows=[
                    [StringValue("2004"), "a"],
                    [NumberValue(2004), "b"],
                    [NumberValue(1900), "c"],
                    [StringValue("n/a"), "d"],
                ],
                name="mixed",
            )
        )

    def test_number_probe_finds_both_rows(self, mixed_kb):
        assert mixed_kb.records_with_value("Year", NumberValue(2004)) == frozenset({0, 1})

    def test_string_probe_finds_both_rows(self, mixed_kb):
        assert mixed_kb.records_with_value("Year", StringValue("2004")) == frozenset({0, 1})

    def test_non_matching_probe(self, mixed_kb):
        assert mixed_kb.records_with_value("Year", NumberValue(1900)) == frozenset({2})
        assert mixed_kb.records_with_value("Year", StringValue("1899")) == frozenset()

    def test_plain_string_rows_unaffected(self, mixed_kb):
        assert mixed_kb.records_with_value("Label", StringValue("d")) == frozenset({3})

    def test_homogeneous_column_fast_path_matches(self, kb):
        # Olympics "Country" is all strings: the exact index alone answers.
        assert kb.records_with_value("Country", StringValue("greece")) == frozenset({0, 2})
