"""Unit tests for floating-grammar candidate generation."""

import pytest

from repro.dcs import ast, to_sexpr
from repro.parser import CandidateGrammar, GenerationConfig, Lexicon


def generate(table, question, config=None):
    grammar = CandidateGrammar(table, config)
    analysis = Lexicon(table).analyze(question)
    return grammar.generate(analysis), analysis


class TestCandidateSpace:
    def test_candidates_are_deduplicated(self, medals_table):
        candidates, _ = generate(medals_table, "total of Fiji")
        sexprs = [to_sexpr(candidate) for candidate in candidates]
        assert len(sexprs) == len(set(sexprs))

    def test_candidate_cap_respected(self, medals_table):
        config = GenerationConfig(max_candidates=25)
        candidates, _ = generate(medals_table, "difference between Fiji and Tonga", config)
        assert len(candidates) <= 25

    def test_lookup_candidate_present(self, medals_table):
        candidates, _ = generate(medals_table, "What was the Total of Fiji?")
        from repro.dcs import builder as q

        gold = q.column_values("Total", q.column_records("Nation", "Fiji"))
        assert to_sexpr(gold) in {to_sexpr(candidate) for candidate in candidates}

    def test_difference_candidate_present(self, medals_table):
        candidates, _ = generate(medals_table, "difference in Total between Fiji and Tonga")
        from repro.dcs import builder as q

        gold = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        sexprs = {to_sexpr(candidate) for candidate in candidates}
        # Either operand order counts as generating the difference candidate.
        alternative = q.value_difference("Total", "Nation", "Tonga", "Fiji")
        assert to_sexpr(gold) in sexprs or to_sexpr(alternative) in sexprs

    def test_superlative_candidates_for_comparable_columns(self, medals_table):
        candidates, _ = generate(medals_table, "who had the most gold medals?")
        assert any(isinstance(candidate, ast.ColumnValues)
                   and isinstance(candidate.records, ast.SuperlativeRecords)
                   for candidate in candidates)

    def test_comparison_candidates_use_question_numbers(self, roster_table):
        candidates, _ = generate(roster_table, "How many players had more than 4 games?")
        comparisons = [
            node
            for candidate in candidates
            for node in candidate.walk()
            if isinstance(node, ast.ComparisonRecords)
        ]
        assert comparisons
        assert any(node.value.value.as_number() == 4 for node in comparisons)

    def test_no_entities_still_generates_floating_candidates(self, medals_table):
        candidates, analysis = generate(medals_table, "which nation appears the most?")
        assert analysis.matched_entities() == []
        assert candidates  # most-common / superlative floating rules still fire

    def test_neighbor_candidates(self, olympics_table):
        candidates, _ = generate(olympics_table, "which city came right after Athens?")
        assert any(
            isinstance(node, (ast.NextRecords, ast.PrevRecords))
            for candidate in candidates
            for node in candidate.walk()
        )

    def test_intersection_skips_same_column_pairs(self, olympics_table):
        candidates, _ = generate(olympics_table, "games in Greece or China")
        for candidate in candidates:
            for node in candidate.walk():
                if isinstance(node, ast.Intersection):
                    left_columns = {
                        sub.column
                        for sub in node.left.walk()
                        if isinstance(sub, (ast.ColumnRecords, ast.ComparisonRecords))
                    }
                    right_columns = {
                        sub.column
                        for sub in node.right.walk()
                        if isinstance(sub, (ast.ColumnRecords, ast.ComparisonRecords))
                    }
                    assert not left_columns & right_columns


class TestConfigurationToggles:
    def test_disable_difference(self, medals_table):
        config = GenerationConfig(enable_difference=False)
        candidates, _ = generate(medals_table, "difference between Fiji and Tonga", config)
        assert not any(isinstance(candidate, ast.Difference) for candidate in candidates)

    def test_disable_superlatives(self, medals_table):
        config = GenerationConfig(enable_superlatives=False)
        candidates, _ = generate(medals_table, "who had the most gold?", config)
        assert not any(
            isinstance(node, ast.SuperlativeRecords)
            for candidate in candidates
            for node in candidate.walk()
        )

    def test_disable_neighbors(self, olympics_table):
        config = GenerationConfig(enable_neighbors=False)
        candidates, _ = generate(olympics_table, "city right after Athens", config)
        assert not any(
            isinstance(node, (ast.NextRecords, ast.PrevRecords))
            for candidate in candidates
            for node in candidate.walk()
        )
