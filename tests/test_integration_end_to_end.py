"""Integration tests: the full pipeline from dataset to retraining.

These tests wire together every subsystem the way the benches do, on a
deliberately small synthetic corpus so they stay fast.
"""

import pytest

from repro.interface import InteractiveDeployment, RetrainingPipeline, RetrainingConfig
from repro.parser import SemanticParser, evaluate_parser, train_parser
from repro.users import FeedbackConfig, StudyConfig, UserStudy, worker_pool


class TestTrainedParserOnHeldOutTables:
    def test_training_beats_untrained_baseline(self, tiny_split, small_trained_parser):
        test_examples = tiny_split.test.evaluation_examples()[:20]
        untrained = evaluate_parser(SemanticParser(), test_examples, k=7)
        trained = evaluate_parser(small_trained_parser, test_examples, k=7)
        assert trained.correctness >= untrained.correctness
        assert trained.mrr >= untrained.mrr

    def test_bound_exceeds_top1_correctness(self, tiny_split, small_trained_parser):
        test_examples = tiny_split.test.evaluation_examples()[:20]
        report = evaluate_parser(small_trained_parser, test_examples, k=7)
        assert report.correctness_bound >= report.correctness


class TestInteractivePipeline:
    def test_user_study_improves_over_parser(self, tiny_split, small_trained_parser):
        test_examples = tiny_split.test.evaluation_examples()[:16]
        study = UserStudy(small_trained_parser, StudyConfig(k=7, questions_per_worker=8, seed=13))
        result = study.run(test_examples, worker_pool(2, seed=13))
        # The whole point of the paper: explanations let users recover correct
        # queries the parser did not rank first.
        assert result.hybrid_correctness >= result.parser_correctness

    def test_oracle_deployment_reaches_bound(self, tiny_split, small_trained_parser):
        test_examples = tiny_split.test.evaluation_examples()[:10]
        deployment = InteractiveDeployment(parser=small_trained_parser, k=7)
        report = deployment.run_with_oracle(test_examples)
        assert report.user_correctness == report.correctness_bound


class TestFeedbackLoop:
    def test_full_feedback_retraining_cycle(self, tiny_split, small_trained_parser):
        pipeline = RetrainingPipeline(
            small_trained_parser,
            RetrainingConfig(epochs=2, feedback=FeedbackConfig(seed=3)),
        )
        train_examples = tiny_split.train.examples[:20]
        feedback = pipeline.collect_feedback(train_examples)
        assert feedback.annotated_count > 0

        dev = tiny_split.test.evaluation_examples()[:12]
        comparison = pipeline.compare(
            annotated_training=feedback.training_examples,
            unannotated_training=[],
            dev_examples=dev,
        )
        # Both parsers must produce valid reports; the annotated one should not
        # be dramatically worse (it usually is better, but the corpus here is tiny).
        assert comparison.with_annotations.total == len(dev)
        assert comparison.without_annotations.total == len(dev)
        assert comparison.with_annotations.correctness >= comparison.without_annotations.correctness - 0.25


class TestExplanationsForParsedCandidates:
    def test_every_topk_candidate_is_explainable(self, tiny_split, small_trained_parser):
        from repro.interface import NLInterface

        interface = NLInterface(parser=small_trained_parser, k=7)
        examples = tiny_split.test.evaluation_examples()[:6]
        for example in examples:
            response = interface.ask(example.question, example.table)
            assert response.explained
            for item in response.explained:
                assert item.utterance
                assert item.explanation.highlighted.provenance.chain_is_ordered()
