"""Smoke tests: the fast example scripts run end to end.

The two heavier examples (interactive deployment and feedback training)
build corpora and train parsers; they are exercised through the interface
integration tests instead, so that the unit-test suite stays fast.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "sql_equivalence.py",
    "olympics_provenance.py",
    "unified_api.py",
    "cross_table.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_fast_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_quickstart_output_mentions_answer(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "2004" in output
    assert "maximum of values in column Year" in output
    assert "sqlite agrees" in output


def test_cross_table_composes_and_passes_the_oracle(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "cross_table.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "composed      : 120, 80, 95" in output
    assert "join-records" in output
    assert "sqlite agrees : True" in output


def test_sql_equivalence_verifies_all_operators(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "sql_equivalence.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert output.count("equivalent: True") == 13
    assert "equivalent: False" not in output


def test_heavy_examples_exist():
    for script in ["interactive_deployment.py", "feedback_training.py"]:
        assert (EXAMPLES_DIR / script).exists()
