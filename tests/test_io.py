"""Unit tests for table IO (CSV/TSV/JSON)."""

import io

import pytest

from repro.tables import (
    Table,
    TableError,
    load_tables,
    save_tables,
    table_from_csv,
    table_from_json,
    table_from_tsv,
    table_to_csv,
    table_to_json,
)


class TestCSV:
    def test_roundtrip_through_string_buffer(self, medals_table):
        buffer = io.StringIO()
        table_to_csv(medals_table, buffer)
        buffer.seek(0)
        loaded = table_from_csv(buffer)
        assert loaded.columns == medals_table.columns
        assert loaded.num_rows == medals_table.num_rows
        assert loaded.cell(3, "Nation").display() == "Fiji"

    def test_roundtrip_through_file(self, tmp_path, olympics_table):
        path = tmp_path / "olympics.csv"
        table_to_csv(olympics_table, path)
        loaded = table_from_csv(path)
        assert loaded.name == "olympics"
        assert loaded.cell(0, "City").display() == "Athens"

    def test_empty_csv_rejected(self):
        with pytest.raises(TableError):
            table_from_csv(io.StringIO(""))

    def test_tsv(self, tmp_path, olympics_table):
        path = tmp_path / "olympics.tsv"
        table_to_csv(olympics_table, path, delimiter="\t")
        loaded = table_from_tsv(path)
        assert loaded.num_rows == 6


class TestJSON:
    def test_roundtrip(self, medals_table):
        text = table_to_json(medals_table)
        loaded = table_from_json(text)
        assert loaded.name == medals_table.name
        assert loaded.columns == medals_table.columns
        assert loaded.cell(6, "Total").display() == "20"

    def test_missing_keys_rejected(self):
        with pytest.raises(TableError):
            table_from_json('{"columns": ["A"]}')


class TestDirectories:
    def test_save_and_load_many(self, tmp_path, olympics_table, medals_table):
        paths = save_tables([olympics_table, medals_table], tmp_path / "tables")
        assert len(paths) == 2
        loaded = load_tables(tmp_path / "tables")
        assert [table.name for table in loaded] == ["olympics", "medals"]
