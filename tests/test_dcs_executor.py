"""Unit tests for the lambda DCS executor — one class per operator family."""

import pytest

from repro.dcs import ExecutionError, builder as q, execute
from repro.dcs.executor import answers_match
from repro.tables.values import DateValue, NumberValue, StringValue


def answers(query, table):
    return execute(query, table).answer_strings()


class TestLeaves:
    def test_value_literal(self, olympics_table):
        assert answers(q.value("Greece"), olympics_table) == ("Greece",)

    def test_all_records(self, olympics_table):
        result = execute(q.all_records(), olympics_table)
        assert result.record_indices == frozenset(range(6))


class TestColumnRecords:
    def test_basic_join(self, olympics_table):
        result = execute(q.column_records("Country", "Greece"), olympics_table)
        assert result.record_indices == frozenset({0, 2})

    def test_join_tracks_matching_cells(self, olympics_table):
        result = execute(q.column_records("Country", "Greece"), olympics_table)
        assert {cell.coordinate for cell in result.cells} == {(0, "Country"), (2, "Country")}

    def test_join_with_number_value(self, olympics_table):
        result = execute(q.column_records("Year", 2004), olympics_table)
        assert result.record_indices == frozenset({2})

    def test_join_with_union_of_values(self, olympics_table):
        query = q.column_records("Country", q.union("Greece", "China"))
        result = execute(query, olympics_table)
        assert result.record_indices == frozenset({0, 2, 3})

    def test_join_no_match_is_empty(self, olympics_table):
        result = execute(q.column_records("Country", "Atlantis"), olympics_table)
        assert result.is_empty

    def test_unknown_column_raises(self, olympics_table):
        with pytest.raises(ExecutionError):
            execute(q.column_records("Continent", "Europe"), olympics_table)


class TestComparisonRecords:
    def test_greater_than(self, roster_table):
        result = execute(q.comparison_records("Games", ">", 4), roster_table)
        assert result.record_indices == frozenset({2, 4, 5})

    def test_at_least(self, roster_table):
        result = execute(q.comparison_records("Games", ">=", 5), roster_table)
        assert result.record_indices == frozenset({2, 4, 5})

    def test_less_than(self, roster_table):
        result = execute(q.comparison_records("Games", "<", 2), roster_table)
        assert result.record_indices == frozenset({7})

    def test_not_equal(self, roster_table):
        result = execute(q.comparison_records("Position", "!=", "DF"), roster_table)
        assert result.record_indices == frozenset({0, 4, 5, 6, 7})

    def test_comparison_needs_single_reference(self, roster_table):
        query = q.comparison_records("Games", ">", q.union(1, 2))
        with pytest.raises(ExecutionError):
            execute(query, roster_table)


class TestNeighbors:
    def test_prev_records(self, olympics_table):
        query = q.prev_records(q.column_records("City", "London"))
        assert execute(query, olympics_table).record_indices == frozenset({3})

    def test_prev_of_first_row_is_empty(self, olympics_table):
        query = q.prev_records(q.column_records("Year", 1896))
        assert execute(query, olympics_table).is_empty

    def test_next_records(self, olympics_table):
        query = q.next_records(q.column_records("City", "Beijing"))
        assert execute(query, olympics_table).record_indices == frozenset({4})

    def test_next_of_last_row_is_empty(self, olympics_table):
        query = q.next_records(q.column_records("Year", 2016))
        assert execute(query, olympics_table).is_empty

    def test_next_lookup_composition(self, olympics_table):
        query = q.column_values("City", q.next_records(q.column_records("City", "Athens")))
        assert answers(query, olympics_table) == ("Paris", "Beijing")


class TestIntersectionAndUnion:
    def test_intersection(self, olympics_table):
        query = q.intersection(
            q.column_records("Country", "Greece"), q.column_records("Year", 2004)
        )
        assert execute(query, olympics_table).record_indices == frozenset({2})

    def test_intersection_empty(self, olympics_table):
        query = q.intersection(
            q.column_records("Country", "Greece"), q.column_records("City", "London")
        )
        assert execute(query, olympics_table).is_empty

    def test_union_of_records(self, olympics_table):
        from repro.dcs import Union

        query = Union(q.column_records("Country", "Greece"), q.column_records("City", "London"))
        assert execute(query, olympics_table).record_indices == frozenset({0, 2, 4})

    def test_union_of_values_dedupes(self, olympics_table):
        query = q.union("Athens", "Athens")
        assert answers(query, olympics_table) == ("Athens",)


class TestSuperlatives:
    def test_argmax_records(self, medals_table):
        result = execute(q.argmax_records("Total"), medals_table)
        assert result.record_indices == frozenset({0})

    def test_argmin_records(self, medals_table):
        result = execute(q.argmin_records("Total"), medals_table)
        assert result.record_indices == frozenset({7})

    def test_argmax_over_subset(self, medals_table):
        from repro.dcs import SuperlativeKind, SuperlativeRecords

        base = q.comparison_records("Total", "<", 100)
        query = SuperlativeRecords(SuperlativeKind.ARGMAX, "Gold", base)
        result = execute(query, medals_table)
        assert result.record_indices == frozenset({4})  # Samoa (Gold 22)

    def test_argmax_ties_return_all(self):
        from repro.tables import Table

        table = Table(columns=["A", "B"], rows=[["x", 3], ["y", 3], ["z", 1]])
        result = execute(q.argmax_records("B"), table)
        assert result.record_indices == frozenset({0, 1})

    def test_argmax_over_empty_set_is_empty(self, medals_table):
        from repro.dcs import SuperlativeKind, SuperlativeRecords

        base = q.column_records("Nation", "Atlantis")
        query = SuperlativeRecords(SuperlativeKind.ARGMAX, "Gold", base)
        assert execute(query, medals_table).is_empty

    def test_first_and_last_record(self, olympics_table):
        assert execute(q.first_record(), olympics_table).record_indices == frozenset({0})
        assert execute(q.last_record(), olympics_table).record_indices == frozenset({5})

    def test_last_record_of_subset(self, olympics_table):
        query = q.last_record(q.column_records("Country", "Greece"))
        assert execute(query, olympics_table).record_indices == frozenset({2})


class TestColumnValues:
    def test_projection(self, olympics_table):
        query = q.column_values("Year", q.column_records("Country", "Greece"))
        assert answers(query, olympics_table) == ("1896", "2004")

    def test_projection_over_all_records(self, olympics_table):
        query = q.column_values("City", q.all_records())
        assert len(answers(query, olympics_table)) == 6

    def test_value_in_last_record(self, olympics_table):
        assert answers(q.value_in_last_record("City"), olympics_table) == ("Rio de Janeiro",)

    def test_value_in_first_record_of_subset(self, olympics_table):
        query = q.value_in_first_record("City", q.column_records("Country", "Greece"))
        assert answers(query, olympics_table) == ("Athens",)


class TestValueSuperlatives:
    def test_most_common(self, shipwrecks_table):
        assert answers(q.most_common("Lake"), shipwrecks_table) == ("Lake Huron",)

    def test_least_common(self, shipwrecks_table):
        result = set(answers(q.least_common("Lake"), shipwrecks_table))
        assert result == {"Lake Michigan", "Lake Erie"}

    def test_most_common_restricted_to_candidates(self, shipwrecks_table):
        query = q.most_common("Lake", q.union("Lake Erie", "Lake Superior"))
        assert answers(query, shipwrecks_table) == ("Lake Superior",)

    def test_compare_values_argmax(self, olympics_table):
        query = q.compare_values("Year", "City", q.union("London", "Beijing"))
        assert answers(query, olympics_table) == ("London",)

    def test_compare_values_argmin(self, olympics_table):
        query = q.compare_values(
            "Year", "City", q.union("London", "Beijing"), kind="argmin"
        )
        assert answers(query, olympics_table) == ("Beijing",)

    def test_compare_values_no_candidates(self, olympics_table):
        query = q.compare_values("Year", "City", q.union("Nowhere", "Elsewhere"))
        assert execute(query, olympics_table).is_empty


class TestAggregates:
    def test_count_records(self, olympics_table):
        assert answers(q.count(q.column_records("City", "Athens")), olympics_table) == ("2",)

    def test_count_values(self, olympics_table):
        query = q.count(q.column_values("City", q.column_records("Country", "Greece")))
        assert answers(query, olympics_table) == ("2",)

    def test_max(self, olympics_table):
        query = q.max_(q.column_values("Year", q.column_records("Country", "Greece")))
        assert answers(query, olympics_table) == ("2004",)

    def test_min(self, medals_table):
        query = q.min_(q.column_values("Gold", q.all_records()))
        assert answers(query, medals_table) == ("3",)

    def test_sum(self, medals_table):
        query = q.sum_(q.column_values("Gold", q.all_records()))
        assert answers(query, medals_table) == ("298",)

    def test_avg(self, roster_table):
        query = q.avg(q.column_values("Games", q.all_records()))
        assert execute(query, roster_table).scalar().as_number() == pytest.approx(3.75)

    def test_max_over_strings_raises_nothing_but_sum_does(self, olympics_table):
        query = q.sum_(q.column_values("City", q.all_records()))
        with pytest.raises(ExecutionError):
            execute(query, olympics_table)

    def test_aggregate_over_empty_raises(self, olympics_table):
        query = q.max_(q.column_values("Year", q.column_records("Country", "Atlantis")))
        with pytest.raises(ExecutionError):
            execute(query, olympics_table)

    def test_count_over_empty_is_zero(self, olympics_table):
        query = q.count(q.column_records("Country", "Atlantis"))
        assert answers(query, olympics_table) == ("0",)


class TestDifference:
    def test_difference_of_values(self, medals_table):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        assert answers(query, medals_table) == ("110",)

    def test_difference_is_symmetric_in_magnitude(self, medals_table):
        left = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        right = q.value_difference("Total", "Nation", "Tonga", "Fiji")
        assert answers(left, medals_table) == answers(right, medals_table)

    def test_difference_of_occurrences(self, shipwrecks_table):
        query = q.count_difference("Lake", "Lake Huron", "Lake Erie")
        assert answers(query, shipwrecks_table) == ("3",)

    def test_difference_requires_single_values(self, olympics_table):
        query = q.difference(
            q.column_values("Year", q.column_records("Country", "Greece")),
            q.column_values("Year", q.column_records("Country", "China")),
        )
        with pytest.raises(ExecutionError):
            execute(query, olympics_table)

    def test_difference_requires_numeric_values(self, olympics_table):
        query = q.difference(
            q.column_values("City", q.column_records("Year", 2004)),
            q.column_values("City", q.column_records("Year", 2008)),
        )
        with pytest.raises(ExecutionError):
            execute(query, olympics_table)


class TestAnswersMatch:
    def test_order_insensitive(self):
        assert answers_match(
            [StringValue("a"), StringValue("b")], [StringValue("B"), StringValue("a")]
        )

    def test_cross_type(self):
        assert answers_match([NumberValue(2004)], [StringValue("2004")])

    def test_distinct_set_semantics(self):
        assert answers_match(
            [StringValue("a"), StringValue("a")], [StringValue("a")]
        )

    def test_mismatch(self):
        assert not answers_match([StringValue("a")], [StringValue("b")])

    def test_length_mismatch_of_distinct_values(self):
        assert not answers_match(
            [StringValue("a"), StringValue("b")], [StringValue("a")]
        )

    def test_cross_type_multiset(self):
        """Cross-type pairs must survive the Counter fast path: the key
        multisets differ, so the pairwise fallback decides."""
        left = [NumberValue(2004), StringValue("Athens"), DateValue(1896)]
        right = [StringValue("2004"), StringValue("athens"), NumberValue(1896)]
        assert answers_match(left, right)
        assert answers_match(right, left)

    def test_cross_type_mismatch_still_fails(self):
        assert not answers_match(
            [NumberValue(2004), StringValue("x")],
            [StringValue("2004"), StringValue("y")],
        )

    def test_identical_multisets_take_fast_path(self):
        values = [StringValue("A"), StringValue(" a"), NumberValue(1.0), DateValue(1896)]
        shuffled = [NumberValue(1.0), StringValue("a "), DateValue(1896), StringValue("a")]
        assert answers_match(values, shuffled)

    def test_duplicate_counts_respected(self):
        # Equal lengths with different duplicate structure must not match.
        assert not answers_match(
            [StringValue("a"), StringValue("a"), StringValue("b")],
            [StringValue("a"), StringValue("b"), StringValue("b")],
        )

    def test_large_answers_match_quickly(self):
        """The quadratic fallback made 1000-value answers painful; the
        Counter fast path must handle them instantly."""
        import time

        left = [NumberValue(i) for i in range(1000)]
        right = [NumberValue(i) for i in reversed(range(1000))]
        started = time.perf_counter()
        assert answers_match(left, right)
        assert time.perf_counter() - started < 0.1
