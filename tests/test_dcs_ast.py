"""Unit tests for the lambda DCS AST: typing rules, traversal, metadata."""

import pytest

from repro.dcs import (
    Aggregate,
    AggregateFunction,
    AllRecords,
    ColumnRecords,
    ColumnValues,
    Difference,
    Intersection,
    QueryTypeError,
    ResultKind,
    SuperlativeKind,
    SuperlativeRecords,
    Union,
    ValueLiteral,
    builder as q,
)


class TestResultKinds:
    def test_value_literal_is_values(self):
        assert q.value("Greece").result_kind == ResultKind.VALUES

    def test_all_records_is_records(self):
        assert AllRecords().result_kind == ResultKind.RECORDS

    def test_column_values_is_values(self):
        query = q.column_values("Year", q.all_records())
        assert query.result_kind == ResultKind.VALUES

    def test_aggregate_is_scalar(self):
        query = q.count(q.all_records())
        assert query.result_kind == ResultKind.SCALAR

    def test_union_kind_follows_operands(self):
        values_union = q.union("a", "b")
        assert values_union.result_kind == ResultKind.VALUES
        records_union = Union(q.column_records("A", "x"), q.column_records("B", "y"))
        assert records_union.result_kind == ResultKind.RECORDS


class TestTypingRules:
    def test_column_records_requires_values_operand(self):
        with pytest.raises(QueryTypeError):
            ColumnRecords("City", AllRecords())

    def test_column_values_requires_records_operand(self):
        with pytest.raises(QueryTypeError):
            ColumnValues("City", ValueLiteral(q.value("x").value))

    def test_intersection_requires_records(self):
        with pytest.raises(QueryTypeError):
            Intersection(q.value("a"), q.value("b"))

    def test_union_requires_same_kind(self):
        with pytest.raises(QueryTypeError):
            Union(q.value("a"), q.all_records())

    def test_numeric_aggregate_rejects_records(self):
        with pytest.raises(QueryTypeError):
            Aggregate(AggregateFunction.MAX, q.all_records())

    def test_count_accepts_records(self):
        assert q.count(q.all_records()).result_kind == ResultKind.SCALAR

    def test_difference_rejects_records_operand(self):
        with pytest.raises(QueryTypeError):
            Difference(q.all_records(), q.value(1))

    def test_superlative_requires_records(self):
        with pytest.raises(QueryTypeError):
            SuperlativeRecords(SuperlativeKind.ARGMAX, "Year", q.value("x"))


class TestTraversal:
    def _example(self):
        return q.max_(q.column_values("Year", q.column_records("Country", "Greece")))

    def test_walk_is_preorder(self):
        names = [type(node).__name__ for node in self._example().walk()]
        assert names == ["Aggregate", "ColumnValues", "ColumnRecords", "ValueLiteral"]

    def test_subqueries_excludes_self(self):
        query = self._example()
        subqueries = query.subqueries()
        assert len(subqueries) == 3
        assert query not in subqueries

    def test_size_and_depth(self):
        query = self._example()
        assert query.size() == 4
        assert query.depth() == 4

    def test_columns_in_order_without_duplicates(self):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        assert query.columns() == ("Total", "Nation")

    def test_leaf_has_no_children(self):
        assert q.value("Greece").children() == ()


class TestEqualityAndHashing:
    def test_structural_equality(self):
        left = q.column_records("Country", "Greece")
        right = q.column_records("Country", "Greece")
        assert left == right
        assert hash(left) == hash(right)

    def test_inequality_on_column(self):
        assert q.column_records("Country", "Greece") != q.column_records("City", "Greece")

    def test_queries_usable_in_sets(self):
        queries = {q.count(q.all_records()), q.count(q.all_records())}
        assert len(queries) == 1
