"""Unit tests for dataset assembly and conversions."""

import pytest

from repro.dataset import DatasetConfig, build_dataset, dataset_statistics
from repro.dcs import answers_match, execute


class TestBuildDataset:
    def test_examples_and_tables_present(self, tiny_dataset):
        assert len(tiny_dataset) > 0
        assert len(tiny_dataset.tables) == 12

    def test_gold_answers_are_consistent(self, tiny_dataset):
        for example in list(tiny_dataset)[:30]:
            answer = execute(example.gold_query, example.table).answer_values()
            assert answers_match(answer, example.gold_answer)

    def test_no_empty_answers(self, tiny_dataset):
        assert all(example.gold_answer for example in tiny_dataset)

    def test_example_ids_unique(self, tiny_dataset):
        ids = [example.example_id for example in tiny_dataset]
        assert len(ids) == len(set(ids))

    def test_tables_meet_wikitables_shape(self, tiny_dataset):
        for table in tiny_dataset.tables:
            assert table.num_rows >= 8
            assert table.num_columns >= 5

    def test_statistics(self, tiny_dataset):
        stats = dataset_statistics(tiny_dataset)
        assert stats["examples"] == len(tiny_dataset)
        assert stats["tables"] == 12
        assert stats["templates"] >= 10
        assert stats["min_rows"] >= 8

    def test_statistics_of_empty_dataset(self):
        from repro.dataset import Dataset

        assert dataset_statistics(Dataset()) == {"examples": 0, "tables": 0}

    def test_build_is_deterministic(self):
        config = DatasetConfig(num_tables=4, questions_per_table=3, seed=99)
        first = build_dataset(config)
        second = build_dataset(config)
        assert [example.question for example in first] == [
            example.question for example in second
        ]

    def test_grouping_helpers(self, tiny_dataset):
        by_template = tiny_dataset.by_template()
        assert sum(len(group) for group in by_template.values()) == len(tiny_dataset)
        by_table = tiny_dataset.by_table()
        assert len(by_table) <= 12


class TestConversions:
    def test_training_example_weak(self, tiny_dataset):
        example = tiny_dataset.examples[0]
        training = example.to_training_example(annotated=False)
        assert training.annotated_queries == ()
        assert training.answer == example.gold_answer

    def test_training_example_annotated(self, tiny_dataset):
        example = tiny_dataset.examples[0]
        training = example.to_training_example(annotated=True)
        assert training.annotated_queries == (example.gold_query,)
        assert training.is_annotated

    def test_evaluation_example(self, tiny_dataset):
        example = tiny_dataset.examples[0]
        evaluation = example.to_evaluation_example()
        assert evaluation.question == example.question
        assert evaluation.gold_query == example.gold_query

    def test_dataset_level_conversions(self, tiny_dataset):
        assert len(tiny_dataset.training_examples()) == len(tiny_dataset)
        assert len(tiny_dataset.evaluation_examples()) == len(tiny_dataset)

    def test_subset(self, tiny_dataset):
        subset = tiny_dataset.subset([0, 1, 2])
        assert len(subset) == 3
        assert len(subset.tables) <= 3
