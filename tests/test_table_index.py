"""Tests for the content-addressed column index (``repro.tables.index``).

Two contracts are locked in here:

* **Exactness** — the indexed executor selects exactly the rows the
  row-scan executor selects, across every cross-type equality bridge of
  ``values_equal`` (string/number re-parsing, bare-year dates), ordered
  comparisons with the sort-key fallback, and degenerate columns (NaN,
  empty strings, heavy duplication).  The broad property test lives in
  ``tests/test_property_based.py``; the cases here are the targeted
  corners.
* **Content addressing** — indexes are cached per fingerprint: clones
  share one index, a changed cell builds a fresh one, and the registry
  is bounded.
"""

from __future__ import annotations

import math

import pytest

from repro.dcs import Executor, builder as q
from repro.dcs.errors import DCSError
from repro.tables import Table, clear_index_cache, index_cache_stats, table_index
from repro.tables.index import ColumnIndex, TableIndex
from repro.tables.values import DateValue, NumberValue, StringValue


def mixed_table() -> Table:
    """Every value shape the equality bridges care about, in one table."""
    return Table(
        columns=["Year", "Label", "Score"],
        rows=[
            [1896, "alpha", 4],
            ["1900", "Alpha", 5.0],           # numeric string / case-folded dup
            [2004, "be ta", 4],
            ["June 8, 2013", "$1,234", 9],    # textual date / numeric string
            ["", "beta", float("nan")],       # empty string / NaN number
            [DateValue(1900), "alpha", 4],    # bare-year date == number 1900
        ],
        name="mixed",
    )


def assert_same_result(table: Table, query) -> None:
    def run(use_index):
        try:
            return Executor(table, use_index=use_index).execute(query)
        except DCSError as error:
            return ("error", type(error), str(error))

    assert run(True) == run(False)


class TestIndexedOperatorExactness:
    @pytest.mark.parametrize(
        "target",
        ["alpha", "Alpha", "be ta", "beta", "", "$1,234", "1,234", "1900",
         1896, 1900, 4, 5, 9, float("nan"), "June 8, 2013", "2013-06-08",
         DateValue(1900), DateValue(2013, 6, 8), "nope"],
    )
    def test_column_records_equality(self, target):
        table = mixed_table()
        for column in table.columns:
            assert_same_result(table, q.column_records(column, target))

    @pytest.mark.parametrize("op", [">", ">=", "<", "<=", "!="])
    @pytest.mark.parametrize(
        "reference", [1900, 4, 4.5, "beta", DateValue(1900), DateValue(2013, 6, 8)]
    )
    def test_comparison_records(self, op, reference):
        table = mixed_table()
        for column in table.columns:
            assert_same_result(table, q.comparison_records(column, op, reference))

    @pytest.mark.parametrize("column", ["Year", "Label", "Score"])
    def test_superlatives_and_most_common(self, column):
        table = mixed_table()
        assert_same_result(table, q.argmax_records(column))
        assert_same_result(table, q.argmin_records(column))
        assert_same_result(table, q.most_common(column))

    def test_superlative_over_subset(self):
        table = mixed_table()
        assert_same_result(
            table,
            q.argmax_records("Score", q.comparison_records("Score", "<", 9)),
        )
        assert_same_result(
            table,
            q.argmin_records("Year", q.column_records("Label", "alpha")),
        )

    def test_compare_values(self):
        table = mixed_table()
        assert_same_result(
            table,
            q.compare_values(
                key_column="Year",
                value_column="Label",
                candidates=q.column_values("Label", q.all_records()),
                kind="argmax",
            ),
        )

    def test_all_nan_column_superlative(self):
        table = Table(
            columns=["A", "B"],
            rows=[[float("nan"), "x"], [float("nan"), "y"]],
        )
        assert_same_result(table, q.argmax_records("A"))
        assert_same_result(table, q.comparison_records("A", ">", 0))
        assert_same_result(table, q.column_records("A", float("nan")))

    def test_duplicate_only_column(self):
        table = Table(columns=["A"], rows=[["same"]] * 5)
        assert_same_result(table, q.column_records("A", "same"))
        assert_same_result(table, q.argmin_records("A"))
        assert_same_result(table, q.most_common("A"))


class TestColumnIndexLookups:
    def test_equality_candidates_are_supersets_of_matches(self):
        table = mixed_table()
        from repro.tables.values import values_equal

        for column in table.columns:
            cells = table.column_cells(column)
            index = ColumnIndex(cells)
            targets = [cell.value for cell in cells] + [
                NumberValue(1900), StringValue("alpha"), DateValue(1900)
            ]
            for target in targets:
                candidates = set(index.equality_candidates(target))
                true_rows = {
                    cell.row_index
                    for cell in cells
                    if values_equal(cell.value, target)
                }
                assert true_rows <= candidates, (
                    f"index missed rows {true_rows - candidates} for "
                    f"{target!r} in column {column!r}"
                )

    def test_ordered_rows_match_scan_exactly(self):
        from repro.dcs.executor import _compare
        from repro.dcs.ast import ComparisonOperator

        table = mixed_table()
        references = [NumberValue(4), NumberValue(1900), StringValue("beta"),
                      DateValue(1900), DateValue(2013, 6, 8)]
        for column in table.columns:
            cells = table.column_cells(column)
            index = ColumnIndex(cells)
            for reference in references:
                for op in (ComparisonOperator.GT, ComparisonOperator.GE,
                           ComparisonOperator.LT, ComparisonOperator.LE):
                    expected = [
                        cell.row_index
                        for cell in cells
                        if _compare(cell.value, op, reference)
                    ]
                    assert index.ordered_rows(op.value, reference) == expected

    def test_nan_reference_selects_nothing_ordered(self):
        index = ColumnIndex(Table(columns=["A"], rows=[[1], [2]]).column_cells("A"))
        assert index.ordered_rows(">", NumberValue(float("nan"))) == []
        assert list(index.equality_candidates(NumberValue(float("nan")))) == []

    def test_infinite_reference(self):
        table = Table(columns=["A"], rows=[[1], [NumberValue(math.inf)], [3]])
        assert_same_result(table, q.comparison_records("A", "<", NumberValue(math.inf)))
        assert_same_result(table, q.column_records("A", NumberValue(math.inf)))


class TestIndexRegistry:
    def test_equal_content_shares_one_index(self):
        clear_index_cache()
        first = table_index(mixed_table())
        second = table_index(mixed_table())
        assert first is second
        stats = index_cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_changed_cell_builds_a_fresh_index(self):
        """The regression the fingerprint contract exists for: a cell edit
        must never be served by the old content's index."""
        clear_index_cache()
        base = Table(columns=["A", "B"], rows=[["x", 1], ["y", 2]])
        edited = Table(columns=["A", "B"], rows=[["x", 1], ["y", 99]])
        index_base = table_index(base)
        index_edited = table_index(edited)
        assert base.fingerprint != edited.fingerprint
        assert index_base is not index_edited
        # And the fresh index answers from the *new* content:
        result = Executor(edited).execute(q.column_records("B", 99))
        assert result.record_indices == frozenset({1})
        assert Executor(base).execute(q.column_records("B", 99)).record_indices == frozenset()

    def test_index_holds_no_table_reference(self):
        index = TableIndex(mixed_table())
        assert set(index.__slots__) == {"fingerprint", "columns"}
        for column_index in index.columns.values():
            assert not hasattr(column_index, "table")
            assert not hasattr(column_index, "cells")

    def test_executor_can_opt_out(self):
        table = mixed_table()
        assert Executor(table, use_index=False)._index is None
        assert Executor(table)._index is not None
