"""Concurrency tests for :class:`repro.perf.BatchParser` and the interface
batch entry points.

The contract under test: batching is a pure throughput optimisation —
for any pool size the results are order-stable (``results[i]`` answers
``items[i]``) and bit-identical (same candidate s-expressions, scores,
probabilities and answers) to a plain sequential loop.
"""

from __future__ import annotations

import pytest

from repro.interface import NLInterface
from repro.parser import SemanticParser
from repro.perf import BatchItem, BatchParser, run_parse_bench
from repro.tables import Table


def build_tables():
    olympics = Table(
        columns=["Year", "Country", "City"],
        rows=[
            [1896, "Greece", "Athens"],
            [1900, "France", "Paris"],
            [2004, "Greece", "Athens"],
            [2008, "China", "Beijing"],
        ],
        name="olympics",
    )
    medals = Table(
        columns=["Nation", "Gold", "Total"],
        rows=[
            ["Fiji", 33, 130],
            ["Samoa", 22, 73],
            ["Tonga", 4, 20],
        ],
        name="medals",
    )
    return olympics, medals


def build_items():
    olympics, medals = build_tables()
    return [
        ("which country hosted in 2004", olympics),
        ("how many rows have country greece", olympics),
        ("what is the highest year", olympics),
        ("which nation has the most gold", medals),
        ("what is the total of fiji", medals),
        ("how many nations have total above 50", medals),
    ]


#: Deterministic non-zero weights so ranking is exercised, not just generation.
WEIGHTS = {
    "op:Aggregate": 0.7,
    "op:ColumnValues": -0.3,
    "op:SuperlativeRecords": 0.5,
    "answer:singleton": 0.2,
}


def make_parser() -> SemanticParser:
    parser = SemanticParser()
    parser.model.weights = dict(WEIGHTS)
    return parser


def signature(parse):
    """Everything observable about one parse, for bit-identity comparison."""
    return [
        (c.sexpr, c.score, c.probability, c.answer) for c in parse.candidates
    ]


class TestBatchParserConcurrency:
    def test_results_match_sequential_loop_for_all_pool_sizes(self):
        items = build_items()
        reference_parser = make_parser()
        reference = [
            signature(reference_parser.parse(question, table))
            for question, table in items
        ]
        for workers in (1, 2, 8):
            parser = make_parser()
            report = BatchParser(parser, max_workers=workers).parse_all(items)
            assert report.workers == workers
            assert len(report) == len(items)
            for i, result in enumerate(report):
                assert result.index == i
                assert result.question == items[i][0]
                assert result.table is items[i][1]
                assert result.seconds >= 0.0
            assert [signature(r.parse) for r in report] == reference, (
                f"pool size {workers} diverged from the sequential loop"
            )

    def test_repeated_questions_share_caches_across_workers(self):
        items = build_items() * 3
        parser = make_parser()
        report = BatchParser(parser, max_workers=8).parse_all(items)
        stats = parser.cache_stats()
        assert stats["candidates"]["hits"] > 0
        assert stats["execution"]["hits"] > 0
        # Index-alignment under heavy duplication.
        assert [r.question for r in report] == [question for question, _ in items]

    def test_batch_items_carry_their_own_k(self):
        olympics, _ = build_tables()
        item = BatchItem(question="what is the highest year", table=olympics, k=1)
        report = BatchParser(make_parser(), max_workers=2).parse_all([item])
        assert len(report.results[0].parse.candidates) == 1

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            BatchParser(max_workers=0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            BatchParser(backend="fiber")

    def test_report_timing_fields(self):
        report = BatchParser(make_parser(), max_workers=2).parse_all(build_items())
        assert report.total_seconds > 0
        assert len(report.per_question_seconds) == len(build_items())
        assert report.throughput > 0
        assert report.mean_seconds == pytest.approx(
            report.total_seconds / len(report)
        )


class TestProcessBackend:
    """The process pool is a drop-in for the thread pool: order-stable,
    bit-identical results, deduplicated work units."""

    def test_results_match_sequential_loop(self):
        items = build_items()
        reference_parser = make_parser()
        reference = [
            signature(reference_parser.parse(question, table))
            for question, table in items
        ]
        parser = make_parser()
        report = BatchParser(parser, max_workers=4, backend="process").parse_all(items)
        assert report.backend == "process"
        assert len(report) == len(items)
        for i, result in enumerate(report):
            assert result.index == i
            assert result.question == items[i][0]
            assert result.table is items[i][1]
            assert result.seconds >= 0.0
        assert [signature(r.parse) for r in report] == reference, (
            "process backend diverged from the sequential loop"
        )

    def test_duplicate_items_share_one_work_unit(self):
        items = build_items()[:2] * 3
        report = BatchParser(make_parser(), max_workers=2, backend="process").parse_all(items)
        assert [r.question for r in report] == [question for question, _ in items]
        # Duplicates fan out from one parsed unit: identical signatures.
        for offset in (2, 4):
            for i in range(2):
                assert signature(report.results[i].parse) == signature(
                    report.results[i + offset].parse
                )

    def test_batch_items_carry_their_own_k(self):
        olympics, _ = build_tables()
        items = [
            BatchItem(question="what is the highest year", table=olympics, k=1),
            BatchItem(question="what is the highest year", table=olympics, k=3),
        ]
        report = BatchParser(make_parser(), max_workers=2, backend="process").parse_all(items)
        assert len(report.results[0].parse.candidates) == 1
        assert len(report.results[1].parse.candidates) == 3

    def test_concurrent_batches_do_not_cross_fork_parsers(self):
        """Regression: ``_FORK_PARSER`` is module state shared by every
        process-backend batch.  Two batches forking concurrently from
        two threads used to race the set/clear window, so one batch's
        workers could inherit the *other* batch's parser (or ``None``).
        Both batches must complete bit-identical to their own parser's
        sequential loop."""
        import threading

        base_items = build_items()
        reference_parser = make_parser()
        reference = [
            signature(reference_parser.parse(question, table))
            for question, table in base_items
        ]
        # The second batch runs a *differently weighted* parser: if its
        # fork inherits the first batch's parser, signatures diverge.
        shifted_weights = dict(WEIGHTS)
        shifted_weights["op:Aggregate"] = 5.0
        shifted_parser = make_parser()
        shifted_parser.model.weights = dict(shifted_weights)
        shifted_reference_parser = make_parser()
        shifted_reference_parser.model.weights = dict(shifted_weights)
        shifted_reference = [
            signature(shifted_reference_parser.parse(question, table))
            for question, table in base_items
        ]

        outcomes: dict = {}
        barrier = threading.Barrier(2)

        def run(tag, parser):
            barrier.wait()
            outcomes[tag] = BatchParser(
                parser, max_workers=2, backend="process"
            ).parse_all(list(base_items))

        threads = [
            threading.Thread(target=run, args=("base", make_parser())),
            threading.Thread(target=run, args=("shifted", shifted_parser)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert [signature(r.parse) for r in outcomes["base"]] == reference
        assert [signature(r.parse) for r in outcomes["shifted"]] == shifted_reference


class TestInterfaceBatch:
    def test_ask_many_matches_sequential_ask(self):
        items = build_items()
        sequential = NLInterface(parser=make_parser(), k=3)
        expected = [sequential.ask(question, table) for question, table in items]
        batched = NLInterface(parser=make_parser(), k=3)
        responses = batched.ask_many(items, workers=4)
        assert len(responses) == len(items)
        for response, reference in zip(responses, expected):
            assert response.question == reference.question
            assert response.utterances() == reference.utterances()
            assert [item.answer for item in response.explained] == [
                item.answer for item in reference.explained
            ]

    def test_ask_many_single_worker(self):
        items = build_items()[:2]
        responses = NLInterface(parser=make_parser(), k=2).ask_many(items, workers=1)
        assert [r.question for r in responses] == [question for question, _ in items]


class TestParseBenchHarness:
    def test_report_has_all_modes_and_consistent_counts(self):
        pairs = build_items()[:3]
        report = run_parse_bench(pairs, repeats=2, workers=2)
        assert set(report.modes) == {
            "sequential", "memoized", "indexed", "batched", "process"
        }
        assert report.questions == 6
        for timing in report.modes.values():
            assert timing.questions == 6
            assert timing.total_seconds > 0
        payload = report.to_payload()
        assert payload["schema"] == "repro-bench-parse-v3"
        assert set(payload["timings"]["speedups"]) == {
            "memoized", "indexed", "batched", "process"
        }
        for timing in report.modes.values():
            assert "indexes" in timing.cache_stats
            assert "disk" in timing.cache_stats

    def test_backend_selection_limits_pooled_modes(self):
        pairs = build_items()[:2]
        report = run_parse_bench(pairs, repeats=1, workers=2, backends=("thread",))
        assert set(report.modes) == {"sequential", "memoized", "indexed", "batched"}

    def test_modes_agree_on_candidate_counts(self):
        pairs = build_items()[:3]
        report = run_parse_bench(pairs, repeats=1, workers=2)
        counts = {timing.candidates for timing in report.modes.values()}
        assert len(counts) == 1, f"modes generated different candidates: {counts}"

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            run_parse_bench(build_items()[:1], repeats=0)


class TestPrefetchWiring:
    """Concurrent prefetch must not change what the learner/pipeline computes."""

    @pytest.fixture(scope="class")
    def stream(self):
        from repro.dataset import DatasetConfig, build_dataset

        dataset = build_dataset(
            DatasetConfig(num_tables=6, questions_per_table=3, seed=77)
        )
        return dataset.evaluation_examples()[:10]

    def test_online_learner_prefetch_is_behaviour_preserving(self, stream):
        from repro.interface import OnlineLearner
        from repro.users import worker_pool

        def run(prefetch_workers):
            parser = SemanticParser()
            learner = OnlineLearner(parser, k=5, prefetch_workers=prefetch_workers)
            report = learner.run(stream, worker_pool(1, seed=9)[0])
            return [
                (i.parser_correct, i.user_picked, i.hybrid_correct, i.updated)
                for i in report.interactions
            ], parser.model.weights

        plain_interactions, plain_weights = run(0)
        prefetched_interactions, prefetched_weights = run(4)
        assert prefetched_interactions == plain_interactions
        assert prefetched_weights == pytest.approx(plain_weights)

    def test_online_prefetch_warms_candidate_cache(self, stream):
        from repro.interface import OnlineLearner
        from repro.users import worker_pool

        parser = SemanticParser()
        learner = OnlineLearner(parser, k=5, prefetch_workers=4)
        learner.run(stream, worker_pool(1, seed=9)[0])
        # Every _step after the prewarm pass generates from cache.
        assert parser.cache_stats()["candidates"]["hits"] >= len(stream)
