"""Unit tests for table-disjoint and repeated splits."""

import pytest

from repro.dataset import repeated_splits, split_by_tables, split_examples


class TestTableSplit:
    def test_partition_is_complete(self, tiny_dataset):
        split = split_by_tables(tiny_dataset, test_fraction=0.25, seed=1)
        assert len(split.train) + len(split.test) == len(tiny_dataset)

    def test_tables_are_disjoint(self, tiny_dataset):
        split = split_by_tables(tiny_dataset, test_fraction=0.25, seed=1)
        train_tables = {example.table.name for example in split.train}
        test_tables = {example.table.name for example in split.test}
        assert not train_tables & test_tables

    def test_test_fraction_roughly_respected(self, tiny_dataset):
        split = split_by_tables(tiny_dataset, test_fraction=0.25, seed=1)
        test_tables = {example.table.name for example in split.test}
        assert len(test_tables) == 3  # 25% of 12

    def test_invalid_fraction_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            split_by_tables(tiny_dataset, test_fraction=1.5)

    def test_different_seeds_give_different_partitions(self, tiny_dataset):
        first = split_by_tables(tiny_dataset, test_fraction=0.25, seed=1)
        second = split_by_tables(tiny_dataset, test_fraction=0.25, seed=2)
        first_tables = {example.table.name for example in first.test}
        second_tables = {example.table.name for example in second.test}
        assert first_tables != second_tables

    def test_sizes_property(self, tiny_dataset):
        split = split_by_tables(tiny_dataset, test_fraction=0.25, seed=1)
        assert split.sizes == (len(split.train), len(split.test))


class TestExampleSplit:
    def test_example_split_counts(self, tiny_dataset):
        first, second = split_examples(tiny_dataset, 10, seed=0)
        assert len(first) == 10
        assert len(second) == len(tiny_dataset) - 10

    def test_no_overlap(self, tiny_dataset):
        first, second = split_examples(tiny_dataset, 10, seed=0)
        first_ids = {example.example_id for example in first}
        second_ids = {example.example_id for example in second}
        assert not first_ids & second_ids

    def test_repeated_splits_differ(self, tiny_dataset):
        splits = repeated_splits(tiny_dataset, 10, repetitions=3, seed=4)
        assert len(splits) == 3
        id_sets = [frozenset(example.example_id for example in first) for first, _ in splits]
        assert len(set(id_sets)) > 1
