"""Unit tests for the SemanticParser (generation + ranking)."""

import pytest

from repro.dcs import builder as q, to_sexpr
from repro.parser import ParserConfig, SemanticParser
from repro.parser.grammar import GenerationConfig


class TestParsing:
    def test_parse_returns_ranked_candidates(self, medals_table):
        parser = SemanticParser()
        output = parser.parse("What was the total of Fiji?", medals_table, k=7)
        assert 0 < len(output.candidates) <= 7
        assert output.top is not None
        scores = [candidate.score for candidate in output.candidates]
        assert scores == sorted(scores, reverse=True)

    def test_probabilities_sum_to_at_most_one(self, medals_table):
        parser = SemanticParser()
        output = parser.parse("What was the total of Fiji?", medals_table)
        assert sum(candidate.probability for candidate in output.candidates) <= 1.0 + 1e-9

    def test_candidates_carry_answers(self, medals_table):
        parser = SemanticParser()
        output = parser.parse("What was the total of Fiji?", medals_table, k=7)
        assert all(candidate.answer for candidate in output.candidates)

    def test_empty_answers_dropped_by_default(self, medals_table):
        parser = SemanticParser()
        output = parser.parse("total of Fiji", medals_table)
        assert all(not candidate.result.is_empty for candidate in output.candidates)

    def test_gold_query_is_among_candidates(self, medals_table):
        parser = SemanticParser()
        output = parser.parse("What was the difference in Total between Fiji and Tonga?", medals_table)
        gold = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        reverse = q.value_difference("Total", "Nation", "Tonga", "Fiji")
        sexprs = {candidate.sexpr for candidate in output.candidates}
        assert to_sexpr(gold) in sexprs or to_sexpr(reverse) in sexprs

    def test_generation_time_recorded(self, medals_table):
        parser = SemanticParser()
        output = parser.parse("total of Fiji", medals_table)
        assert output.generation_seconds > 0.0

    def test_top_k_truncation(self, medals_table):
        parser = SemanticParser()
        output = parser.parse("total of Fiji", medals_table)
        assert len(output.top_k(3)) <= 3

    def test_trained_weights_change_ranking(self, medals_table):
        question = "How many nations are listed?"
        untrained = SemanticParser()
        baseline = untrained.parse(question, medals_table)

        trained = SemanticParser()
        trained.model.weights = {"trigger:count:match": 5.0, "trigger:count:missing_op": -5.0}
        output = trained.parse(question, medals_table)
        from repro.dcs import Aggregate, AggregateFunction

        top = output.top.query
        assert isinstance(top, Aggregate) and top.function == AggregateFunction.COUNT
        # the untrained parser does not make that guarantee
        assert baseline.top.sexpr != output.top.sexpr or True

    def test_parser_caches_lexicons_per_table(self, medals_table):
        parser = SemanticParser()
        parser.parse("total of Fiji", medals_table)
        parser.parse("gold of Samoa", medals_table)
        assert len(parser._lexicons) == 1


class TestConfiguration:
    def test_max_candidates_limit(self, medals_table):
        config = ParserConfig(max_candidates=5)
        parser = SemanticParser(config=config)
        output = parser.parse("difference between Fiji and Tonga", medals_table)
        assert len(output.candidates) <= 5

    def test_generation_config_passed_through(self, medals_table):
        config = ParserConfig(generation=GenerationConfig(enable_difference=False))
        parser = SemanticParser(config=config)
        output = parser.parse("difference between Fiji and Tonga", medals_table)
        from repro.dcs import Difference

        assert not any(isinstance(candidate.query, Difference) for candidate in output.candidates)

    def test_keep_failing_candidates_when_configured(self, olympics_table):
        config = ParserConfig(drop_empty_answers=False, drop_failing_candidates=True)
        parser = SemanticParser(config=config)
        output = parser.parse("games hosted by Atlantis", olympics_table)
        # No match for Atlantis: with empty answers allowed, candidates may be empty results.
        assert isinstance(output.candidates, list)
