"""Unit tests for the log-linear model and AdaGrad/L1 optimiser."""

import math

import pytest

from repro.parser import AdaGradSettings, LogLinearModel, dot, log_softmax, softmax


class TestScoringPrimitives:
    def test_dot_product(self):
        assert dot({"a": 2.0, "b": -1.0}, {"a": 3.0, "b": 1.0, "c": 5.0}) == pytest.approx(5.0)

    def test_softmax_sums_to_one(self):
        probabilities = softmax([1.0, 2.0, 3.0])
        assert sum(probabilities) == pytest.approx(1.0)
        assert probabilities[2] > probabilities[0]

    def test_softmax_is_stable_for_large_scores(self):
        probabilities = softmax([1000.0, 1001.0])
        assert probabilities[1] > probabilities[0]
        assert not any(math.isnan(p) for p in probabilities)

    def test_log_softmax_of_empty_list(self):
        assert log_softmax([]) == []

    def test_uniform_scores_give_uniform_probabilities(self):
        probabilities = softmax([0.0, 0.0, 0.0, 0.0])
        assert all(p == pytest.approx(0.25) for p in probabilities)


class TestModelScoring:
    def test_untrained_model_scores_zero(self):
        model = LogLinearModel()
        assert model.score({"x": 1.0}) == 0.0

    def test_rank_is_stable_for_ties(self):
        model = LogLinearModel()
        order = model.rank([{"a": 1.0}, {"b": 1.0}, {"c": 1.0}])
        assert order == [0, 1, 2]

    def test_rank_prefers_higher_score(self):
        model = LogLinearModel()
        model.weights = {"good": 1.0}
        order = model.rank([{"bad": 1.0}, {"good": 1.0}])
        assert order == [1, 0]


class TestLearning:
    def test_update_moves_probability_towards_correct(self):
        model = LogLinearModel()
        candidates = [{"right": 1.0}, {"wrong": 1.0}]
        before = model.probabilities(candidates)[0]
        for _ in range(25):
            model.update(candidates, correct_indices=[0])
        after = model.probabilities(candidates)[0]
        assert after > before
        assert after > 0.8

    def test_gradient_zero_when_only_candidate_is_correct(self):
        model = LogLinearModel()
        gradient = model.gradient([{"a": 1.0}], correct_indices=[0])
        assert all(abs(value) < 1e-12 for value in gradient.values())

    def test_gradient_empty_without_correct_candidates(self):
        model = LogLinearModel()
        assert model.gradient([{"a": 1.0}], correct_indices=[]) == {}

    def test_l1_prunes_tiny_weights(self):
        model = LogLinearModel(AdaGradSettings(learning_rate=0.1, l1_penalty=10.0))
        model.update([{"a": 1.0}, {"b": 1.0}], correct_indices=[0])
        assert model.weights.get("a", 0.0) == 0.0

    def test_example_log_likelihood_increases_with_training(self):
        model = LogLinearModel()
        candidates = [{"right": 1.0, "shared": 1.0}, {"wrong": 1.0, "shared": 1.0}]
        before = model.example_log_likelihood(candidates, [0])
        for _ in range(10):
            model.update(candidates, [0])
        after = model.example_log_likelihood(candidates, [0])
        assert after > before

    def test_log_likelihood_without_correct_is_minus_inf(self):
        model = LogLinearModel()
        assert model.example_log_likelihood([{"a": 1.0}], []) == float("-inf")

    def test_updates_counter(self):
        model = LogLinearModel()
        model.update([{"a": 1.0}, {"b": 1.0}], [0])
        assert model.updates_applied == 1


class TestPersistence:
    def test_json_roundtrip(self):
        model = LogLinearModel()
        model.update([{"a": 1.0}, {"b": 1.0}], [0])
        restored = LogLinearModel.from_json(model.to_json())
        assert restored.weights == model.weights
        assert restored.updates_applied == model.updates_applied

    def test_save_and_load_file(self, tmp_path):
        model = LogLinearModel()
        model.update([{"a": 1.0}, {"b": 1.0}], [0])
        path = tmp_path / "model.json"
        model.save(path)
        loaded = LogLinearModel.load(path)
        assert loaded.score({"a": 1.0}) == pytest.approx(model.score({"a": 1.0}))

    def test_copy_is_independent(self):
        model = LogLinearModel()
        model.update([{"a": 1.0}, {"b": 1.0}], [0])
        clone = model.copy()
        clone.update([{"a": 1.0}, {"b": 1.0}], [1])
        assert clone.weights != model.weights
