"""Unit tests for synthetic table generation."""

import pytest

from repro.dataset import DOMAINS, TableGenerator, generate_table, get_domain
from repro.tables import infer_schema


class TestSingleTable:
    def test_row_bounds_respected(self):
        domain = get_domain("medal_tally")
        table = generate_table(domain, seed=1)
        assert domain.min_rows <= table.num_rows <= domain.max_rows

    def test_explicit_row_count(self):
        table = generate_table(get_domain("olympics"), seed=2, num_rows=10)
        assert table.num_rows == 10

    def test_columns_match_domain(self):
        domain = get_domain("shipwrecks")
        table = generate_table(domain, seed=3)
        assert table.columns == domain.column_names

    def test_key_column_values_are_distinct(self):
        domain = get_domain("football_roster")
        table = generate_table(domain, seed=4)
        names = [value.display() for value in table.column_values(domain.key_column)]
        assert len(names) == len(set(names))

    def test_sequence_column_is_one_to_n(self):
        domain = get_domain("medal_tally")
        table = generate_table(domain, seed=5)
        ranks = [value.as_number() for value in table.column_values("Rank")]
        assert ranks == list(range(1, table.num_rows + 1))

    def test_category_column_has_repeats_often(self):
        domain = get_domain("shipwrecks")
        repeats = 0
        for seed in range(6):
            table = generate_table(domain, seed=seed)
            lakes = [value.display() for value in table.column_values("Lake")]
            if len(set(lakes)) < len(lakes):
                repeats += 1
        assert repeats >= 4

    def test_numeric_columns_inferred_as_numeric(self):
        domain = get_domain("elections")
        table = generate_table(domain, seed=7)
        schema = infer_schema(table)
        assert schema.column("Votes").is_numeric

    def test_year_columns_are_sorted_and_distinct(self):
        domain = get_domain("club_seasons")
        table = generate_table(domain, seed=8)
        years = [value.as_number() for value in table.column_values("Year")]
        assert years == sorted(years)
        assert len(set(years)) == len(years)

    def test_date_column_values_parse_as_dates(self):
        domain = get_domain("festivals")
        table = generate_table(domain, seed=9)
        from repro.tables import DateValue

        assert all(isinstance(value, DateValue) for value in table.column_values("Date"))

    def test_determinism_per_seed(self):
        domain = get_domain("olympics")
        first = generate_table(domain, seed=11)
        second = generate_table(domain, seed=11)
        assert first.to_dicts() == second.to_dicts()


class TestCorpus:
    def test_corpus_cycles_domains(self):
        generator = TableGenerator(seed=0)
        tables = generator.generate_corpus(len(DOMAINS) * 2)
        assert len(tables) == len(DOMAINS) * 2
        names = {table.name.split(" #")[0] for table in tables}
        assert len(names) == len(DOMAINS)

    def test_corpus_tables_have_unique_names(self):
        generator = TableGenerator(seed=1)
        tables = generator.generate_corpus(30)
        assert len({table.name for table in tables}) == len(tables)
