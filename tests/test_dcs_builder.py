"""Unit tests for the fluent query builder."""

import pytest

from repro.dcs import (
    AggregateFunction,
    ComparisonOperator,
    SuperlativeKind,
    builder as q,
)
from repro.tables.values import NumberValue, StringValue


class TestValuePromotion:
    def test_string_promoted_to_literal(self):
        literal = q.value("Greece")
        assert literal.value == StringValue("Greece")

    def test_number_promoted_to_literal(self):
        literal = q.value(42)
        assert literal.value == NumberValue(42)

    def test_query_passes_through(self):
        records = q.all_records()
        assert q.value(records) is records

    def test_column_records_promotes_target(self):
        query = q.column_records("Country", "Greece")
        assert query.value.value == StringValue("Greece")


class TestOperatorHelpers:
    def test_comparison_accepts_string_operator(self):
        query = q.comparison_records("Games", ">=", 5)
        assert query.op == ComparisonOperator.GE

    def test_aggregate_accepts_string_function(self):
        query = q.aggregate("sum", q.column_values("Gold", q.all_records()))
        assert query.function == AggregateFunction.SUM

    def test_compare_values_accepts_string_kind(self):
        query = q.compare_values("Year", "City", q.union("a", "b"), kind="argmin")
        assert query.kind == SuperlativeKind.ARGMIN

    def test_argmax_defaults_to_all_records(self):
        from repro.dcs import AllRecords

        assert isinstance(q.argmax_records("Year").records, AllRecords)

    def test_most_common_defaults_to_whole_column(self):
        from repro.dcs import AllRecords, ColumnValues

        query = q.most_common("City")
        assert isinstance(query.values, ColumnValues)
        assert isinstance(query.values.records, AllRecords)
        assert query.values.column == "City"

    def test_value_difference_shape(self):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        assert query.left.column == "Total"
        assert query.left.records.column == "Nation"

    def test_count_difference_shape(self):
        query = q.count_difference("Lake", "Lake Huron", "Lake Erie")
        assert query.left.function == AggregateFunction.COUNT
        assert query.right.operand.column == "Lake"

    def test_first_and_last_record_kinds(self):
        assert q.first_record().kind == SuperlativeKind.ARGMIN
        assert q.last_record().kind == SuperlativeKind.ARGMAX

    def test_value_in_first_and_last_record(self):
        assert q.value_in_first_record("City").kind == SuperlativeKind.ARGMIN
        assert q.value_in_last_record("City").kind == SuperlativeKind.ARGMAX
