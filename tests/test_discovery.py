"""The table-discovery bench harness (ISSUE 9): report shape + contracts.

One small corpus, one harness run, every invariant checked against it:
the payload matches the committed ``repro-bench-discovery-v1`` schema
shape, the bulk-built index is structurally identical to the sequential
one, the pruned answers match broadcast, and the recall bookkeeping adds
up.  The full-scale numbers live in the committed
``BENCH_discovery.json``; this file locks the machinery, not the
measurements.
"""

from __future__ import annotations

import json

import pytest

from repro.dataset import CorpusConfig, build_discovery_corpus
from repro.perf import RECALL_KS, run_discovery_bench


@pytest.fixture(scope="module")
def report():
    corpus = build_discovery_corpus(
        CorpusConfig(num_tables=40, num_questions=24, seed=5, scale=1.0)
    )
    return run_discovery_bench(
        corpus=corpus, max_candidates=10, identity_sample=4
    )


@pytest.fixture(scope="module")
def payload(report):
    return report.to_payload()


@pytest.mark.bench_smoke
class TestDiscoveryReport:
    def test_integrity_verdicts_hold(self, report):
        """The two gates the CLI exits non-zero on."""
        assert report.identical
        assert report.identical_index

    def test_recall_covers_every_cutoff_and_is_monotone(self, report):
        values = [report.recall[k] for k in RECALL_KS]
        assert all(0.0 <= value <= 1.0 for value in values)
        assert values == sorted(values)  # recall@k grows with k
        assert report.recall[max(RECALL_KS)] > 0.0

    def test_routing_prunes_the_broadcast(self, report):
        assert report.routed_parses < report.broadcast_parses
        assert report.mean_routed <= report.max_candidates + report.shards * (
            report.fallbacks / report.questions if report.questions else 0
        )

    def test_identity_sample_was_exercised(self, report):
        assert report.identity_checked > 0

    def test_hit_counts_match_rates(self, report):
        for k in RECALL_KS:
            assert report.recall[k] == report.recall_hits[k] / report.questions


@pytest.mark.bench_smoke
class TestDiscoveryPayload:
    def test_schema_field_and_top_level_keys(self, payload):
        assert payload["schema"] == "repro-bench-discovery-v1"
        assert set(payload) == {
            "schema", "shards", "questions", "max_candidates", "recall",
            "recall_hits", "fallbacks", "parses", "identical", "identity",
            "corpus", "index", "timings",
        }

    def test_payload_validates_against_committed_schema(self, payload):
        from pathlib import Path

        from repro.api import schema as wire_schema

        schema_path = (
            Path(__file__).resolve().parents[1]
            / "schemas"
            / "bench_discovery.v1.json"
        )
        wire_schema.validate_payload(
            payload, json.loads(schema_path.read_text(encoding="utf-8"))
        )

    def test_payload_is_json_round_trippable(self, payload):
        assert json.loads(json.dumps(payload, sort_keys=True)) == payload

    def test_index_counters_are_populated(self, payload):
        assert payload["index"]["shards"] == payload["shards"]
        assert payload["index"]["postings_terms"] > 0
        assert payload["index"]["postings_bytes"] > 0

    def test_timings_carry_build_and_routing(self, payload):
        build = payload["timings"]["build"]
        assert build["identical_index"] is True
        assert build["sequential_seconds"] >= 0
        assert build["bulk_seconds"] >= 0
        routing = payload["timings"]["routing"]
        assert routing["p50_ms"] >= 0
        assert routing["p95_ms"] >= routing["p50_ms"]
