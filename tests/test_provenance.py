"""Unit tests for the multilevel cell-based provenance model (Section 4)."""

import pytest

from repro.core import AggregateMarker, ProvenanceEngine, compute_provenance
from repro.dcs import SuperlativeKind, SuperlativeRecords, builder as q


def coordinates(level):
    return {cell.coordinate for cell in level.cells}


class TestExample43:
    """The paper's Example 4.3: R[Year].City.Athens."""

    def test_output_provenance(self, olympics_table):
        query = q.column_values("Year", q.column_records("City", "Athens"))
        provenance = compute_provenance(query, olympics_table)
        assert coordinates(provenance.output) == {(0, "Year"), (2, "Year")}

    def test_execution_provenance_adds_subquery_cells(self, olympics_table):
        query = q.column_values("Year", q.column_records("City", "Athens"))
        provenance = compute_provenance(query, olympics_table)
        assert coordinates(provenance.execution) == {
            (0, "Year"), (2, "Year"), (0, "City"), (2, "City"),
        }

    def test_column_provenance_covers_both_columns(self, olympics_table):
        query = q.column_values("Year", q.column_records("City", "Athens"))
        provenance = compute_provenance(query, olympics_table)
        expected = {(i, "Year") for i in range(6)} | {(i, "City") for i in range(6)}
        assert coordinates(provenance.columns) == expected


class TestChainInvariant:
    QUERIES = [
        lambda: q.column_records("Country", "Greece"),
        lambda: q.column_values("Year", q.column_records("Country", "Greece")),
        lambda: q.max_(q.column_values("Year", q.column_records("Country", "Greece"))),
        lambda: q.count(q.column_records("City", "Athens")),
        lambda: q.compare_values("Year", "City", q.union("London", "Beijing")),
        lambda: q.most_common("City"),
        lambda: q.value_in_last_record("City"),
        lambda: q.intersection(
            q.column_records("Country", "UK"), q.column_records("Year", 2012)
        ),
        lambda: q.column_values("City", q.prev_records(q.column_records("City", "London"))),
        lambda: q.argmax_records("Year"),
    ]

    @pytest.mark.parametrize("make_query", QUERIES)
    def test_po_subset_pe_subset_pc(self, olympics_table, make_query):
        provenance = compute_provenance(make_query(), olympics_table)
        assert provenance.chain_is_ordered()

    def test_chain_property_exposes_three_levels(self, olympics_table):
        provenance = compute_provenance(q.most_common("City"), olympics_table)
        assert len(provenance.chain) == 3


class TestAggregationProvenance:
    def test_aggregate_adds_marker(self, olympics_table):
        query = q.max_(q.column_values("Year", q.column_records("Country", "Greece")))
        provenance = compute_provenance(query, olympics_table)
        assert AggregateMarker("max", "Year") in provenance.output.aggregates

    def test_count_marker_attached_to_selection_column(self, olympics_table):
        query = q.count(q.column_records("City", "Athens"))
        provenance = compute_provenance(query, olympics_table)
        assert AggregateMarker("count", "City") in provenance.output.aggregates

    def test_marker_display(self):
        assert AggregateMarker("max", "Year").display() == "MAX(Year)"
        assert AggregateMarker("sub").display() == "SUB"

    def test_aggregate_output_cells_are_operand_output_cells(self, olympics_table):
        inner = q.column_values("Year", q.column_records("Country", "Greece"))
        outer = q.max_(inner)
        engine = ProvenanceEngine(olympics_table)
        assert coordinates(engine.output_provenance(outer)) == coordinates(
            engine.output_provenance(inner)
        )


class TestDifferenceProvenance:
    """The paper's Example 5.2 / Figure 6."""

    def test_output_cells_are_the_two_subtracted_values(self, medals_table):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        provenance = compute_provenance(query, medals_table)
        assert coordinates(provenance.output) == {(3, "Total"), (6, "Total")}

    def test_execution_cells_add_the_two_nations(self, medals_table):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        provenance = compute_provenance(query, medals_table)
        assert {(3, "Nation"), (6, "Nation")} <= coordinates(provenance.execution)

    def test_column_cells_cover_nation_and_total(self, medals_table):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        provenance = compute_provenance(query, medals_table)
        expected = {(i, "Total") for i in range(8)} | {(i, "Nation") for i in range(8)}
        assert coordinates(provenance.columns) == expected


class TestIntersectionProvenance:
    def test_intersection_output_follows_table10_rule(self, olympics_table):
        left = q.column_records("Country", "UK")
        right = q.column_records("Year", 2012)
        query = q.intersection(left, right)
        engine = ProvenanceEngine(olympics_table)
        output = engine.output_provenance(query)
        # PO(Q) = PO(records1) ∩ PO(records2): the operands touch different
        # columns, so the intersection of their output cells is empty.
        assert coordinates(output) == set()

    def test_intersection_execution_includes_both_operands(self, olympics_table):
        query = q.intersection(
            q.column_records("Country", "UK"), q.column_records("Year", 2012)
        )
        provenance = compute_provenance(query, olympics_table)
        assert {(4, "Country"), (4, "Year")} <= coordinates(provenance.execution)


class TestSuperlativeProvenance:
    def test_argmin_records_outputs_extreme_cell(self, olympics_table):
        provenance = compute_provenance(q.argmin_records("Year"), olympics_table)
        assert coordinates(provenance.output) == {(0, "Year")}

    def test_superlative_over_subset(self, medals_table):
        base = q.column_records("Nation", q.union("Fiji", "Tonga"))
        query = SuperlativeRecords(SuperlativeKind.ARGMAX, "Total", base)
        provenance = compute_provenance(query, medals_table)
        assert coordinates(provenance.output) == {(3, "Total")}


class TestRecordIndexSets:
    def test_record_sets_follow_cells(self, medals_table):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        provenance = compute_provenance(query, medals_table)
        assert provenance.output_record_indices() == frozenset({3, 6})
        assert provenance.execution_record_indices() == frozenset({3, 6})
        assert provenance.column_record_indices() == frozenset(range(8))
