"""Tests for the content-addressed caches: fingerprints, LRU bounds and the
``id(table)`` aliasing regression.

The seed keyed the parser's per-table lexicon/grammar caches by
``id(table)``.  CPython recycles object ids after garbage collection, so a
long-running deployment could serve the lexicon of a *dead* table to a
brand-new one — and the caches grew without bound.  These tests lock in
the fingerprint-keyed replacement.
"""

from __future__ import annotations

import pytest

from repro.dcs import ExecutionCache, Executor, MemoizedExecutor, from_sexpr
from repro.parser import Lexicon, ParserConfig, SemanticParser
from repro.parser.grammar import CandidateGrammar
from repro.tables import LRUCache, Table, TableFingerprint, fingerprint_table


def small_table(cell: str = "x", header: str = "Letter", name: str = "t") -> Table:
    return Table(
        columns=[header, "Score"],
        rows=[[cell, 1], ["y", 2], ["z", 3]],
        name=name,
    )


# ---------------------------------------------------------------------------
# fingerprint contract
# ---------------------------------------------------------------------------


class TestTableFingerprint:
    def test_deterministic_across_rebuilds(self):
        assert small_table().fingerprint == small_table().fingerprint

    def test_exposed_and_cached_on_table(self):
        table = small_table()
        first = table.fingerprint
        assert first is table.fingerprint  # lazy, computed once
        assert isinstance(first, TableFingerprint)
        assert first == fingerprint_table(table)
        assert first.num_rows == 3 and first.num_columns == 2

    def test_name_is_excluded(self):
        assert small_table(name="a").fingerprint == small_table(name="b").fingerprint

    def test_changes_when_a_cell_changes(self):
        assert small_table(cell="x").fingerprint != small_table(cell="X!").fingerprint

    def test_changes_when_a_header_changes(self):
        assert (
            small_table(header="Letter").fingerprint
            != small_table(header="Char").fingerprint
        )

    def test_changes_when_a_column_type_changes(self):
        # Same raw content, different cell *type*: bare years parsed as
        # numbers vs dates must not share caches.
        rows = [[1896, 1], [1900, 2]]
        as_numbers = Table(columns=["Year", "Rank"], rows=rows)
        as_dates = Table(columns=["Year", "Rank"], rows=rows, date_columns=["Year"])
        assert as_numbers.fingerprint != as_dates.fingerprint

    def test_changes_when_row_order_changes(self):
        forward = Table(columns=["A"], rows=[["x"], ["y"]])
        backward = Table(columns=["A"], rows=[["y"], ["x"]])
        assert forward.fingerprint != backward.fingerprint

    def test_embedded_delimiters_cannot_alias(self):
        # The serialisation is length-prefixed: a separator character
        # inside a header or cell must not shift token boundaries.
        left = Table(columns=["A\x1f", "B"], rows=[["x", "y"]])
        right = Table(columns=["A", "\x1fB"], rows=[["x", "y"]])
        assert left.fingerprint != right.fingerprint
        joined = Table(columns=["A"], rows=[["x\x1fy"]])
        split = Table(columns=["A"], rows=[["x"]])
        assert joined.fingerprint != split.fingerprint

    def test_string_repr_is_short_digest(self):
        fingerprint = small_table().fingerprint
        assert str(fingerprint) == fingerprint.digest[:12]


# ---------------------------------------------------------------------------
# the LRU primitive
# ---------------------------------------------------------------------------


class TestLRUCache:
    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)

    def test_evicts_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_get_or_create_builds_once(self):
        cache = LRUCache(maxsize=4)
        builds = []
        for _ in range(3):
            value = cache.get_or_create("key", lambda: builds.append(1) or "built")
        assert value == "built"
        assert len(builds) == 1
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 1

    def test_stats_and_clear(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.get("missing")
        assert cache.stats()["misses"] == 1
        cache.clear()
        assert len(cache) == 0


# ---------------------------------------------------------------------------
# the id(table) aliasing regression
# ---------------------------------------------------------------------------


class TestIdReuseRegression:
    def test_recycled_table_id_does_not_alias_caches(self):
        """Build, drop and rebuild tables until CPython reuses an object id;
        the parser must answer from the *new* table's content.

        The seed's ``id(table)``-keyed caches dodged this aliasing only by
        leaking: the cached lexicon kept every table alive forever.  A
        *bounded* cache evicts, evicted tables get freed, and their ids
        get recycled — so the cache key must be content-addressed.  Here
        we churn the (small) cache to force the eviction, then recycle
        the id.
        """
        parser = SemanticParser(
            config=ParserConfig(table_cache_size=2, candidate_cache_size=2)
        )
        stale = Table(columns=["Name", "Score"], rows=[["old", 1]], name="stale")
        parser.parse("what is the score of old", stale)
        # Evict the stale table's lexicon/grammar while it is still alive,
        # so that dropping it below actually frees it (and its id).
        for index in range(3):
            churn = Table(columns=["Name", "Score"], rows=[[f"churn-{index}", index]])
            parser._lexicon(churn)
            parser._grammar(churn)
        del churn
        stale_id = id(stale)
        del stale

        fresh = None
        keep = []  # hold probes alive so the allocator digs through the free pool
        for _ in range(5000):
            candidate = Table(
                columns=["Name", "Score"], rows=[["new", 9]], name="fresh"
            )
            if id(candidate) == stale_id:
                fresh = candidate
                break
            keep.append(candidate)
        if fresh is None:
            pytest.skip("interpreter did not recycle the object id")

        # The lexicon served for `fresh` must index "new", not "old".
        lexicon = parser._lexicon(fresh)
        analysis = lexicon.analyze("what is the score of new")
        assert any(match.text == "new" for match in analysis.entities)
        assert not lexicon.analyze("what is the score of old").entities

        parse = parser.parse("what is the score of new", fresh)
        assert parse.candidates, "the recycled-id table produced no candidates"
        assert any("9" in candidate.answer for candidate in parse.candidates)

    def test_table_caches_are_bounded(self):
        parser = SemanticParser(config=ParserConfig(table_cache_size=4))
        for index in range(10):
            table = Table(columns=["A"], rows=[[f"value-{index}"]], name=f"t{index}")
            parser._lexicon(table)
            parser._grammar(table)
        assert len(parser._lexicons) <= 4
        assert len(parser._grammars) <= 4
        assert parser._lexicons.evictions > 0


# ---------------------------------------------------------------------------
# cold vs warm behaviour
# ---------------------------------------------------------------------------


class TestColdWarmParseCache:
    QUESTION = "what is the score of y"

    def test_second_parse_skips_generation_side_effects(self, monkeypatch):
        analyze_calls, generate_calls = [], []
        original_analyze = Lexicon.analyze
        original_generate = CandidateGrammar.generate
        monkeypatch.setattr(
            Lexicon,
            "analyze",
            lambda self, question: analyze_calls.append(question)
            or original_analyze(self, question),
        )
        monkeypatch.setattr(
            CandidateGrammar,
            "generate",
            lambda self, analysis: generate_calls.append(1)
            or original_generate(self, analysis),
        )

        parser = SemanticParser()
        table = small_table()
        cold = parser.parse(self.QUESTION, table)
        assert analyze_calls == [self.QUESTION] and len(generate_calls) == 1

        warm = parser.parse(self.QUESTION, small_table())  # same content, new object
        assert analyze_calls == [self.QUESTION] and len(generate_calls) == 1
        assert [c.sexpr for c in warm.candidates] == [c.sexpr for c in cold.candidates]
        assert [c.answer for c in warm.candidates] == [c.answer for c in cold.candidates]

    def test_cache_disabled_reruns_generation(self, monkeypatch):
        generate_calls = []
        original_generate = CandidateGrammar.generate
        monkeypatch.setattr(
            CandidateGrammar,
            "generate",
            lambda self, analysis: generate_calls.append(1)
            or original_generate(self, analysis),
        )
        parser = SemanticParser(config=ParserConfig(cache_candidates=False))
        table = small_table()
        parser.parse(self.QUESTION, table)
        parser.parse(self.QUESTION, table)
        assert len(generate_calls) == 2

    def test_warm_reparse_still_reranks_with_new_weights(self):
        # The candidate cache memoizes *generation* only; ranking must
        # always reflect the current model weights.
        parser = SemanticParser()
        table = small_table()
        cold = parser.parse(self.QUESTION, table)
        assert len(cold.candidates) > 1
        parser.model.weights = {"op:Aggregate": -5.0, "op:ColumnValues": 3.0}
        warm = parser.parse(self.QUESTION, table)
        expected = sorted(
            cold.candidates, key=lambda c: -parser.model.score(c.features)
        )
        assert [c.sexpr for c in warm.candidates] == [c.sexpr for c in expected]
        assert warm.top.score == parser.model.score(warm.top.features)


class TestMemoizedExecutorWarmth:
    def test_warm_execution_hits_cache_with_equal_result(self, olympics_table):
        query = from_sexpr(
            '(aggregate max (column-values "Year" (column-records "Country" (value "Greece"))))'
        )
        cache = ExecutionCache()
        executor = MemoizedExecutor(olympics_table, cache=cache)
        cold = executor.execute(query)
        misses_after_cold = cache.misses
        warm = executor.execute(query)
        assert warm == cold
        assert cache.misses == misses_after_cold  # no new table walk
        assert cache.hits > 0
        assert cold == Executor(olympics_table).execute(query)

    def test_cache_is_shared_across_equal_content_tables(self, olympics_table):
        clone = Table(
            columns=olympics_table.columns,
            rows=[[cell.value for cell in record.cells] for record in olympics_table],
            name="same content, different object",
        )
        query = from_sexpr('(aggregate count (column-records "Country" (value "Greece")))')
        cache = ExecutionCache()
        MemoizedExecutor(olympics_table, cache=cache).execute(query)
        size_before = len(cache)
        result = MemoizedExecutor(clone, cache=cache).execute(query)
        assert len(cache) == size_before  # pure hits: content-addressed sharing
        assert result.scalar().as_number() == 2
