"""Shard-set routing and the composed answer through the full stack.

Covers :meth:`CorpusIndex.term_coverage`, the
:class:`~repro.retrieval.router.ShardSetRouter` proposal rules, the
catalog's additive composition (`ask_any` single-shard ranking is
byte-identical with composition on or off), the v2 wire envelope's
``composed`` field, the multi-table question tier, and the
``repro bench-join`` harness with its oracle gate.
"""

import json

import pytest

from repro.api import ReproEngine, QueryResult
from repro.api import schema as wire_schema
from repro.dataset import JoinCorpusConfig, build_join_corpus
from repro.perf.join import JOIN_RECALL_KS, run_join_bench
from repro.retrieval import ShardSetRouter
from repro.tables import Table
from repro.tables.catalog import TableCatalog


@pytest.fixture
def medals():
    return Table(
        columns=["Nation", "Total", "Golds"],
        rows=[
            ["Fiji", "120", "40"],
            ["Samoa", "80", "20"],
            ["Tonga", "95", "30"],
            ["Greece", "town", "10"],
            ["Norway", "300", "90"],
        ],
        name="medals",
    )


@pytest.fixture
def regions():
    return Table(
        columns=["Nation", "Continent"],
        rows=[
            ["Fiji", "Oceania"],
            ["Samoa", "Oceania"],
            ["Tonga", "Oceania"],
            ["Greece", "Europe"],
            ["Norway", "Europe"],
        ],
        name="regions",
    )


@pytest.fixture
def catalog(medals, regions):
    cat = TableCatalog()
    cat.register(medals)
    cat.register(regions)
    return cat


JOIN_QUESTION = "what is the total for nations in Oceania"


class TestTermCoverage:
    def test_terms_map_to_covering_shards(self, catalog, medals, regions):
        coverage = catalog._index.term_coverage(JOIN_QUESTION)
        assert coverage["entity:oceania"] == frozenset(
            {regions.fingerprint.digest}
        )
        assert medals.fingerprint.digest in coverage["header:total"]

    def test_uncovered_terms_are_absent(self, catalog):
        coverage = catalog._index.term_coverage("what about zanzibar")
        assert "entity:zanzibar" not in coverage

    def test_empty_question_has_no_coverage(self, catalog):
        assert catalog._index.term_coverage("") == {}


class TestShardSetRouter:
    def test_proposes_the_covering_pair(self, catalog, medals, regions):
        decision = catalog.routing_sets(JOIN_QUESTION)
        assert decision.proposed
        assert not decision.single_covered
        top = decision.proposals[0]
        assert frozenset(top.digests) == frozenset(
            {medals.fingerprint.digest, regions.fingerprint.digest}
        )
        assert top.complete

    def test_single_covered_question_gets_no_proposals(self, catalog):
        # Every anchored term lives in the medals shard alone.
        decision = catalog.routing_sets("how many golds does Fiji have")
        assert decision.single_covered
        assert decision.proposals == ()

    def test_fallback_question_gets_no_proposals(self, catalog):
        decision = catalog.routing_sets("zzz qqq xxx")
        assert decision.single.fallback
        assert decision.proposals == ()

    def test_deterministic(self, catalog):
        first = catalog.routing_sets(JOIN_QUESTION)
        second = catalog.routing_sets(JOIN_QUESTION)
        assert first.proposals == second.proposals

    def test_max_proposals_override(self, catalog):
        default = catalog.routing_sets(JOIN_QUESTION)
        widened = catalog.routing_sets(JOIN_QUESTION, max_proposals=8)
        assert widened.proposals[: len(default.proposals)] == default.proposals

    def test_constructor_validates_knobs(self, catalog):
        with pytest.raises(ValueError):
            ShardSetRouter(catalog._index, catalog._router, max_set_size=1)
        with pytest.raises(ValueError):
            ShardSetRouter(catalog._index, catalog._router, max_proposals=0)


class TestCatalogComposition:
    def test_ask_any_attaches_a_composed_answer(self, catalog):
        answer = catalog.ask_any(JOIN_QUESTION)
        assert answer.composed is not None
        assert answer.composed.answer == ("120", "80", "95")
        assert answer.composed.provenance.primary_name == "medals"

    def test_single_shard_ranking_is_unchanged_by_composition(self, catalog):
        with_compose = catalog.ask_any(JOIN_QUESTION)
        without = catalog.ask_any(JOIN_QUESTION, compose=False)
        assert without.composed is None
        assert [ref.digest for ref, _ in with_compose.ranked] == [
            ref.digest for ref, _ in without.ranked
        ]
        assert with_compose.routing.scored == without.routing.scored

    def test_catalog_policy_disables_composition(self, medals, regions):
        cat = TableCatalog(compose=False)
        cat.register(medals)
        cat.register(regions)
        assert cat.ask_any(JOIN_QUESTION).composed is None
        # The per-call override still wins over the constructor policy.
        assert cat.ask_any(JOIN_QUESTION, compose=True).composed is not None

    def test_single_table_questions_never_compose(self, catalog):
        assert catalog.ask_any("how many golds does Fiji have").composed is None


class TestComposedOnTheWire:
    def test_engine_emits_and_roundtrips_composed(self, medals, regions):
        engine = ReproEngine(tables=[medals, regions])
        result = engine.query(JOIN_QUESTION)
        assert result.ok
        assert result.composed is not None
        assert result.composed.answer == ("120", "80", "95")
        assert result.composed.primary.name == "medals"
        assert result.composed.secondary.name == "regions"
        assert result.composed.join_pairs == ((0, 0), (1, 1), (2, 2))

        payload = result.to_dict()
        wire_schema.validate_payload(
            payload, wire_schema.load_schema("query_result.v2.json")
        )
        rebuilt = QueryResult.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.composed == result.composed
        assert rebuilt.canonical_dict() == result.canonical_dict()

    def test_single_table_result_keeps_composed_null(self, medals, regions):
        engine = ReproEngine(tables=[medals, regions])
        result = engine.query("how many golds does Fiji have")
        assert result.composed is None
        assert result.to_dict()["composed"] is None


class TestJoinCorpus:
    def test_deterministic_for_a_seed(self):
        config = JoinCorpusConfig(scale=1.0)
        first = build_join_corpus(config)
        second = build_join_corpus(config)
        assert [t.fingerprint.digest for t in first.tables] == [
            t.fingerprint.digest for t in second.tables
        ]
        assert first.questions == second.questions

    def test_scale_floors_hold(self):
        corpus = build_join_corpus(JoinCorpusConfig(scale=0.01))
        config = JoinCorpusConfig()
        assert len(corpus.pairs) == config.min_pairs
        assert len(corpus.questions) == config.min_questions

    def test_gold_pairs_reference_generated_tables(self):
        corpus = build_join_corpus(JoinCorpusConfig(scale=0.1))
        digests = {t.fingerprint.digest for t in corpus.tables}
        for question in corpus.questions:
            assert question.primary_digest in digests
            assert question.secondary_digest in digests
            assert question.answer

    def test_questions_carry_the_planner_anchors(self):
        corpus = build_join_corpus(JoinCorpusConfig(scale=0.1))
        for question in corpus.questions:
            assert question.target_column.lower() in question.question.lower()
            assert question.anchor_value.lower() in question.question.lower()


class TestJoinBench:
    @pytest.fixture(scope="class")
    def report(self):
        return run_join_bench(config=JoinCorpusConfig(scale=0.25))

    def test_gate_passes(self, report):
        assert report.gate_ok
        assert report.composed == report.compose_attempted
        assert report.oracle_divergent == 0
        assert report.failures == []

    def test_recall_is_reported(self, report):
        for k in JOIN_RECALL_KS:
            assert 0.0 <= report.recall[k] <= 1.0
        assert report.recall[5] >= report.recall[1]

    def test_payload_matches_schema(self, report):
        wire_schema.validate_payload(
            report.to_payload(), wire_schema.load_schema("bench_join.v1.json")
        )
