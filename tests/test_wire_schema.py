"""The committed wire schemas gate the envelope shape (ISSUE 5, CI task).

Live engine output, live server output and the recorded fixtures must
all validate against ``schemas/query_result.v2.json`` /
``schemas/serve_response.v1.json`` — the same check CI runs via
``scripts/validate_wire.py``, so wire drift fails tier-1 before it
fails the build.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import ReproEngine, schema as wire_schema
from repro.api.wire import v1_answer_payload

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def engine(olympics_table, medals_table):
    return ReproEngine(tables=[olympics_table, medals_table])


@pytest.fixture
def v2_schema():
    return wire_schema.load_schema("query_result.v2.json")


@pytest.fixture
def v1_schema():
    return wire_schema.load_schema("serve_response.v1.json")


class TestLivePayloads:
    def test_v2_results_validate(self, engine, v2_schema):
        question = "which country hosted in 2004"
        results = [
            engine.query(question, target="olympics"),
            engine.query(question),
            engine.query(question, prune=False),
            engine.query("q", target="atlantis"),
            engine.query(""),
        ]
        for result in results:
            wire_schema.validate_payload(result.to_dict(), v2_schema)
            # The bundled subset validator agrees with jsonschema.
            wire_schema.validate_subset(result.to_dict(), v2_schema)

    def test_v1_payloads_validate(self, engine, v1_schema):
        question = "which country hosted in 2004"
        payloads = [
            v1_answer_payload(engine.catalog.ask(question, "olympics")),
            v1_answer_payload(engine.catalog.ask_any(question)),
            {"ok": False, "error": "unknown table 'atlantis'"},
        ]
        for payload in payloads:
            wire_schema.validate_payload(payload, v1_schema)
            wire_schema.validate_subset(payload, v1_schema)

    def test_drift_is_caught(self, engine, v2_schema):
        payload = engine.query("which country hosted in 2004").to_dict()
        payload["surprise"] = 1
        with pytest.raises(wire_schema.SchemaValidationError):
            wire_schema.validate_payload(payload, v2_schema)
        with pytest.raises(wire_schema.SchemaValidationError):
            wire_schema.validate_subset(payload, v2_schema)
        missing = engine.query("which country hosted in 2004").to_dict()
        del missing["routing"]
        with pytest.raises(wire_schema.SchemaValidationError):
            wire_schema.validate_subset(missing, v2_schema)


class TestRecordedFixtures:
    """The committed fixtures are the frozen-shape regression corpus."""

    @pytest.mark.parametrize(
        "fixture,schema_name",
        [
            ("ask_response.v1.json", "serve_response.v1.json"),
            ("ask_any_response.v1.json", "serve_response.v1.json"),
            ("query_result.v2.json", "query_result.v2.json"),
        ],
    )
    def test_fixture_validates(self, fixture, schema_name):
        path = REPO_ROOT / "schemas" / "fixtures" / fixture
        payload = json.loads(path.read_text(encoding="utf-8"))
        schema = wire_schema.load_schema(schema_name)
        wire_schema.validate_payload(payload, schema)
        wire_schema.validate_subset(payload, schema)

    def test_validate_lines_counts_and_reports(self, engine, v2_schema):
        lines = [
            json.dumps(engine.query("which country hosted in 2004").to_dict()),
            "",
            json.dumps(engine.query("q", target="atlantis").to_dict()),
        ]
        assert wire_schema.validate_lines(lines, v2_schema) == 2
        with pytest.raises(wire_schema.SchemaValidationError, match="line 1"):
            wire_schema.validate_lines(["{bad"], v2_schema)


class TestValidateWireScript:
    def test_script_validates_the_committed_fixtures(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "validate_wire", REPO_ROOT / "scripts" / "validate_wire.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.main([]) == 0

    def test_script_fails_on_drift(self, tmp_path, engine):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "validate_wire", REPO_ROOT / "scripts" / "validate_wire.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        payload = engine.query("which country hosted in 2004").to_dict()
        payload["drifted"] = True
        drifted = tmp_path / "drifted.jsonl"
        drifted.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        assert module.main(["--schema", "v2", str(drifted)]) == 1
