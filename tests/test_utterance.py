"""Unit tests for query-to-utterance generation (Section 5.1, Table 3)."""

import pytest

from repro.core import derive, utterance
from repro.dcs import SuperlativeKind, SuperlativeRecords, builder as q


class TestBasicTemplates:
    def test_value_literal(self):
        assert utterance(q.value("Athens")) == "Athens"

    def test_column_records(self):
        assert (
            utterance(q.column_records("City", "Athens"))
            == "rows where value of column City is Athens"
        )

    def test_column_values(self):
        query = q.column_values("Year", q.column_records("City", "Athens"))
        assert (
            utterance(query)
            == "values in column Year in rows where value of column City is Athens"
        )

    def test_column_values_over_all_records(self):
        assert utterance(q.column_values("Year", q.all_records())) == "values in column Year"

    def test_union(self):
        assert utterance(q.union("China", "Greece")) == "China or Greece"

    def test_comparison(self):
        assert (
            utterance(q.comparison_records("Games", ">", 4))
            == "rows where values of column Games are more than 4"
        )

    def test_comparison_at_most(self):
        assert (
            utterance(q.comparison_records("Games", "<=", 17))
            == "rows where values of column Games are at most 17"
        )


class TestExample51:
    """The paper's Example 5.1 / Figure 3 composition."""

    def test_inner_utterance(self):
        query = q.column_values("Year", q.column_records("Country", "Greece"))
        assert (
            utterance(query)
            == "values in column Year in rows where value of column Country is Greece"
        )

    def test_composed_aggregate_utterance(self):
        query = q.max_(q.column_values("Year", q.column_records("Country", "Greece")))
        assert utterance(query) == (
            "maximum of values in column Year in rows where value of column "
            "Country is Greece"
        )

    def test_derivation_tree_structure(self):
        query = q.max_(q.column_values("Year", q.column_records("Country", "Greece")))
        derivation = derive(query).derivation
        assert derivation.category == "Entity"
        assert derivation.children[0].category == "Values"
        assert derivation.children[0].children[0].category == "Records"
        assert derivation.children[0].children[0].children[0].text == "Greece"

    def test_derivation_pretty_is_indented(self):
        query = q.count(q.column_records("City", "Athens"))
        pretty = derive(query).derivation.pretty()
        assert pretty.splitlines()[0].startswith("(Entity)")
        assert pretty.splitlines()[1].startswith("  (Records)")


class TestComposites:
    def test_intersection(self):
        query = q.intersection(
            q.column_records("City", "London"), q.column_records("Country", "UK")
        )
        assert utterance(query) == (
            "rows where value of column City is London and also where value of "
            "column Country is UK"
        )

    def test_count(self):
        assert (
            utterance(q.count(q.column_records("City", "Athens")))
            == "the number of rows where value of column City is Athens"
        )

    def test_superlative_records(self):
        assert (
            utterance(q.argmax_records("Year"))
            == "rows that have the highest value in column Year"
        )

    def test_superlative_records_over_subset(self):
        query = SuperlativeRecords(
            SuperlativeKind.ARGMIN, "Total", q.column_records("Nation", "Fiji")
        )
        assert utterance(query) == (
            "rows where value of column Nation is Fiji that have the lowest value "
            "in column Total"
        )

    def test_prev_and_next(self):
        prev_query = q.prev_records(q.column_records("City", "London"))
        next_query = q.next_records(q.column_records("City", "Athens"))
        assert utterance(prev_query) == (
            "rows right above rows where value of column City is London"
        )
        assert utterance(next_query) == (
            "rows right below rows where value of column City is Athens"
        )

    def test_last_row(self):
        assert (
            utterance(q.last_record(q.column_records("City", "Athens")))
            == "where it is the last row in rows where value of column City is Athens"
        )

    def test_value_in_last_row(self):
        assert (
            utterance(q.value_in_last_record("Episode"))
            == "values in column Episode in the last row"
        )

    def test_most_common_whole_column(self):
        assert (
            utterance(q.most_common("City"))
            == "the value that appears the most in column City"
        )

    def test_most_common_restricted(self):
        query = q.most_common("City", q.union("Athens", "London"))
        assert utterance(query) == (
            "the value of Athens or London that appears the most in column City"
        )

    def test_compare_values(self):
        query = q.compare_values("Year", "City", q.union("London", "Beijing"))
        assert utterance(query) == (
            "between London or Beijing who has the highest value of column Year "
            "out of the values in City"
        )

    def test_difference_of_values_template(self):
        query = q.value_difference("Year", "City", "London", "Beijing")
        assert utterance(query) == (
            "difference in values of column Year between rows where value of "
            "column City is London and Beijing"
        )

    def test_difference_of_occurrences_template(self):
        query = q.count_difference("City", "Athens", "London")
        assert utterance(query) == (
            "in column City, what is the difference between rows with value Athens "
            "and rows with value London"
        )

    def test_generic_difference_fallback(self):
        query = q.difference(
            q.max_(q.column_values("Year", q.all_records())),
            q.min_(q.column_values("Year", q.all_records())),
        )
        assert utterance(query).startswith("the difference between maximum of")


class TestFigure8Utterances:
    def test_correct_candidate(self, seasons_table):
        query = q.max_(q.column_values("Year", q.column_records("League", "USL A-League")))
        assert utterance(query) == (
            "maximum of values in column Year in rows where value of column League "
            "is USL A-League"
        )

    def test_incorrect_candidate(self, seasons_table):
        query = q.min_(q.column_values("Year", q.argmax_records("Attendance")))
        assert utterance(query) == (
            "minimum of values in column Year in rows that have the highest value "
            "in column Attendance"
        )

    def test_distinct_queries_have_distinct_utterances(self):
        first = q.comparison_records("Games", ">", 4)
        second = q.comparison_records("Games", ">=", 5)
        assert utterance(first) != utterance(second)


class TestEveryOperatorHasATemplate:
    def test_all_node_types_covered(self, olympics_table):
        queries = [
            q.value("x"),
            q.all_records(),
            q.column_records("City", "Athens"),
            q.comparison_records("Year", "<", 2000),
            q.prev_records(q.all_records()),
            q.next_records(q.all_records()),
            q.intersection(q.column_records("City", "Athens"), q.column_records("Year", 1896)),
            q.union("a", "b"),
            q.argmax_records("Year"),
            q.first_record(),
            q.column_values("City", q.all_records()),
            q.value_in_first_record("City"),
            q.most_common("City"),
            q.compare_values("Year", "City", q.union("a", "b")),
            q.count(q.all_records()),
            q.value_difference("Year", "City", "Athens", "Paris"),
        ]
        for query in queries:
            text = utterance(query)
            assert isinstance(text, str) and text
