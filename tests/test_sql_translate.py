"""Unit tests for the lambda DCS → SQL translation (Table 10)."""

import pytest

from repro.dcs import ResultKind, builder as q
from repro.sql import SQLTranslationError, literal, quote_identifier, to_sql
from repro.tables.values import DateValue, NumberValue, StringValue


class TestLiterals:
    def test_number_literal(self):
        assert literal(NumberValue(4)) == "4"

    def test_string_literal_quoted(self):
        assert literal(StringValue("Fiji")) == "'Fiji'"

    def test_string_literal_escapes_quotes(self):
        assert literal(StringValue("O'Brien")) == "'O''Brien'"

    def test_bare_year_date_literal_is_numeric(self):
        assert literal(DateValue(year=1896)) == "1896"

    def test_full_date_literal_quoted(self):
        assert literal(DateValue(2013, 6, 8)) == "'2013-06-08'"

    def test_identifier_quoting(self):
        assert quote_identifier("Lives lost") == '"Lives lost"'
        assert quote_identifier('A"B') == '"A""B"'


class TestTranslationShapes:
    def test_column_records_matches_paper(self):
        sql = to_sql(q.column_records("City", "Athens")).sql
        assert 'WHERE "City" IN' in sql
        assert "'Athens'" in sql

    def test_column_values_selects_column(self):
        sql = to_sql(q.column_values("Year", q.column_records("City", "Athens"))).sql
        assert sql.startswith('SELECT "Year" AS val FROM T')

    def test_prev_records_uses_index_minus_one(self):
        sql = to_sql(q.prev_records(q.column_records("City", "Athens"))).sql
        assert '"Index" - 1' in sql

    def test_next_records_uses_index_plus_one(self):
        sql = to_sql(q.next_records(q.column_records("City", "Athens"))).sql
        assert '"Index" + 1' in sql

    def test_aggregate_uses_sql_function(self):
        sql = to_sql(q.sum_(q.column_values("Year", q.column_records("City", "Athens")))).sql
        assert sql.startswith("SELECT SUM(val)")

    def test_count_uses_count_star(self):
        sql = to_sql(q.count(q.column_records("City", "Athens"))).sql
        assert "COUNT(*)" in sql

    def test_difference_uses_abs_subtraction(self):
        sql = to_sql(q.value_difference("Total", "Nation", "Fiji", "Tonga")).sql
        assert sql.startswith("SELECT ABS((")
        assert ") - (" in sql

    def test_union_of_values_uses_sql_union(self):
        query = q.union(
            q.column_values("City", q.column_records("Country", "China")),
            q.column_values("City", q.column_records("Country", "Greece")),
        )
        assert "UNION" in to_sql(query).sql

    def test_intersection_uses_two_in_clauses(self):
        query = q.intersection(
            q.column_records("City", "London"), q.column_records("Country", "UK")
        )
        sql = to_sql(query).sql
        assert sql.count('"Index" IN (') == 2

    def test_superlative_uses_max_subquery(self):
        sql = to_sql(q.argmax_records("Year")).sql
        assert 'SELECT MAX("Year") FROM T' in sql

    def test_most_common_groups_and_counts(self):
        sql = to_sql(q.most_common("City")).sql
        assert "GROUP BY" in sql and "HAVING COUNT(*)" in sql

    def test_compare_values_uses_distinct(self):
        sql = to_sql(q.compare_values("Year", "City", q.union("London", "Beijing"))).sql
        assert sql.startswith("SELECT DISTINCT")

    def test_result_kind_propagated(self):
        assert to_sql(q.all_records()).kind == ResultKind.RECORDS
        assert to_sql(q.value("x")).kind == ResultKind.VALUES
        assert to_sql(q.count(q.all_records())).kind == ResultKind.SCALAR

    def test_every_operator_translates(self):
        queries = [
            q.value("Greece"),
            q.all_records(),
            q.column_records("Country", "Greece"),
            q.comparison_records("Games", ">", 4),
            q.prev_records(q.all_records()),
            q.next_records(q.all_records()),
            q.intersection(q.column_records("A", "x"), q.column_records("B", "y")),
            q.union("a", "b"),
            q.argmax_records("Year"),
            q.first_record(),
            q.column_values("Year", q.all_records()),
            q.value_in_last_record("City"),
            q.most_common("City"),
            q.compare_values("Year", "City", q.union("a", "b")),
            q.max_(q.column_values("Year", q.all_records())),
            q.value_difference("Total", "Nation", "Fiji", "Tonga"),
        ]
        for query in queries:
            assert to_sql(query).sql

    def test_pretty_flag_returns_string(self):
        sql = to_sql(q.count(q.column_records("City", "Athens")), pretty=True)
        assert "SELECT" in sql.sql
