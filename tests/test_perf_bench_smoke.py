"""Bench smoke mode: the full ``bench-parse`` surface at a fraction of the
cost (ISSUE 2 satellite).

The real benches (``benchmarks/``) run a corpus sized for meaningful
timings; tier-1 CI cannot afford that per change, yet every bench code
path — all five modes, both pool backends, the disk cache cold and warm —
must stay exercised.  These tests run the same harness under
``REPRO_BENCH_SCALE=0.1`` (the knob the bench suite itself honours) and
assert *behaviour*, never timing thresholds.  Select them alone with
``pytest -m bench_smoke``.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.perf import (
    BENCH_MODES,
    bench_pairs_from_dataset,
    bench_scale,
    run_parse_bench,
)

pytestmark = pytest.mark.bench_smoke

#: The scaled-down workload knob the satellite task names.
SMOKE_SCALE = "0.1"


@pytest.fixture()
def smoke_pairs(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", SMOKE_SCALE)
    assert bench_scale() == 0.1
    # 4 tables x 4 questions scaled by 0.1 floors at the 2 x 2 minimum.
    pairs = bench_pairs_from_dataset(num_tables=4, questions_per_table=4)
    assert len(pairs) == 4
    return pairs


class TestBenchSmoke:
    def test_all_modes_and_backends_run_and_agree(self, smoke_pairs, tmp_path):
        report = run_parse_bench(
            smoke_pairs,
            repeats=2,
            workers=2,
            backends=("thread", "process"),
            disk_cache_dir=str(tmp_path / "store"),
        )
        assert set(report.modes) == set(BENCH_MODES)
        counts = {timing.candidates for timing in report.modes.values()}
        assert len(counts) == 1, f"modes generated different candidates: {counts}"
        for timing in report.modes.values():
            assert timing.questions == len(smoke_pairs) * 2
            assert timing.total_seconds > 0

    def test_disk_cache_warm_start_is_identical(self, smoke_pairs, tmp_path):
        store = str(tmp_path / "store")
        cold = run_parse_bench(
            smoke_pairs, repeats=1, workers=2, backends=("thread",),
            disk_cache_dir=store,
        )
        warm = run_parse_bench(
            smoke_pairs, repeats=1, workers=2, backends=("thread",),
            disk_cache_dir=store,
        )
        # Identical workload -> identical candidates, cold or warm.
        for mode in cold.modes:
            assert warm.modes[mode].candidates == cold.modes[mode].candidates
        # And the warm run actually answered from disk for the disk-backed
        # modes (indexed / batched).
        assert warm.modes["indexed"].cache_stats["disk"]["hits"] > 0
        assert cold.modes["indexed"].cache_stats["disk"]["hits"] == 0

    def test_cli_bench_parse_smoke(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_SCALE", SMOKE_SCALE)
        out = io.StringIO()
        artifact = tmp_path / "BENCH_parse.json"
        code = main(
            [
                "bench-parse", "--tables", "4", "--questions", "4",
                "--repeats", "2", "--workers", "2", "--backend", "both",
                "--disk-cache", str(tmp_path / "store"),
                "--output", str(artifact),
            ],
            out=out,
        )
        assert code == 0
        payload = json.loads(artifact.read_text())
        assert set(payload["modes"]) == set(BENCH_MODES)
        # The scaled corpus: 2 tables x 2 questions x 2 repeats.
        assert payload["questions"] == 8
