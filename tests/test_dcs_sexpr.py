"""Unit tests for the s-expression serialisation of queries."""

import pytest

from repro.dcs import SexprError, builder as q, from_sexpr, to_sexpr


EXAMPLES = [
    q.value("Greece"),
    q.all_records(),
    q.column_records("Country", "Greece"),
    q.column_records("Country", q.union("Greece", "China")),
    q.comparison_records("Games", ">", 4),
    q.prev_records(q.column_records("City", "London")),
    q.next_records(q.column_records("City", "Athens")),
    q.intersection(q.column_records("City", "London"), q.column_records("Country", "UK")),
    q.argmax_records("Year"),
    q.argmin_records("Total", q.column_records("Nation", "Fiji")),
    q.first_record(),
    q.last_record(q.column_records("Country", "Greece")),
    q.column_values("Year", q.column_records("Country", "Greece")),
    q.value_in_last_record("Episode"),
    q.most_common("City"),
    q.least_common("Lake"),
    q.compare_values("Year", "City", q.union("London", "Beijing")),
    q.max_(q.column_values("Year", q.column_records("Country", "Greece"))),
    q.count(q.column_records("City", "Athens")),
    q.avg(q.column_values("Games", q.all_records())),
    q.value_difference("Total", "Nation", "Fiji", "Tonga"),
    q.count_difference("Lake", "Lake Huron", "Lake Erie"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("query", EXAMPLES, ids=lambda query: type(query).__name__)
    def test_roundtrip_preserves_structure(self, query):
        assert from_sexpr(to_sexpr(query)) == query

    def test_roundtrip_is_stable(self):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        once = to_sexpr(query)
        twice = to_sexpr(from_sexpr(once))
        assert once == twice


class TestFormatting:
    def test_column_names_are_quoted(self):
        text = to_sexpr(q.column_values("Lives lost", q.all_records()))
        assert '"Lives lost"' in text

    def test_string_values_with_quotes_escape(self):
        query = q.column_records("Name", 'The "Great" One')
        assert from_sexpr(to_sexpr(query)) == query

    def test_numbers_serialised_without_quotes(self):
        text = to_sexpr(q.comparison_records("Games", ">", 4))
        assert " 4)" in text.replace("(value 4)", " 4)")


class TestParsingErrors:
    def test_empty_input(self):
        with pytest.raises(SexprError):
            from_sexpr("")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(SexprError):
            from_sexpr('(value "x"')

    def test_trailing_tokens(self):
        with pytest.raises(SexprError):
            from_sexpr('(all-records) extra')

    def test_unknown_operator(self):
        with pytest.raises(SexprError):
            from_sexpr('(teleport "x")')

    def test_wrong_arity(self):
        with pytest.raises(SexprError):
            from_sexpr('(column-records "City")')

    def test_unknown_aggregate(self):
        with pytest.raises(SexprError):
            from_sexpr('(aggregate median (column-values "A" (all-records)))')

    def test_unknown_comparison_operator(self):
        with pytest.raises(SexprError):
            from_sexpr('(comparison-records "A" ~ (value 3))')
