"""Live corpora: versioned lineage + delta index maintenance (ISSUE 8).

The acceptance bar: a delta-updated system is **bit-identical** to one
rebuilt from scratch on the final table set — for the retrieval index
(structural snapshot equality under any interleaving of add / discard /
update), for query answers after N random edits, and for the caches and
worker-pool registries that must retire superseded versions instead of
leaking them.  Plus the serving contract: an in-flight query started
before an ``update`` completes against its pinned snapshot, and the v2
wire reports the corpus version each answer was computed against.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ErrorCode, ReproEngine, classify_exception
from repro.api.envelope import QueryRequest, QueryResult
from repro.perf import BatchItem, DiskCache, run_churn_bench
from repro.perf.churn import churn_edit_script
from repro.retrieval.corpus_index import CorpusIndex
from repro.serving import AsyncServer
from repro.tables import (
    NameConflictError,
    Table,
    TableCatalog,
    TableIndex,
    UnknownTableError,
    diff_tables,
)
from repro.tables.catalog import CatalogError
from repro.tables.index import update_index


def _table(name, rows, columns=("City", "Country")):
    return Table(columns=list(columns), rows=rows, name=name)


@pytest.fixture
def games():
    return _table("games", [["Athens", "Greece"], ["Atlanta", "USA"]])


@pytest.fixture
def games_v2():
    return _table("games", [["Athens", "Greece"], ["Sydney", "Australia"]])


def _signature(response):
    return [
        (item.rank, item.answer, item.utterance, item.candidate.sexpr,
         item.candidate.score)
        for item in response.explained
    ]


class TestTableDiff:
    def test_identical_tables_diff_empty(self, games):
        clone = _table("renamed", [["Athens", "Greece"], ["Atlanta", "USA"]])
        diff = diff_tables(games, clone)  # names are identity-irrelevant
        assert diff.identical
        assert not diff.changed_columns and not diff.changed_rows

    def test_cell_edit_localises_to_its_column_and_row(self, games):
        edited = _table("games", [["Athens", "Greece"], ["Sydney", "USA"]])
        diff = diff_tables(games, edited)
        assert not diff.identical
        assert diff.changed_columns == ("City",)
        assert diff.added_columns == () and diff.removed_columns == ()
        assert diff.changed_rows == (1,)
        assert not diff.row_count_changed
        assert diff.unchanged_columns(edited) == ("Country",)

    def test_row_count_change_marks_all_common_columns(self, games):
        grown = _table(
            "games",
            [["Athens", "Greece"], ["Atlanta", "USA"], ["Sydney", "Australia"]],
        )
        diff = diff_tables(games, grown)
        assert diff.row_count_changed
        assert set(diff.changed_columns) == {"City", "Country"}
        assert 2 in diff.changed_rows
        assert diff.unchanged_columns(grown) == ()

    def test_column_add_and_remove(self, games):
        reshaped = Table(
            columns=["City", "Year"],
            rows=[["Athens", 1896], ["Atlanta", 1996]],
            name="games",
        )
        diff = diff_tables(games, reshaped)
        assert diff.added_columns == ("Year",)
        assert diff.removed_columns == ("Country",)


class TestNameConflict:
    def test_register_conflicting_content_is_coded(self, games, games_v2):
        catalog = TableCatalog()
        catalog.register(games)
        with pytest.raises(NameConflictError) as caught:
            catalog.register(games_v2)
        assert "update" in str(caught.value)  # points at the remedy
        assert (
            classify_exception(caught.value).code is ErrorCode.NAME_CONFLICT
        )

    def test_reregistering_identical_content_is_not_a_conflict(self, games):
        catalog = TableCatalog()
        ref = catalog.register(games)
        assert catalog.register(games).digest == ref.digest

    def test_engine_envelopes_the_conflict(self, games, games_v2):
        engine = ReproEngine(tables=[games])
        with pytest.raises(NameConflictError):
            engine.register(games_v2)


class TestCatalogLineage:
    def test_update_records_version_and_predecessor(self, games, games_v2):
        catalog = TableCatalog()
        old = catalog.register(games)
        new = catalog.update("games", games_v2)
        assert new.version == old.version + 1
        assert new.predecessor == old.digest
        assert new.name == "games"
        assert catalog.resolve("games").digest == new.digest

    def test_superseded_shard_leaves_refs_and_retires(self, games, games_v2):
        catalog = TableCatalog()
        old = catalog.register(games)
        catalog.update(old, games_v2)
        assert [ref.digest for ref in catalog.refs()] != [old.digest]
        # Nothing pinned: retirement is immediate.
        with pytest.raises(UnknownTableError):
            catalog.resolve(old.digest)
        stats = catalog.stats()
        assert stats["updates"] == 1 and stats["retired"] == 1
        assert stats["shards"] == 1 and stats["superseded"] == 0

    def test_pin_keeps_superseded_snapshot_answerable(self, games, games_v2):
        catalog = TableCatalog()
        old = catalog.register(games)
        pinned = catalog.pin(old)
        catalog.update(old, games_v2)
        # Still resolvable and queryable by digest while pinned.
        assert catalog.resolve(pinned.digest).digest == old.digest
        assert catalog.table(pinned.digest).record(1).cell("City").display() == "Atlanta"
        assert catalog.stats()["pins"] == 1
        catalog.unpin(pinned)
        with pytest.raises(UnknownTableError):
            catalog.resolve(old.digest)
        assert catalog.stats()["retired"] == 1

    def test_update_of_superseded_shard_is_an_error(self, games, games_v2):
        catalog = TableCatalog()
        old = catalog.pin(catalog.register(games))
        catalog.update(old, games_v2)
        with pytest.raises(CatalogError, match="superseded"):
            catalog.update(old.digest, _table("games", [["Oslo", "Norway"]]))

    def test_update_cannot_fold_two_live_shards(self, games, games_v2):
        catalog = TableCatalog()
        catalog.register(games)
        catalog.register(games_v2, name="other")
        with pytest.raises(CatalogError, match="fold"):
            catalog.update("games", games_v2)

    def test_noop_update_returns_old_ref(self, games):
        catalog = TableCatalog()
        old = catalog.register(games)
        clone = _table("games", [["Athens", "Greece"], ["Atlanta", "USA"]])
        assert catalog.update("games", clone) is old
        assert catalog.stats()["updates"] == 0

    def test_retire_listener_sees_each_retired_ref(self, games, games_v2):
        catalog = TableCatalog()
        old = catalog.register(games)
        retired = []
        catalog.on_retire(retired.append)
        catalog.update(old, games_v2)
        assert [ref.digest for ref in retired] == [old.digest]


class TestPruneLineage:
    def test_prunes_retired_ancestor_blobs(self, tmp_path, games, games_v2):
        catalog = TableCatalog(cache_dir=str(tmp_path))
        old = catalog.register(games)
        catalog.evict(old)  # persists the v1 blob to the tables namespace
        disk = catalog._disk
        assert disk.get_table(old.digest) is not None
        mid = catalog.update("games", games_v2)
        catalog.evict(mid)
        final = catalog.update("games", _table("games", [["Oslo", "Norway"]]))
        pruned = catalog.prune_lineage(keep=1)
        assert old.digest in pruned and mid.digest in pruned
        assert disk.get_table(old.digest) is None
        assert disk.get_table(mid.digest) is None
        # The live version is untouched and still answerable.
        assert catalog.resolve("games").digest == final.digest
        assert catalog.prune_lineage(keep=1) == []  # idempotent

    def test_keep_preserves_newest_ancestors(self, tmp_path, games, games_v2):
        catalog = TableCatalog(cache_dir=str(tmp_path))
        old = catalog.register(games)
        catalog.evict(old)
        mid = catalog.update("games", games_v2)
        catalog.evict(mid)
        catalog.update("games", _table("games", [["Oslo", "Norway"]]))
        pruned = catalog.prune_lineage(keep=2)
        assert pruned == [old.digest]
        assert catalog._disk.get_table(mid.digest) is not None

    def test_keep_must_be_positive(self, tmp_path, games):
        catalog = TableCatalog(cache_dir=str(tmp_path))
        catalog.register(games)
        with pytest.raises(CatalogError):
            catalog.prune_lineage(keep=0)

    def test_pinned_ancestor_is_never_pruned(self, tmp_path, games, games_v2):
        catalog = TableCatalog(cache_dir=str(tmp_path))
        old = catalog.pin(catalog.register(games))
        catalog.evict(old)
        catalog.update("games", games_v2)
        assert catalog.prune_lineage(keep=1) == []  # still resolvable
        catalog.unpin(old)


class TestTableIndexDelta:
    def test_delta_reuses_unchanged_columns(self, games):
        edited = _table("games", [["Athens", "Greece"], ["Sydney", "USA"]])
        old_index = TableIndex(games)
        diff = diff_tables(games, edited)
        new_index = TableIndex.from_delta(
            edited, old_index, diff.unchanged_columns(edited)
        )
        assert new_index.fingerprint == edited.fingerprint
        # The unchanged column is the same object; the changed one is not.
        assert new_index.columns["Country"] is old_index.columns["Country"]
        assert new_index.columns["City"] is not old_index.columns["City"]
        # Structurally identical to a full rebuild, column by column.
        full = TableIndex(edited)
        for column in edited.columns:
            ours, theirs = new_index.columns[column], full.columns[column]
            for slot in type(theirs).__slots__:
                assert getattr(ours, slot) == getattr(theirs, slot), (
                    column,
                    slot,
                )
        assert diff.unchanged_columns(edited) == ("Country",)

    def test_update_index_degrades_to_full_build_on_row_change(self, games):
        grown = _table(
            "games",
            [["Athens", "Greece"], ["Atlanta", "USA"], ["Oslo", "Norway"]],
        )
        TableIndex(games)  # ensure something exists to (not) reuse
        diff = diff_tables(games, grown)
        index = update_index(games.fingerprint, grown, diff)
        assert index.fingerprint == grown.fingerprint
        assert set(index.columns) == set(grown.columns)


# -- the CorpusIndex interleaving property (hypothesis) ----------------------

_WORDS = ("athens", "paris", "oslo", "quito", "cairo", "lima")


def _content_table(seed_rows):
    rows = [[f"{word} {number}", number] for word, number in seed_rows]
    return Table(columns=["Name", "Score"], rows=rows, name="t")


_rows = st.lists(
    st.tuples(st.sampled_from(_WORDS), st.integers(0, 5)),
    min_size=1,
    max_size=4,
)
_ops = st.lists(
    st.tuples(st.sampled_from(["add", "discard", "update"]), _rows,
              st.integers(0, 7)),
    min_size=1,
    max_size=12,
)


class TestCorpusIndexInterleavings:
    @settings(max_examples=60, deadline=None)
    @given(_ops)
    def test_any_interleaving_matches_fresh_build(self, ops):
        """add/discard/update in any order leave the index byte-identical
        to a fresh build over the final table set (including pruning of
        emptied posting keys — a stale empty key breaks snapshot
        equality)."""
        index = CorpusIndex()
        model = {}  # digest -> Table, the live set
        for kind, rows, pick in ops:
            table = _content_table(rows)
            digest = table.fingerprint.digest
            if kind == "add" or not model:
                index.add(table)
                model[digest] = table
                continue
            victim = sorted(model)[pick % len(model)]
            if kind == "discard":
                assert index.discard(victim)
                del model[victim]
            else:  # update
                index.update(victim, table)
                del model[victim]
                model[digest] = table
        fresh = CorpusIndex()
        for table in model.values():
            fresh.add(table)
        assert index.snapshot() == fresh.snapshot()

    def test_update_of_unknown_digest_degrades_to_add(self, games):
        index = CorpusIndex()
        index.update("f" * 64, games)
        fresh = CorpusIndex()
        fresh.add(games)
        assert index.snapshot() == fresh.snapshot()


# -- the end-to-end bit-identity property ------------------------------------


class TestDeltaEqualsRebuild:
    def test_n_random_edits_stay_bit_identical(
        self, olympics_table, medals_table, roster_table
    ):
        """The acceptance property: after N random edits, the
        delta-maintained catalog answers every bench question
        bit-identically to a from-scratch rebuild on the final tables."""
        tables = [olympics_table, medals_table, roster_table]
        questions = {
            "olympics": "which country hosted in 2004",
            "medals": "how many gold did Fiji win",
            "roster": "which club has the most players",
        }
        script = churn_edit_script(tables, edits=10, seed=42)
        delta = TableCatalog()
        delta.register_all(tables)
        for name, new_table in script:
            delta.update(name, new_table)
        final = {table.name: table for table in tables}
        for name, new_table in script:
            final[name] = new_table
        fresh = TableCatalog()
        fresh.register_all([final[t.name] for t in tables])
        for name, question in questions.items():
            assert _signature(delta.ask(question, name)) == _signature(
                fresh.ask(question, name)
            )
        # The retrieval index too, structurally.
        rebuilt = CorpusIndex()
        for table in tables:
            rebuilt.add(final[table.name])
        assert delta._index.snapshot() == rebuilt.snapshot()

    @pytest.mark.bench_smoke
    def test_churn_bench_reports_identity_and_delta_win(self):
        from repro.perf import bench_pairs_from_dataset

        pairs = bench_pairs_from_dataset(num_tables=3, questions_per_table=2)
        report = run_churn_bench(pairs, edits=6)
        assert report.identical_answers and report.identical_index
        assert report.edits == 6
        payload = report.to_payload()
        assert payload["schema"] == "repro-bench-churn-v1"
        assert payload["catalog"]["updates"] == 6
        json.dumps(payload)  # wire-safe


# -- pools retire superseded digests -----------------------------------------


class TestPoolRetirement:
    def test_thread_pool_drops_superseded_entries(self, games, games_v2):
        from repro.parser.candidates import SemanticParser
        from repro.perf import create_pool

        pool = create_pool("thread", SemanticParser(), max_workers=2)
        try:
            pool.parse_all([BatchItem(question="which city", table=games, k=3)])
            assert pool.registry_size() >= 1
            pool.retire([games.fingerprint.digest])
            assert pool.registry_size() == 0
            assert pool.stats()["retired"] == 1
            # Unrelated digests are untouched.
            pool.parse_all(
                [BatchItem(question="which city", table=games_v2, k=3)]
            )
            before = pool.registry_size()
            pool.retire(["0" * 64])
            assert pool.registry_size() == before
        finally:
            pool.close()

    def test_process_pool_unships_and_keeps_serving(self, games, games_v2):
        from repro.parser.candidates import SemanticParser
        from repro.perf import create_pool

        pool = create_pool("process", SemanticParser(), max_workers=1)
        try:
            pool.parse_all([BatchItem(question="which city", table=games, k=3)])
            digest = games.fingerprint.digest
            assert digest in pool._tables
            assert any(digest in worker.shipped for worker in pool._workers)
            pool.retire([digest])
            assert digest not in pool._tables
            assert all(
                digest not in worker.shipped for worker in pool._workers
            )
            # The pool still answers for live tables after the retire.
            results = pool.parse_all(
                [BatchItem(question="which city", table=games_v2, k=3)]
            )
            assert not isinstance(results[0][0], Exception)
        finally:
            pool.close()

    def test_engine_forwards_retirement_to_pools(self, games, games_v2):
        engine = ReproEngine(tables=[games])
        try:
            pool = engine.pool("thread")
            pool.parse_all([BatchItem(question="which city", table=games, k=3)])
            assert pool.registry_size() >= 1
            engine.update("games", games_v2)
            assert pool.registry_size() == 0
            assert pool.stats()["retired"] == 1
        finally:
            engine.close()


# -- serving: pinned in-flight queries + the corpus_version wire field -------


class TestServingChurn:
    def test_result_carries_acceptance_version(self, games):
        engine = ReproEngine(tables=[games])
        result = engine.query("which city", target="games")
        assert result.corpus_version == engine.catalog.version
        # Additive wire field: round-trips, excluded from canonical form.
        wire = json.loads(json.dumps(result.to_dict()))
        assert wire["corpus_version"] == result.corpus_version
        assert QueryResult.from_dict(wire) == result
        assert "corpus_version" not in result.canonical_dict()

    def test_inflight_query_completes_against_pinned_version(
        self, games, games_v2
    ):
        """An update landing after a request resolves (but before its
        batch executes) must not change that request's answer: the
        dispatcher pins the resolved snapshot, the answer reflects the
        pre-update content, and the superseded shard retires only after
        the batch drains its pin."""
        catalog = TableCatalog()
        old = catalog.register(games)
        accepted_version = catalog.version
        real_ask_many = catalog.ask_many
        seen_digests = []

        def updating_ask_many(items, **kwargs):
            # Fires on the dispatcher thread after resolve+pin: the
            # deterministic stand-in for a concurrent update racing an
            # in-flight batch.
            if catalog.resolve("games").digest == old.digest:
                catalog.update("games", games_v2)
            seen_digests.extend(ref.digest for _, ref in items)
            return real_ask_many(items, **kwargs)

        catalog.ask_many = updating_ask_many

        async def drive():
            async with AsyncServer(catalog, max_workers=2) as server:
                return await server.aquery(
                    QueryRequest(question="which city is in the USA", target="games")
                )

        result = asyncio.run(drive())
        assert result.ok
        # The batch executed against the pinned pre-update snapshot...
        assert seen_digests == [old.digest]
        assert result.shard.digest == old.digest
        assert result.corpus_version == accepted_version
        # ...whose content still had Atlanta/USA.
        assert any("Atlanta" in (c.utterance or "") or "Atlanta" in c.answer
                   for c in result.candidates) or result.answer
        # After the batch drained its pin the superseded shard retired.
        with pytest.raises(UnknownTableError):
            catalog.resolve(old.digest)
        assert catalog.resolve("games").digest == games_v2.fingerprint.digest

    def test_server_stats_mirror_churn_counters(self, games, games_v2):
        catalog = TableCatalog()
        catalog.register(games)

        async def drive():
            async with AsyncServer(catalog, max_workers=2) as server:
                await server.ask("which city", table="games")
                catalog.update("games", games_v2)
                await server.ask("which city", table="games")
                return server._stats_payload()

        payload = asyncio.run(drive())
        server_stats = payload["server"]
        assert server_stats["corpus_updates"] == 1
        assert server_stats["shards_retired"] == 1
        assert server_stats["pinned_requests"] == 2
        assert payload["catalog"]["version"] == catalog.version


class TestDiskCacheRemoval:
    def test_remove_table_unlinks_the_blob(self, tmp_path, games):
        disk = DiskCache(tmp_path)
        digest = games.fingerprint.digest
        disk.put_table(digest, games)
        assert disk.get_table(digest) is not None
        assert disk.remove_table(digest) is True
        assert disk.get_table(digest) is None
        assert disk.remove_table(digest) is False  # already gone

    def test_remove_is_namespace_scoped(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put("a", ("k",), 1)
        disk.put("b", ("k",), 2)
        assert disk.remove("a", ("k",)) is True
        assert disk.get("b", ("k",)) == 2
