"""Property-based tests (hypothesis) on the core data structures and invariants.

Strategies generate random small tables and random lambda DCS queries over
them; the properties checked are the ones the paper's machinery relies on:

* value parsing never crashes and cross-type equality is symmetric,
* query s-expressions round-trip,
* the executor agrees with the SQL translation on sqlite,
* the memoized executor is result-equivalent to the plain executor
  (answers, output cells and aggregate markers), cold and warm,
* the column-indexed executor is bit-identical to the row-scan executor,
  including on degenerate tables (NaN cells, empty strings, numeric
  strings, duplicate-only columns),
* the provenance chain is always ordered (``PO ⊆ PE ⊆ PC``),
* highlight levels only cover cells of columns used by the query,
* utterances exist and mention every column of the query.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import HighlightLevel, compute_provenance, highlight, utterance
from repro.dcs import (
    ExecutionCache,
    Executor,
    MemoizedExecutor,
    builder as q,
    execute,
    from_sexpr,
    to_sexpr,
)
from repro.dcs.errors import DCSError
from repro.sql import check_equivalence
from repro.tables import Table, parse_value, values_equal
from repro.tables.values import NumberValue, StringValue

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

NAMES = ["Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta", "Eta", "Theta"]
CATEGORIES = ["Red", "Blue", "Green"]


@st.composite
def tables(draw):
    """Small tables with a key column, a category column and two numeric columns."""
    num_rows = draw(st.integers(min_value=3, max_value=8))
    names = draw(
        st.lists(st.sampled_from(NAMES), min_size=num_rows, max_size=num_rows, unique=True)
    )
    categories = draw(
        st.lists(st.sampled_from(CATEGORIES), min_size=num_rows, max_size=num_rows)
    )
    scores = draw(
        st.lists(st.integers(min_value=0, max_value=50), min_size=num_rows, max_size=num_rows)
    )
    totals = draw(
        st.lists(st.integers(min_value=0, max_value=500), min_size=num_rows, max_size=num_rows)
    )
    rows = list(zip(names, categories, scores, totals))
    return Table(columns=["Name", "Category", "Score", "Total"], rows=rows, name="prop")


@st.composite
def queries(draw, table):
    """Random queries drawn from the operator inventory, grounded in ``table``."""
    name = draw(st.sampled_from([value.display() for value in table.column_values("Name")]))
    category = draw(
        st.sampled_from([value.display() for value in table.column_values("Category")])
    )
    threshold = draw(st.integers(min_value=0, max_value=50))
    numeric_column = draw(st.sampled_from(["Score", "Total"]))
    choice = draw(st.integers(min_value=0, max_value=9))
    if choice == 0:
        return q.column_values(numeric_column, q.column_records("Name", name))
    if choice == 1:
        return q.count(q.column_records("Category", category))
    if choice == 2:
        return q.column_values("Name", q.argmax_records(numeric_column))
    if choice == 3:
        return q.max_(q.column_values(numeric_column, q.all_records()))
    if choice == 4:
        return q.count(q.comparison_records(numeric_column, ">", threshold))
    if choice == 5:
        return q.most_common("Category")
    if choice == 6:
        return q.value_in_last_record("Name")
    if choice == 7:
        return q.column_values(
            "Name", q.next_records(q.column_records("Name", name))
        )
    if choice == 8:
        other = draw(
            st.sampled_from([value.display() for value in table.column_values("Name")])
        )
        return q.count_difference("Name", name, other)
    return q.column_values(
        "Name",
        q.intersection(
            q.column_records("Category", category),
            q.comparison_records(numeric_column, ">=", threshold),
        ),
    )


table_and_query = tables().flatmap(
    lambda table: st.tuples(st.just(table), queries(table))
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# ---------------------------------------------------------------------------
# value properties
# ---------------------------------------------------------------------------


class TestValueProperties:
    @given(st.text(alphabet=string.printable, max_size=30))
    @SETTINGS
    def test_parse_value_never_crashes(self, text):
        value = parse_value(text)
        assert value.display() is not None

    @given(
        st.one_of(
            st.integers(min_value=-10**6, max_value=10**6),
            st.text(alphabet=string.ascii_letters + string.digits + " ,.$%", max_size=20),
        ),
        st.one_of(
            st.integers(min_value=-10**6, max_value=10**6),
            st.text(alphabet=string.ascii_letters + string.digits + " ,.$%", max_size=20),
        ),
    )
    @SETTINGS
    def test_values_equal_is_symmetric(self, left_raw, right_raw):
        left, right = parse_value(left_raw), parse_value(right_raw)
        assert values_equal(left, right) == values_equal(right, left)

    @given(st.integers(min_value=-10**9, max_value=10**9))
    @SETTINGS
    def test_number_display_roundtrip(self, number):
        value = NumberValue(number)
        assert values_equal(parse_value(value.display()), value)

    @given(st.text(alphabet=string.ascii_letters + " ", min_size=1, max_size=20))
    @SETTINGS
    def test_string_normalisation_idempotent(self, text):
        value = StringValue(text)
        assert StringValue(value.normalized).normalized == value.normalized


# ---------------------------------------------------------------------------
# query properties
# ---------------------------------------------------------------------------


class TestQueryProperties:
    @given(table_and_query)
    @SETTINGS
    def test_sexpr_roundtrip(self, pair):
        _table, query = pair
        assert from_sexpr(to_sexpr(query)) == query

    @given(table_and_query)
    @SETTINGS
    def test_execution_is_deterministic(self, pair):
        table, query = pair
        try:
            first = execute(query, table).answer_strings()
            second = execute(query, table).answer_strings()
        except DCSError:
            return
        assert first == second

    @given(table_and_query)
    @SETTINGS
    def test_sql_translation_agrees_with_executor(self, pair):
        table, query = pair
        try:
            report = check_equivalence(query, table)
        except DCSError:
            return
        assert report.equivalent, report.detail


class TestMemoizedExecutionProperties:
    """The memoized executor is a drop-in for the plain one (ISSUE 1)."""

    @given(table_and_query)
    @SETTINGS
    def test_memoized_result_equivalent_to_plain(self, pair):
        table, query = pair
        try:
            plain = Executor(table).execute(query)
            plain_error = None
        except DCSError as error:
            plain, plain_error = None, error

        cache = ExecutionCache()
        for _round in ("cold", "warm"):
            try:
                memoized = MemoizedExecutor(table, cache=cache).execute(query)
            except DCSError as error:
                assert plain_error is not None, (
                    f"memoized raised on the {_round} round but plain succeeded: {error}"
                )
                assert type(error) is type(plain_error)
                assert str(error) == str(plain_error)
            else:
                assert plain_error is None, (
                    f"plain raised {plain_error} but memoized succeeded ({_round})"
                )
                # Full ExecutionResult equality: kind, record indices,
                # output cells, answer values and aggregate markers.
                assert memoized == plain

    @given(table_and_query)
    @SETTINGS
    def test_memoization_covers_every_subquery(self, pair):
        table, query = pair
        cache = ExecutionCache()
        try:
            MemoizedExecutor(table, cache=cache).execute(query)
        except DCSError:
            return
        cached_sexprs = {sexpr for _fingerprint, sexpr in cache._lru.keys()}
        for node in query.walk():
            assert to_sexpr(node) in cached_sexprs


@st.composite
def degenerate_tables(draw):
    """Tables stressing the index's corner cases: NaN numbers, empty and
    numeric strings, bare-year dates, and heavily duplicated values."""
    from repro.tables.values import DateValue, NumberValue

    num_rows = draw(st.integers(min_value=1, max_value=8))
    pool = [
        "x", "X ", "", "1896", "2,000", "$5", NumberValue(float("nan")),
        NumberValue(5.0), 1896, DateValue(1896), DateValue(2013, 6, 8),
        "June 8, 2013", 0, -3.5,
    ]
    rows = [
        [draw(st.sampled_from(pool)), draw(st.sampled_from(pool))]
        for _ in range(num_rows)
    ]
    return Table(columns=["A", "B"], rows=rows, name="degenerate")


@st.composite
def degenerate_queries(draw):
    from repro.tables.values import DateValue, NumberValue

    column = draw(st.sampled_from(["A", "B"]))
    target = draw(
        st.sampled_from(
            ["x", "", "1896", 1896, 5, NumberValue(float("nan")),
             DateValue(1896), DateValue(2013, 6, 8), "June 8, 2013"]
        )
    )
    op = draw(st.sampled_from([">", ">=", "<", "<=", "!="]))
    choice = draw(st.integers(min_value=0, max_value=4))
    if choice == 0:
        return q.column_records(column, target)
    if choice == 1:
        return q.comparison_records(column, op, target)
    if choice == 2:
        return q.argmax_records(column)
    if choice == 3:
        return q.most_common(column)
    return q.argmin_records(column, q.comparison_records(column, op, target))


class TestIndexedExecutionProperties:
    """The indexed executor is bit-identical to the row-scan path (ISSUE 2)."""

    @staticmethod
    def _assert_identical(table, query):
        try:
            scan = Executor(table, use_index=False).execute(query)
            scan_error = None
        except DCSError as error:
            scan, scan_error = None, error
        try:
            indexed = Executor(table, use_index=True).execute(query)
        except DCSError as error:
            assert scan_error is not None, (
                f"indexed raised but the scan path succeeded: {error}"
            )
            assert type(error) is type(scan_error)
            assert str(error) == str(scan_error)
        else:
            assert scan_error is None, (
                f"scan raised {scan_error} but indexed succeeded"
            )
            # Full ExecutionResult equality: kind, record indices, output
            # cells (order included), answer values and aggregate markers.
            assert indexed == scan

    @given(table_and_query)
    @SETTINGS
    def test_indexed_equals_scan_on_regular_tables(self, pair):
        table, query = pair
        self._assert_identical(table, query)

    @given(degenerate_tables().flatmap(
        lambda table: st.tuples(st.just(table), degenerate_queries())
    ))
    @SETTINGS
    def test_indexed_equals_scan_on_degenerate_tables(self, pair):
        table, query = pair
        self._assert_identical(table, query)

    @given(table_and_query)
    @SETTINGS
    def test_memoized_indexed_executor_matches_scan(self, pair):
        """The production stack — memoization over the index — still equals
        the plain scan executor."""
        table, query = pair
        cache = ExecutionCache()
        try:
            expected = Executor(table, use_index=False).execute(query)
        except DCSError:
            return
        assert MemoizedExecutor(table, cache=cache).execute(query) == expected


# ---------------------------------------------------------------------------
# provenance / explanation properties
# ---------------------------------------------------------------------------


class TestProvenanceProperties:
    @given(table_and_query)
    @SETTINGS
    def test_chain_is_always_ordered(self, pair):
        table, query = pair
        try:
            provenance = compute_provenance(query, table)
        except DCSError:
            return
        assert provenance.chain_is_ordered()

    @given(table_and_query)
    @SETTINGS
    def test_highlights_stay_inside_query_columns(self, pair):
        table, query = pair
        try:
            highlighted = highlight(query, table)
        except DCSError:
            return
        allowed = set(query.columns())
        for (row, column), level in highlighted.levels.items():
            if level != HighlightLevel.NONE:
                assert column in allowed

    @given(table_and_query)
    @SETTINGS
    def test_output_cells_are_subset_of_colored_or_framed(self, pair):
        table, query = pair
        try:
            highlighted = highlight(query, table)
        except DCSError:
            return
        for cell in highlighted.provenance.output.cells:
            assert highlighted.level(cell.row_index, cell.column) == HighlightLevel.COLORED


class TestUtteranceProperties:
    @given(table_and_query)
    @SETTINGS
    def test_every_query_has_an_utterance(self, pair):
        _table, query = pair
        text = utterance(query)
        assert isinstance(text, str) and len(text) > 0

    @given(table_and_query)
    @SETTINGS
    def test_utterance_mentions_every_column(self, pair):
        _table, query = pair
        text = utterance(query)
        for column in query.columns():
            assert column in text


# ---------------------------------------------------------------------------
# knowledge-base / index parity properties
# ---------------------------------------------------------------------------


_KB_PROBES = [
    "x", "", "1896", "2,000", "$5", 1896, 5, 0, -3.5,
    "June 8, 2013", "nope",
]


class TestKnowledgeBaseIndexParity:
    """ISSUE 3: ``KnowledgeBase.records_with_value`` obeys the same
    ``values_equal`` contract as the ``TableIndex`` equality lookups —
    every record whose cell matches is returned, cross-type bridges
    included, on tables with NaN/empty/duplicate/mixed-type cells."""

    @given(
        degenerate_tables().flatmap(
            lambda table: st.tuples(
                st.just(table),
                st.sampled_from(["A", "B"]),
                st.sampled_from(_KB_PROBES),
            )
        )
    )
    @SETTINGS
    def test_kb_matches_index_and_scan(self, example):
        from repro.tables import KnowledgeBase, table_index
        from repro.tables.values import NumberValue as NV

        table, column, raw = example
        probe = parse_value(raw)
        brute = frozenset(
            record.index
            for record in table.records
            if values_equal(record.value(column), probe)
        )
        kb = KnowledgeBase(table)
        assert kb.records_with_value(column, probe) == brute

        # The index contract: a superset of candidates that survives a
        # values_equal re-check down to exactly the brute-force set.
        candidates = table_index(table).column(column).equality_candidates(probe)
        rechecked = frozenset(
            row
            for row in candidates
            if values_equal(table.column_cells(column)[row].value, probe)
        )
        assert rechecked == brute

    @given(
        degenerate_tables().flatmap(
            lambda table: st.tuples(st.just(table), st.sampled_from(["A", "B"]))
        )
    )
    @SETTINGS
    def test_kb_nan_probe_matches_nothing(self, example):
        from repro.tables import KnowledgeBase
        from repro.tables.values import NumberValue as NV

        table, column = example
        assert KnowledgeBase(table).records_with_value(
            column, NV(float("nan"))
        ) == frozenset()


# ---------------------------------------------------------------------------
# SQL-oracle hardening: Difference / Aggregate / MostCommonValue
# ---------------------------------------------------------------------------


@st.composite
def difference_queries(draw, table):
    """Both :class:`Difference` flavours over random operand records."""
    names = [value.display() for value in table.column_values("Name")]
    left = draw(st.sampled_from(names))
    right = draw(st.sampled_from(names))
    if draw(st.booleans()):
        column = draw(st.sampled_from(["Score", "Total"]))
        return q.value_difference(column, "Name", left, right)
    return q.count_difference("Name", left, right)


@st.composite
def aggregate_queries(draw, table):
    """Every :class:`Aggregate` kind over random VALUES restrictions."""
    column = draw(st.sampled_from(["Score", "Total"]))
    category = draw(
        st.sampled_from([value.display() for value in table.column_values("Category")])
    )
    threshold = draw(st.integers(min_value=0, max_value=50))
    records = draw(
        st.sampled_from(
            [
                q.all_records(),
                q.column_records("Category", category),
                q.comparison_records(column, ">", threshold),
                q.comparison_records(column, "<=", threshold),
            ]
        )
    )
    kind = draw(st.sampled_from(["count", "max", "min", "sum", "avg"]))
    if kind == "count":
        return q.count(records)
    builder_fn = {"max": q.max_, "min": q.min_, "sum": q.sum_, "avg": q.avg}[kind]
    return builder_fn(q.column_values(column, records))


@st.composite
def most_common_queries(draw, table):
    """:class:`MostCommonValue`, unrestricted and over sub-VALUES."""
    column = draw(st.sampled_from(["Category", "Name"]))
    if draw(st.booleans()):
        return q.most_common(column)
    threshold = draw(st.integers(min_value=0, max_value=50))
    numeric = draw(st.sampled_from(["Score", "Total"]))
    return q.most_common(
        column,
        q.column_values(column, q.comparison_records(numeric, ">=", threshold)),
    )


def _oracle_pairs(strategy_fn):
    return tables().flatmap(
        lambda table: st.tuples(st.just(table), strategy_fn(table))
    )


class TestOracleHardeningProperties:
    """`to_sql` agrees with the DCS executor on the operators whose SQL
    shapes are the least direct: ``Difference`` (two correlated scalar
    subqueries), ``Aggregate`` (empty-set and NULL conventions differ
    between sqlite and the executor and must be papered over in the
    translation), and ``MostCommonValue`` (GROUP BY + ORDER BY with the
    executor's first-appearance tie-break)."""

    @given(_oracle_pairs(difference_queries))
    @SETTINGS
    def test_difference_matches_sql(self, pair):
        table, query = pair
        try:
            report = check_equivalence(query, table)
        except DCSError:
            return
        assert report.equivalent, report.detail

    @given(_oracle_pairs(aggregate_queries))
    @SETTINGS
    def test_aggregate_matches_sql(self, pair):
        table, query = pair
        try:
            report = check_equivalence(query, table)
        except DCSError:
            return
        assert report.equivalent, report.detail

    @given(_oracle_pairs(most_common_queries))
    @SETTINGS
    def test_most_common_matches_sql(self, pair):
        table, query = pair
        try:
            report = check_equivalence(query, table)
        except DCSError:
            return
        assert report.equivalent, report.detail
