"""Unit tests for the user-study harness (Tables 4-6 machinery)."""

import pytest

from repro.users import (
    ExplanationMode,
    StudyConfig,
    UserStudy,
    run_worktime_comparison,
    worker_pool,
)


@pytest.fixture(scope="module")
def study_inputs(request):
    from repro.dataset import DatasetConfig, build_dataset, split_by_tables
    from repro.parser import train_parser

    dataset = build_dataset(DatasetConfig(num_tables=10, questions_per_table=4, seed=31))
    split = split_by_tables(dataset, test_fraction=0.3, seed=1)
    parser = train_parser(
        split.train.training_examples()[:40], epochs=2, use_annotations=False, seed=0
    )
    examples = split.test.evaluation_examples()[:16]
    return parser, examples


class TestStudyRun:
    def test_trials_cover_all_questions(self, study_inputs):
        parser, examples = study_inputs
        study = UserStudy(parser, StudyConfig(k=7, questions_per_worker=8, seed=1))
        result = study.run(examples, worker_pool(2, seed=1))
        assert len(result.trials) == len(examples)
        assert result.distinct_questions == len({e.question for e in examples})

    def test_explanations_shown_at_most_k_per_question(self, study_inputs):
        parser, examples = study_inputs
        study = UserStudy(parser, StudyConfig(k=7, questions_per_worker=8, seed=2))
        result = study.run(examples, worker_pool(2, seed=2))
        assert all(len(trial.displayed_candidates) <= 7 for trial in result.trials)

    def test_correctness_ordering_matches_paper(self, study_inputs):
        """Parser <= hybrid <= bound, and users <= bound (Table 6 shape)."""
        parser, examples = study_inputs
        study = UserStudy(parser, StudyConfig(k=7, questions_per_worker=8, seed=3))
        result = study.run(examples, worker_pool(2, seed=3))
        assert result.parser_correctness <= result.correctness_bound + 1e-9
        assert result.user_correctness <= result.correctness_bound + 1e-9
        assert result.hybrid_correctness + 1e-9 >= result.user_correctness
        assert result.hybrid_correctness <= result.correctness_bound + 1e-9

    def test_success_rate_reasonably_high(self, study_inputs):
        parser, examples = study_inputs
        study = UserStudy(parser, StudyConfig(k=7, questions_per_worker=8, seed=4))
        result = study.run(examples, worker_pool(2, seed=4))
        assert result.question_success_rate > 0.5

    def test_worker_minutes_recorded_per_worker(self, study_inputs):
        parser, examples = study_inputs
        study = UserStudy(parser, StudyConfig(k=7, questions_per_worker=8, seed=5))
        result = study.run(examples, worker_pool(2, seed=5))
        minutes = result.worker_minutes()
        assert len(minutes) == 2
        assert all(value > 0 for value in minutes.values())

    def test_correct_counts_are_consistent(self, study_inputs):
        parser, examples = study_inputs
        study = UserStudy(parser, StudyConfig(k=7, questions_per_worker=8, seed=6))
        result = study.run(examples, worker_pool(2, seed=6))
        counts = result.correct_counts()
        assert counts["total"] == len(result.trials)
        assert counts["users"] <= counts["bound"]
        assert counts["hybrid"] >= counts["users"]

    def test_summary_keys(self, study_inputs):
        parser, examples = study_inputs
        study = UserStudy(parser, StudyConfig(k=7, questions_per_worker=4, seed=7))
        result = study.run(examples[:4], worker_pool(1, seed=7))
        assert {"success_rate", "parser_correctness", "hybrid_correctness"} <= set(result.summary())


class TestWorktimeComparison:
    def test_highlights_group_is_faster(self, study_inputs):
        parser, examples = study_inputs
        results = run_worktime_comparison(
            parser, examples, workers_per_group=2, questions_per_worker=8, seed=8
        )
        fast = results[ExplanationMode.UTTERANCES_AND_HIGHLIGHTS]
        slow = results[ExplanationMode.UTTERANCES_ONLY]
        fast_avg = sum(fast.worker_minutes().values()) / len(fast.worker_minutes())
        slow_avg = sum(slow.worker_minutes().values()) / len(slow.worker_minutes())
        assert fast_avg < slow_avg

    def test_both_groups_have_similar_correctness(self, study_inputs):
        parser, examples = study_inputs
        results = run_worktime_comparison(
            parser, examples, workers_per_group=2, questions_per_worker=8, seed=9
        )
        fast = results[ExplanationMode.UTTERANCES_AND_HIGHLIGHTS]
        slow = results[ExplanationMode.UTTERANCES_ONLY]
        assert abs(fast.user_correctness - slow.user_correctness) < 0.35
