"""Unit tests for feature extraction."""

import pytest

from repro.dcs import builder as q, execute
from repro.parser import Lexicon, extract_features


def features_for(question, table, query, with_result=True, with_analysis=True):
    analysis = Lexicon(table).analyze(question) if with_analysis else None
    result = execute(query, table) if with_result else None
    return extract_features(question, table, query, analysis=analysis, result=result)


class TestOverlapFeatures:
    def test_matching_query_has_higher_overlap(self, medals_table):
        question = "What was the total of Fiji?"
        good = q.column_values("Total", q.column_records("Nation", "Fiji"))
        bad = q.column_values("Silver", q.column_records("Nation", "Tonga"))
        good_features = features_for(question, medals_table, good)
        bad_features = features_for(question, medals_table, bad)
        assert good_features["overlap:recall"] > bad_features["overlap:recall"]

    def test_overlap_f1_between_zero_and_one(self, medals_table):
        features = features_for(
            "total of Fiji", medals_table,
            q.column_values("Total", q.column_records("Nation", "Fiji")),
        )
        assert 0.0 <= features.get("overlap:f1", 0.0) <= 1.0


class TestTriggerFeatures:
    def test_count_trigger_match(self, shipwrecks_table):
        query = q.count(q.column_records("Lake", "Lake Huron"))
        features = features_for("How many ships sank in Lake Huron?", shipwrecks_table, query)
        assert features.get("trigger:count:match") == 1.0

    def test_count_trigger_missing_operator(self, shipwrecks_table):
        query = q.column_values("Ship", q.column_records("Lake", "Lake Huron"))
        features = features_for("How many ships sank in Lake Huron?", shipwrecks_table, query)
        assert features.get("trigger:count:missing_op") == 1.0

    def test_spurious_difference_operator(self, medals_table):
        query = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        features = features_for("What was the total of Fiji?", medals_table, query)
        assert features.get("trigger:difference:spurious_op") == 1.0

    def test_max_trigger_match(self, medals_table):
        query = q.column_values("Nation", q.argmax_records("Gold"))
        features = features_for("Which nation had the highest gold?", medals_table, query)
        assert features.get("trigger:max:match") == 1.0

    def test_average_trigger(self, roster_table):
        query = q.avg(q.column_values("Games", q.all_records()))
        features = features_for("What is the average games played?", roster_table, query)
        assert features.get("trigger:avg:match") == 1.0


class TestColumnAndEntityFeatures:
    def test_mentioned_column_fraction(self, medals_table):
        query = q.column_values("Gold", q.column_records("Nation", "Fiji"))
        features = features_for("How much gold did Fiji win?", medals_table, query)
        assert features["columns:mentioned_fraction"] > 0.0

    def test_unused_entity_penalised(self, medals_table):
        question = "difference between Fiji and Tonga?"
        partial = q.column_values("Total", q.column_records("Nation", "Fiji"))
        features = features_for(question, medals_table, partial)
        assert features["entities:unused"] >= 1.0

    def test_all_entities_used(self, medals_table):
        question = "difference between Fiji and Tonga?"
        full = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        features = features_for(question, medals_table, full)
        assert features["entities:used_fraction"] == 1.0


class TestDenotationFeatures:
    def test_numeric_answer_for_how_many(self, shipwrecks_table):
        query = q.count(q.column_records("Lake", "Lake Huron"))
        features = features_for("How many ships sank in Lake Huron?", shipwrecks_table, query)
        assert features.get("answer:number_match") == 1.0

    def test_text_answer_for_how_many_is_mismatch(self, shipwrecks_table):
        query = q.column_values("Ship", q.column_records("Lake", "Lake Erie"))
        features = features_for("How many ships sank?", shipwrecks_table, query)
        assert features.get("answer:number_mismatch") == 1.0

    def test_singleton_answer_flag(self, medals_table):
        query = q.column_values("Total", q.column_records("Nation", "Fiji"))
        features = features_for("total of Fiji", medals_table, query)
        assert features.get("answer:singleton") == 1.0

    def test_no_result_no_denotation_features(self, medals_table):
        query = q.column_values("Total", q.column_records("Nation", "Fiji"))
        features = features_for("total of Fiji", medals_table, query, with_result=False)
        assert "answer:size" not in features


class TestStructureFeatures:
    def test_size_and_depth_present(self, medals_table):
        query = q.count(q.column_records("Nation", "Fiji"))
        features = features_for("how many?", medals_table, query)
        assert features["structure:size"] == 3.0
        assert features["structure:depth"] == 3.0

    def test_operator_counts(self, medals_table):
        query = q.count_difference("Nation", "Fiji", "Tonga")
        features = features_for("how many more", medals_table, query)
        assert features["op:Aggregate"] == 2.0
        assert features["op:Difference"] == 1.0
