"""Unit tests for the simulated crowd workers."""

import pytest

from repro.users import ExplanationMode, JudgmentParameters, SimulatedWorker, worker_pool


def judgment_accuracy(worker, truths, repetitions=300):
    correct = 0
    total = 0
    for _ in range(repetitions):
        decision = worker.review_question(truths)
        correct += decision.correct_judgments
        total += decision.judgment_count
    return correct / total


class TestJudgments:
    def test_with_explanations_judgments_are_mostly_right(self):
        worker = SimulatedWorker("w", seed=1)
        accuracy = judgment_accuracy(worker, [False, True, False, False, False, False, False])
        assert accuracy > 0.8

    def test_formal_only_judgments_are_poor(self):
        worker = SimulatedWorker("w", mode=ExplanationMode.FORMAL_ONLY, seed=2)
        accuracy = judgment_accuracy(worker, [False, True, False, False, False, False, False])
        assert accuracy < 0.65

    def test_utterance_only_slightly_worse_than_highlights(self):
        highlights = SimulatedWorker("a", seed=3)
        utterances = SimulatedWorker("b", mode=ExplanationMode.UTTERANCES_ONLY, seed=3)
        truths = [False, True, False, False, False, False, False]
        assert judgment_accuracy(highlights, truths) >= judgment_accuracy(utterances, truths) - 0.02

    def test_selection_prefers_correct_candidate(self):
        worker = SimulatedWorker("w", seed=4)
        truths = [False, False, True, False, False, False, False]
        picks = [worker.review_question(truths).selected_index for _ in range(300)]
        correct_picks = sum(1 for pick in picks if pick == 2)
        assert correct_picks / len(picks) > 0.6

    def test_none_marked_when_nothing_is_correct(self):
        worker = SimulatedWorker("w", seed=5)
        truths = [False] * 7
        nones = sum(
            1 for _ in range(300) if worker.review_question(truths).marked_none
        )
        assert nones / 300 > 0.6

    def test_perfect_worker(self):
        params = JudgmentParameters(recognise_correct=1.0, reject_incorrect=1.0)
        worker = SimulatedWorker("w", judgment=params, seed=6)
        truths = [False, False, False, True, False]
        for _ in range(20):
            decision = worker.review_question(truths)
            assert decision.selected_index == 3
            assert decision.correct_judgments == 5

    def test_decision_records_time(self):
        worker = SimulatedWorker("w", seed=7)
        decision = worker.review_question([True, False, False])
        assert decision.seconds > 0
        assert decision.judgment_count == 3


class TestWorkerPool:
    def test_pool_size_and_ids(self):
        pool = worker_pool(5, seed=1)
        assert len(pool) == 5
        assert len({worker.worker_id for worker in pool}) == 5

    def test_pool_workers_have_distinct_streams(self):
        pool = worker_pool(2, seed=2)
        truths = [False, True, False, False, False]
        first = [pool[0].review_question(truths).selected_index for _ in range(30)]
        second = [pool[1].review_question(truths).selected_index for _ in range(30)]
        assert first != second

    def test_pool_mode_propagates(self):
        pool = worker_pool(3, mode=ExplanationMode.UTTERANCES_ONLY, seed=3)
        assert all(worker.mode == ExplanationMode.UTTERANCES_ONLY for worker in pool)
