"""Unit tests for question-template generation (gold queries included)."""

import pytest

from repro.dataset import QuestionGenerator, generate_table, get_domain
from repro.dcs import execute, validate
from repro.dcs.errors import DCSError


@pytest.fixture
def medal_domain():
    return get_domain("medal_tally")


@pytest.fixture
def medal_table(medal_domain):
    return generate_table(medal_domain, seed=5, num_rows=10)


class TestGeneration:
    def test_generates_requested_count(self, medal_table, medal_domain):
        generator = QuestionGenerator(seed=1)
        questions = generator.generate(medal_table, medal_domain, 8)
        assert len(questions) == 8

    def test_questions_are_distinct(self, medal_table, medal_domain):
        generator = QuestionGenerator(seed=2)
        questions = generator.generate(medal_table, medal_domain, 10)
        texts = [item.question for item in questions]
        assert len(texts) == len(set(texts))

    def test_gold_queries_validate_against_the_table(self, medal_table, medal_domain):
        generator = QuestionGenerator(seed=3)
        for item in generator.generate(medal_table, medal_domain, 10):
            assert validate(item.query, medal_table).ok, item.question

    def test_gold_queries_execute(self, medal_table, medal_domain):
        generator = QuestionGenerator(seed=4)
        for item in generator.generate(medal_table, medal_domain, 10):
            try:
                execute(item.query, medal_table)
            except DCSError as error:  # pragma: no cover - failure reporting
                pytest.fail(f"{item.question}: {error}")

    def test_template_diversity(self, medal_table, medal_domain):
        generator = QuestionGenerator(seed=5)
        questions = generator.generate(medal_table, medal_domain, 12)
        assert len({item.question for item in questions}) == 12
        assert len({item.template for item in questions}) >= 6

    def test_questions_end_with_question_mark(self, medal_table, medal_domain):
        generator = QuestionGenerator(seed=6)
        for item in generator.generate(medal_table, medal_domain, 8):
            assert item.question.endswith("?")

    def test_deterministic_for_seed(self, medal_table, medal_domain):
        first = QuestionGenerator(seed=7).generate(medal_table, medal_domain, 6)
        second = QuestionGenerator(seed=7).generate(medal_table, medal_domain, 6)
        assert [item.question for item in first] == [item.question for item in second]

    def test_template_names_exposed(self):
        generator = QuestionGenerator()
        assert "difference_values" in generator.template_names
        assert len(generator.template_names) >= 15


class TestParaphraseRate:
    def test_zero_rate_uses_header_names(self, medal_table, medal_domain):
        generator = QuestionGenerator(seed=8, paraphrase_rate=0.0)
        questions = generator.generate(medal_table, medal_domain, 12)
        text = " ".join(item.question.lower() for item in questions)
        assert "medal count" not in text

    def test_high_rate_uses_paraphrases_somewhere(self, medal_domain):
        generator = QuestionGenerator(seed=9, paraphrase_rate=1.0)
        table = generate_table(medal_domain, seed=10, num_rows=10)
        questions = generator.generate(table, medal_domain, 16)
        text = " ".join(item.question.lower() for item in questions)
        assert any(
            phrase in text
            for phrase in ("gold medals", "silver medals", "total medals", "medal count",
                           "position", "place", "country", "team")
        )


class TestAllDomains:
    @pytest.mark.parametrize("domain_name", [domain.name for domain in __import__("repro.dataset", fromlist=["DOMAINS"]).DOMAINS])
    def test_every_domain_supports_question_generation(self, domain_name):
        domain = get_domain(domain_name)
        table = generate_table(domain, seed=13)
        generator = QuestionGenerator(seed=13)
        questions = generator.generate(table, domain, 5)
        assert len(questions) >= 3
        for item in questions:
            assert validate(item.query, table).ok
