"""Unit tests for parser evaluation: equivalence, correctness, MRR, bounds."""

import pytest

from repro.dcs import builder as q, execute
from repro.parser import (
    EvaluationExample,
    SemanticParser,
    evaluate_parser,
    find_correct_indices,
    perturbed_tables,
    queries_equivalent,
)


class TestPerturbedTables:
    def test_same_shape_and_content(self, medals_table):
        copies = perturbed_tables(medals_table, count=2, seed=1)
        assert len(copies) == 2
        for copy in copies:
            assert copy.num_rows == medals_table.num_rows
            assert copy.columns == medals_table.columns
            nations = {value.display() for value in copy.column_values("Nation")}
            assert nations == {value.display() for value in medals_table.column_values("Nation")}

    def test_deterministic_for_seed(self, medals_table):
        first = perturbed_tables(medals_table, count=1, seed=9)[0]
        second = perturbed_tables(medals_table, count=1, seed=9)[0]
        assert first.to_dicts() == second.to_dicts()

    def test_numeric_columns_are_shuffled(self, medals_table):
        copy = perturbed_tables(medals_table, count=1, seed=3)[0]
        original = [value.display() for value in medals_table.column_values("Total")]
        shuffled = [value.display() for value in copy.column_values("Total")]
        assert sorted(original) == sorted(shuffled)


class TestQueryEquivalence:
    def test_identical_queries_equivalent(self, medals_table):
        gold = q.column_values("Total", q.column_records("Nation", "Fiji"))
        assert queries_equivalent(gold, gold, medals_table)

    def test_spurious_query_detected(self, seasons_table):
        """The Figure 8 case: same answer on this table, different query."""
        gold = q.max_(q.column_values("Year", q.column_records("League", "USL A-League")))
        spurious = q.min_(q.column_values("Year", q.argmax_records("Attendance")))
        gold_answer = execute(gold, seasons_table).answer_strings()
        spurious_answer = execute(spurious, seasons_table).answer_strings()
        # Both may or may not coincide on the original table; equivalence must
        # look past the single-table answer either way.
        assert not queries_equivalent(spurious, gold, seasons_table, perturbations=4)

    def test_semantically_identical_but_syntactically_different(self, medals_table):
        gold = q.value_difference("Total", "Nation", "Fiji", "Tonga")
        reversed_operands = q.value_difference("Total", "Nation", "Tonga", "Fiji")
        assert queries_equivalent(reversed_operands, gold, medals_table)

    def test_wrong_column_projection_not_equivalent(self, medals_table):
        gold = q.column_values("Total", q.column_records("Nation", "Fiji"))
        wrong = q.column_values("Silver", q.column_records("Nation", "Fiji"))
        assert not queries_equivalent(wrong, gold, medals_table)

    def test_failing_candidate_not_equivalent(self, medals_table):
        gold = q.max_(q.column_values("Total", q.all_records()))
        failing = q.max_(q.column_values("Total", q.column_records("Nation", "Atlantis")))
        assert not queries_equivalent(failing, gold, medals_table)


class TestMetrics:
    @pytest.fixture
    def example(self, medals_table):
        gold = q.column_values("Total", q.column_records("Nation", "Fiji"))
        return EvaluationExample(
            question="What was the Total of Fiji?",
            table=medals_table,
            gold_query=gold,
            gold_answer=tuple(execute(gold, medals_table).answer_values()),
        )

    def test_find_correct_indices(self, example):
        parser = SemanticParser()
        parse = parser.parse(example.question, example.table)
        indices = find_correct_indices(parse.candidates, example)
        assert indices
        assert all(0 <= index < len(parse.candidates) for index in indices)

    def test_evaluate_parser_produces_consistent_report(self, example):
        parser = SemanticParser()
        report = evaluate_parser(parser, [example], k=7)
        assert report.total == 1
        assert 0.0 <= report.correctness <= 1.0
        assert report.correctness <= report.answer_accuracy + 1e-9
        assert report.correctness <= report.correctness_bound + 1e-9
        assert 0.0 <= report.mrr <= 1.0

    def test_bound_is_monotone_in_k(self, example, medals_table):
        gold2 = q.count(q.column_records("Nation", "Fiji"))
        example2 = EvaluationExample(
            question="How many rows list Fiji?",
            table=medals_table,
            gold_query=gold2,
            gold_answer=tuple(execute(gold2, medals_table).answer_values()),
        )
        parser = SemanticParser()
        report = evaluate_parser(parser, [example, example2], k=7)
        assert report.bound_at(1) <= report.bound_at(7) <= report.bound_at(50)

    def test_summary_keys(self, example):
        parser = SemanticParser()
        report = evaluate_parser(parser, [example], k=7)
        summary = report.summary()
        assert {"examples", "correctness", "answer_accuracy", "mrr", "bound@7"} <= set(summary)

    def test_oracle_weights_reach_full_correctness(self, example):
        parser = SemanticParser()
        parser.model.weights = {
            "overlap:recall": 4.0,
            "overlap:precision": 2.0,
            "entities:unused": -3.0,
            "trigger:difference:spurious_op": -3.0,
            "trigger:count:spurious_op": -3.0,
            "trigger:max:spurious_op": -2.0,
            "trigger:min:spurious_op": -2.0,
            "structure:size": -0.2,
        }
        report = evaluate_parser(parser, [example], k=7)
        assert report.correctness == 1.0
