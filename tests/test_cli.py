"""Unit tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_argument_parser, main
from repro.tables import table_to_csv


@pytest.fixture
def table_csv(tmp_path, olympics_table):
    path = tmp_path / "olympics.csv"
    table_to_csv(olympics_table, path)
    return path


class TestArgumentParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_argument_parser().parse_args([])

    def test_explain_arguments(self):
        args = build_argument_parser().parse_args(
            ["explain", "--table", "t.csv", "--query", "(all-records)"]
        )
        assert args.command == "explain"
        assert args.table == "t.csv"


class TestExplainCommand:
    def test_explains_a_query(self, table_csv):
        out = io.StringIO()
        code = main(
            [
                "explain",
                "--table", str(table_csv),
                "--query", '(aggregate max (column-values "Year" (column-records "Country" (value "Greece"))))',
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "maximum of values in column Year" in text
        assert "answer: 2004" in text

    def test_html_output(self, table_csv):
        out = io.StringIO()
        main(
            ["explain", "--table", str(table_csv), "--query", '(most-common argmax "City" (column-values "City" (all-records)))', "--html"],
            out=out,
        )
        assert out.getvalue().startswith("<table")


class TestAskCommand:
    def test_ask_prints_candidates(self, table_csv):
        out = io.StringIO()
        code = main(
            ["ask", "--table", str(table_csv), "--question", "When did Greece host the games?", "--k", "3"],
            out=out,
        )
        assert code == 0
        assert "candidate 1" in out.getvalue()

    def test_missing_table_file_is_one_coded_line(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["ask", "--table", str(tmp_path / "nope.csv"), "--question", "x"],
            out=out,
        )
        assert code == 1
        text = out.getvalue()
        assert text.startswith("error[")
        assert "Traceback" not in text
        assert len(text.strip().splitlines()) == 1

    def test_ask_json_emits_v2_envelope(self, table_csv):
        out = io.StringIO()
        code = main(
            ["ask", "--table", str(table_csv), "--question",
             "When did Greece host the games?", "--k", "3", "--json"],
            out=out,
        )
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["v"] == 2
        assert payload["ok"] is True
        assert payload["routing"]["mode"] == "table"
        assert payload["candidates"]

    def test_ask_with_saved_model(self, table_csv, tmp_path):
        from repro.parser import LogLinearModel

        model = LogLinearModel()
        model.weights = {"overlap:recall": 2.0}
        model_path = tmp_path / "model.json"
        model.save(model_path)
        out = io.StringIO()
        code = main(
            ["ask", "--table", str(table_csv), "--question", "When did Greece host?",
             "--model", str(model_path)],
            out=out,
        )
        assert code == 0


class TestDatasetCommand:
    def test_writes_tables_and_questions(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["dataset", "--output", str(tmp_path / "corpus"), "--tables", "4", "--questions", "3"],
            out=out,
        )
        assert code == 0
        questions = (tmp_path / "corpus" / "questions.jsonl").read_text().splitlines()
        assert len(questions) >= 6
        record = json.loads(questions[0])
        assert {"id", "question", "query", "answer"} <= set(record)
        tables = list((tmp_path / "corpus" / "tables").glob("*.json"))
        assert len(tables) == 4


class TestStudyCommand:
    def test_study_runs_end_to_end(self):
        out = io.StringIO()
        code = main(
            ["study", "--tables", "8", "--questions", "3", "--k", "5", "--epochs", "1"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "hybrid correctness" in text
        assert "correctness bound" in text


class TestBenchParseCommand:
    def test_bench_parse_prints_modes_and_writes_artifact(self, tmp_path):
        out = io.StringIO()
        artifact = tmp_path / "BENCH_parse.json"
        code = main(
            ["bench-parse", "--tables", "2", "--questions", "2", "--repeats", "2",
             "--workers", "2", "--output", str(artifact)],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        for mode in ("sequential", "memoized", "indexed", "batched", "process"):
            assert mode in text
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "repro-bench-parse-v3"
        assert set(payload["modes"]) == {
            "sequential", "memoized", "indexed", "batched", "process"
        }
        assert payload["questions"] == 8  # 2 tables x 2 questions x 2 repeats
        for mode_payload in payload["modes"].values():
            assert mode_payload["questions"] == 8
            assert "indexes" in mode_payload["cache_stats"]
            assert "disk" in mode_payload["cache_stats"]
        # Timing fields live segregated (and quantized) under "timings".
        assert set(payload["timings"]["modes"]) == set(payload["modes"])
        for timing in payload["timings"]["modes"].values():
            assert timing["total_seconds"] > 0
            assert set(timing["per_question"]) == {"min_ms", "p50_ms", "max_ms"}

    def test_bench_parse_thread_backend_only(self, tmp_path):
        out = io.StringIO()
        artifact = tmp_path / "BENCH_parse.json"
        code = main(
            ["bench-parse", "--tables", "2", "--questions", "1", "--repeats", "1",
             "--workers", "2", "--backend", "thread", "--output", str(artifact)],
            out=out,
        )
        assert code == 0
        payload = json.loads(artifact.read_text())
        assert set(payload["modes"]) == {"sequential", "memoized", "indexed", "batched"}

    def test_bench_parse_disk_cache_flag_creates_store(self, tmp_path):
        out = io.StringIO()
        store = tmp_path / "cache"
        code = main(
            ["bench-parse", "--tables", "2", "--questions", "1", "--repeats", "1",
             "--workers", "1", "--backend", "thread", "--disk-cache", str(store)],
            out=out,
        )
        assert code == 0
        # The indexed/batched modes persisted their candidate lists.
        assert list(store.rglob("*.pkl"))

    def test_bench_parse_without_output_file(self):
        out = io.StringIO()
        code = main(
            ["bench-parse", "--tables", "2", "--questions", "1", "--repeats", "1",
             "--workers", "1", "--backend", "thread"],
            out=out,
        )
        assert code == 0
        assert "speedup" in out.getvalue()


@pytest.fixture
def corpus_dir(tmp_path):
    """A tiny `repro dataset`-layout corpus for catalog/serve tests."""
    out = io.StringIO()
    code = main(
        ["dataset", "--output", str(tmp_path / "corpus"), "--tables", "3",
         "--questions", "2", "--seed", "11"],
        out=out,
    )
    assert code == 0
    return tmp_path / "corpus"


class TestCatalogCommand:
    def test_lists_shards(self, corpus_dir):
        out = io.StringIO()
        code = main(["catalog", "--corpus", str(corpus_dir)], out=out)
        text = out.getvalue()
        assert code == 0
        assert "digest" in text and "hot" in text
        assert text.count("hot") >= 3  # header + >= 3 shards

    def test_routes_a_question_corpus_wide(self, corpus_dir):
        out = io.StringIO()
        code = main(
            ["catalog", "--corpus", str(corpus_dir), "--question",
             "which entry is first", "--any"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        payload = json.loads(text[text.index("{"):])
        # The catalog command now prints the typed v2 QueryResult envelope.
        assert payload["v"] == 2
        assert payload["ok"] is True
        assert payload["routing"]["mode"] == "any"
        assert len(payload["ranked"]) >= 3

    def test_loads_flat_csv_directory(self, tmp_path, olympics_table):
        flat = tmp_path / "flat"
        flat.mkdir()
        table_to_csv(olympics_table, flat / "olympics.csv")
        out = io.StringIO()
        code = main(
            ["catalog", "--corpus", str(flat), "--question",
             "which country hosted in 2004", "--table", "olympics"],
            out=out,
        )
        assert code == 0
        payload = json.loads(out.getvalue()[out.getvalue().index("{"):])
        assert payload["answer"] == ["Greece"]
        assert payload["routing"]["mode"] == "table"
        assert payload["shard"]["name"] == "olympics"

    def test_empty_corpus_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        out = io.StringIO()
        assert main(["catalog", "--corpus", str(empty)], out=out) == 1

    def test_unknown_table_exits_nonzero_with_coded_line(self, corpus_dir):
        """A CatalogError mid-run: one coded line, non-zero exit, no
        traceback (the error-taxonomy unification in cli.main)."""
        out = io.StringIO()
        code = main(
            ["catalog", "--corpus", str(corpus_dir), "--question", "x",
             "--table", "atlantis"],
            out=out,
        )
        assert code == 1
        text = out.getvalue()
        payload = json.loads(text[text.index("{"):])
        assert payload["ok"] is False
        assert payload["error"]["code"] == "UNKNOWN_TABLE"
        assert "Traceback" not in text

    def test_no_prune_broadcasts(self, tmp_path, olympics_table):
        flat = tmp_path / "flat"
        flat.mkdir()
        table_to_csv(olympics_table, flat / "olympics.csv")
        out = io.StringIO()
        code = main(
            ["catalog", "--corpus", str(flat), "--question",
             "which country hosted in 2004", "--any", "--no-prune"],
            out=out,
        )
        assert code == 0
        payload = json.loads(out.getvalue()[out.getvalue().index("{"):])
        assert payload["routing"]["pruned"] is False
        assert payload["answer"] == ["Greece"]


class TestRouteCommand:
    def test_route_inspects_the_decision(self, corpus_dir):
        out = io.StringIO()
        code = main(
            ["route", "--corpus", str(corpus_dir), "--question",
             "which country hosted in 2004"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "routing: parse" in text
        assert "decision" in text and "score" in text

    def test_route_json_payload(self, corpus_dir):
        out = io.StringIO()
        code = main(
            ["route", "--corpus", str(corpus_dir), "--question",
             "which country hosted in 2004", "--json"],
            out=out,
        )
        assert code == 0
        payload = json.loads(out.getvalue())
        assert set(payload) == {
            "question", "fallback", "candidates", "pruned", "scored"
        }
        assert len(payload["scored"]) == 3
        assert len(payload["candidates"]) + len(payload["pruned"]) == 3

    def test_route_empty_corpus_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        out = io.StringIO()
        assert main(
            ["route", "--corpus", str(empty), "--question", "x"], out=out
        ) == 1


class TestServeCommand:
    def test_self_test_runs_concurrent_sessions(self, corpus_dir):
        out = io.StringIO()
        code = main(
            ["serve", "--corpus", str(corpus_dir), "--self-test", "4",
             "--workers", "2"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "concurrent sessions answered" in text
        assert "dispatcher:" in text

    def test_self_test_emits_schema_valid_results(self, corpus_dir, tmp_path):
        from repro.api import schema as wire_schema

        emitted = tmp_path / "results.jsonl"
        out = io.StringIO()
        code = main(
            ["serve", "--corpus", str(corpus_dir), "--self-test", "2",
             "--workers", "2", "--emit-results", str(emitted)],
            out=out,
        )
        assert code == 0
        lines = emitted.read_text(encoding="utf-8").splitlines()
        assert lines
        schema = wire_schema.load_schema("query_result.v2.json")
        assert wire_schema.validate_lines(lines, schema) == len(lines)

    def test_self_test_without_questions_fails(self, tmp_path, olympics_table):
        flat = tmp_path / "flat"
        flat.mkdir()
        table_to_csv(olympics_table, flat / "olympics.csv")
        out = io.StringIO()
        code = main(["serve", "--corpus", str(flat), "--self-test", "2"], out=out)
        assert code == 1
        assert "questions.jsonl" in out.getvalue()


class TestBenchServeCommand:
    def test_bench_serve_writes_artifact(self, tmp_path):
        out = io.StringIO()
        artifact = tmp_path / "BENCH_serve.json"
        code = main(
            ["bench-serve", "--tables", "2", "--questions", "2", "--repeats", "1",
             "--sessions", "2", "--workers", "2", "--output", str(artifact)],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "sequential" in text and "async" in text
        assert "route:" in text and "broadcast" in text and "pruned" in text
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "repro-bench-serve-v3"
        assert payload["modes"]["async"]["identical"] is True
        assert payload["route"]["top_answers_match"] is True
        assert payload["timings"]["modes"]["async"]["total_seconds"] > 0
        latency = payload["timings"]["modes"]["async"]["latency"]
        assert set(latency) == {"p50_ms", "p95_ms", "p99_ms"}
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]

    def test_bench_serve_no_route_skips_route_mode(self, tmp_path):
        out = io.StringIO()
        artifact = tmp_path / "BENCH_serve.json"
        code = main(
            ["bench-serve", "--tables", "2", "--questions", "2", "--repeats", "1",
             "--sessions", "2", "--workers", "2", "--no-route",
             "--output", str(artifact)],
            out=out,
        )
        assert code == 0
        assert "route:" not in out.getvalue()
        payload = json.loads(artifact.read_text())
        assert "route" not in payload
