"""Unit tests for static query validation against a table."""

import pytest

from repro.dcs import builder as q, validate
from repro.tables import Table


class TestColumnExistence:
    def test_valid_query_passes(self, olympics_table):
        query = q.column_values("Year", q.column_records("Country", "Greece"))
        assert validate(query, olympics_table).ok

    def test_unknown_column_reported(self, olympics_table):
        query = q.column_values("Continent", q.all_records())
        report = validate(query, olympics_table)
        assert not report.ok
        assert any("Continent" in str(issue) for issue in report.issues)

    def test_unknown_column_in_nested_query(self, olympics_table):
        query = q.count(q.column_records("Continent", "Europe"))
        assert not validate(query, olympics_table).ok


class TestTypeChecks:
    def test_sum_over_text_column_flagged(self, olympics_table):
        query = q.sum_(q.column_values("City", q.all_records()))
        assert not validate(query, olympics_table).ok

    def test_sum_over_numeric_column_ok(self, medals_table):
        query = q.sum_(q.column_values("Gold", q.all_records()))
        assert validate(query, medals_table).ok

    def test_superlative_over_text_column_flagged(self, olympics_table):
        query = q.argmax_records("City")
        assert not validate(query, olympics_table).ok

    def test_comparison_over_text_column_flagged(self, olympics_table):
        query = q.comparison_records("City", ">", 3)
        assert not validate(query, olympics_table).ok

    def test_compare_values_key_must_be_comparable(self, olympics_table):
        query = q.compare_values("City", "Country", q.union("Greece", "China"))
        assert not validate(query, olympics_table).ok

    def test_difference_over_text_column_flagged(self, olympics_table):
        query = q.value_difference("City", "Country", "Greece", "China")
        assert not validate(query, olympics_table).ok

    def test_count_difference_on_text_column_ok(self, olympics_table):
        query = q.count_difference("Country", "Greece", "China")
        assert validate(query, olympics_table).ok


class TestEmptyTable:
    def test_empty_table_flagged(self):
        table = Table(columns=["A"], rows=[])
        report = validate(q.count(q.all_records()), table)
        assert not report.ok

    def test_report_is_truthy_when_ok(self, olympics_table):
        assert bool(validate(q.count(q.all_records()), olympics_table))
