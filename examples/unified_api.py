"""The unified query API: one engine, one envelope, every surface.

Run with::

    python examples/unified_api.py

The script registers two web tables with a :class:`repro.api.ReproEngine`
and asks the same questions three ways — directly, through a
:class:`repro.api.ReproClient`, and as a batch — showing that every
surface speaks the same typed ``QueryRequest``/``QueryResult`` envelope:
ranked candidates with NL utterances, the routing decision, the coded
error taxonomy, and the lossless JSON codec the TCP protocol ships
(``repro serve`` exposes the identical envelope over a socket; connect
with ``ReproClient.connect(host, port)``).
"""

from __future__ import annotations

import json

from repro.api import ErrorCode, QueryRequest, QueryResult, ReproClient, ReproEngine
from repro.tables import Table


def main() -> None:
    olympics = Table(
        columns=["Year", "Country", "City"],
        rows=[
            [1896, "Greece", "Athens"],
            [1900, "France", "Paris"],
            [2004, "Greece", "Athens"],
            [2008, "China", "Beijing"],
        ],
        name="olympics",
    )
    medals = Table(
        columns=["Rank", "Nation", "Gold"],
        rows=[[1, "New Caledonia", 120], [2, "Tahiti", 60], [4, "Fiji", 33]],
        name="medals",
    )

    # 1. One engine over a content-addressed catalog of tables.
    engine = ReproEngine(tables=[olympics, medals])

    # 2. An explicit-target query: ranked candidates with utterances.
    result = engine.query("which country hosted in 2004", target="olympics", k=3)
    print("answer     :", ", ".join(result.answer))
    print("utterance  :", result.top.utterance)
    print("candidates :", len(result.candidates))

    # 3. A corpus-wide query: retrieval routes it to the right shard.
    anywhere = engine.query("how many gold did Fiji win")
    print()
    print("routed to  :", anywhere.shard.name)
    print(
        "routing    :",
        f"parsed {anywhere.routing.shards_parsed}, "
        f"pruned {anywhere.routing.shards_pruned} "
        f"(fallback={anywhere.routing.fallback})",
    )

    # 4. Failures are coded envelopes, not stringly exceptions.
    missing = engine.query("anything", target="atlantis")
    print()
    print("error code :", missing.error.code.value)
    assert missing.error_code is ErrorCode.UNKNOWN_TABLE

    # 5. The client surface is the same in-process and over TCP
    #    (ReproClient.connect("127.0.0.1", 8765) against `repro serve`).
    with ReproClient.in_process(engine) as client:
        batch = client.query_many(
            [
                QueryRequest(question="which country hosted in 2004", target="olympics"),
                QueryRequest(question="how many gold did Fiji win"),
            ]
        )
        print()
        print("batch      :", [list(item.answer) for item in batch])

    # 6. The envelope round-trips losslessly through JSON — this exact
    #    shape (schemas/query_result.v2.json) is what the wire carries.
    wire = json.dumps(result.to_dict())
    assert QueryResult.from_dict(json.loads(wire)) == result
    print("wire bytes :", len(wire))


if __name__ == "__main__":
    main()
