"""Interactive deployment: ask questions, inspect explanations, pick a query.

Run with::

    python examples/interactive_deployment.py            # scripted user
    python examples/interactive_deployment.py --human    # choose candidates yourself

The script trains a small semantic parser on a synthetic corpus (weak,
answer-only supervision — the paper's baseline), then deploys it on a few
held-out questions.  For each question it shows the top-k candidate queries
with their utterances and highlights.  In ``--human`` mode you pick the
correct candidate yourself (the paper's AMT task); otherwise a simulated
worker does it.  At the end it prints the Table 6 scenario comparison for
the questions answered.
"""

from __future__ import annotations

import argparse
import sys

from repro.dataset import DatasetConfig, build_dataset, split_by_tables
from repro.interface import InteractiveDeployment, NLInterface
from repro.parser import train_parser
from repro.users import worker_pool

K = 5


def human_choice(displayed) -> int | None:
    """Prompt the user for a candidate index (blank or 'n' for None)."""
    for index, item in enumerate(displayed, start=1):
        print(f"\n--- candidate {index} (answer: {', '.join(item.answer)}) ---")
        print(item.explanation.as_text())
    while True:
        raw = input(f"\nWhich candidate is correct? [1-{len(displayed)} / n for none] ").strip()
        if raw.lower() in ("", "n", "none"):
            return None
        if raw.isdigit() and 1 <= int(raw) <= len(displayed):
            return int(raw) - 1
        print("please enter a candidate number or 'n'")


def main() -> None:
    parser_args = argparse.ArgumentParser(description=__doc__)
    parser_args.add_argument("--human", action="store_true", help="pick candidates interactively")
    parser_args.add_argument("--questions", type=int, default=5, help="number of questions to answer")
    args = parser_args.parse_args()

    print("building a synthetic WikiTableQuestions-like corpus ...")
    dataset = build_dataset(DatasetConfig(num_tables=20, questions_per_table=6, seed=3))
    split = split_by_tables(dataset, test_fraction=0.25, seed=1)

    print("training the baseline parser (weak supervision) ...")
    parser = train_parser(
        split.train.training_examples(annotated=False)[:80], epochs=2, use_annotations=False
    )

    deployment = InteractiveDeployment(interface=NLInterface(parser=parser, k=K), k=K)
    examples = split.test.evaluation_examples()[: args.questions]

    outcomes = []
    if args.human and sys.stdin.isatty():
        for example in examples:
            print("\n" + "#" * 78)
            print("question:", example.question)
            print("table   :", example.table.name)
            outcome = deployment.answer_question(example, choose=human_choice)
            outcomes.append(outcome)
            answer = outcome.response.parse.candidates[
                outcome.chosen_rank if outcome.chosen_rank is not None else 0
            ].answer
            print("system answer:", ", ".join(answer))
        from repro.interface import DeploymentReport

        report = DeploymentReport(outcomes=outcomes)
    else:
        print("running a simulated worker through the questions ...")
        worker = worker_pool(1, seed=5)[0]
        report = deployment.run_with_worker(examples, worker)
        for outcome in report.outcomes:
            chosen = outcome.chosen_rank
            print("\nquestion:", outcome.example.question)
            print("  parser top-1 correct:", outcome.parser_correct,
                  "| user picked rank:", chosen,
                  "| hybrid correct:", outcome.hybrid_correct)

    print("\n=== Table 6 scenarios on these questions ===")
    for name, value in report.summary().items():
        if name == "examples":
            print(f"{name:>8}: {int(value)}")
        else:
            print(f"{name:>8}: {value:.1%}")


if __name__ == "__main__":
    main()
