"""The lambda DCS → SQL mapping of Table 10, executed and verified.

Run with::

    python examples/sql_equivalence.py

For every operator of the paper's Table 10 the script prints the example
lambda DCS query, its NL utterance, the generated SQL, and whether the
sqlite execution of that SQL agrees with the native lambda DCS executor.
"""

from __future__ import annotations

from repro.tables import Table
from repro.dcs import builder as q, to_sexpr
from repro.core import utterance
from repro.sql import SQLiteBackend, check_equivalence, to_sql


def reference_table() -> Table:
    return Table(
        columns=["Year", "Country", "City", "Total"],
        rows=[
            [1896, "Greece", "Athens", 100],
            [1900, "France", "Paris", 120],
            [2004, "Greece", "Athens", 300],
            [2008, "China", "Beijing", 320],
            [2012, "UK", "London", 280],
            [2016, "Brazil", "Rio de Janeiro", 310],
        ],
        name="reference",
    )


OPERATORS = [
    ("Column Records", q.column_records("City", "Athens")),
    ("Column Values", q.column_values("Year", q.column_records("City", "Athens"))),
    ("Values in Preceding Records",
     q.column_values("Year", q.prev_records(q.column_records("City", "Athens")))),
    ("Values in Following Records",
     q.column_values("Year", q.next_records(q.column_records("City", "Athens")))),
    ("Aggregation on Values",
     q.sum_(q.column_values("Total", q.column_records("Country", "Greece")))),
    ("Difference of Values", q.value_difference("Total", "City", "London", "Beijing")),
    ("Difference of Value Occurrences", q.count_difference("City", "Athens", "London")),
    ("Union of Values",
     q.column_values("City", q.column_records("Country", q.union("China", "Greece")))),
    ("Intersection of Records",
     q.intersection(q.column_records("City", "London"), q.column_records("Country", "UK"))),
    ("Records with Highest Value", q.argmax_records("Year")),
    ("Value in Record with Highest Index",
     q.value_in_last_record("Year", q.column_records("City", "Athens"))),
    ("Value with Most Appearances", q.most_common("City")),
    ("Comparing Values", q.compare_values("Year", "City", q.union("London", "Beijing"))),
]


def main() -> None:
    table = reference_table()
    with SQLiteBackend(table) as backend:
        for name, query in OPERATORS:
            report = check_equivalence(query, table, backend=backend)
            print("=" * 78)
            print("operator  :", name)
            print("lambda DCS:", to_sexpr(query))
            print("utterance :", utterance(query))
            print("SQL       :", to_sql(query).sql)
            print("DCS answer:", ", ".join(report.dcs_result.answer_strings()) or
                  str(sorted(report.dcs_result.record_indices)))
            print("equivalent:", report.equivalent)
    print("=" * 78)
    print("all operators of Table 10 translated and verified against sqlite.")


if __name__ == "__main__":
    main()
