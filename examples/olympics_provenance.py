"""Multilevel provenance, operator by operator.

Run with::

    python examples/olympics_provenance.py

The script walks through the provenance model of Section 4 on the paper's
example tables: it prints, for several lambda DCS operators, the three
provenance sets (PO ⊆ PE ⊆ PC), the derived utterance and the highlighted
table, and finishes with the Section 5.3 sampling procedure on a large
table (the Figure 7 scenario).
"""

from __future__ import annotations

from repro.tables import Table
from repro.dcs import builder as q
from repro.core import (
    compute_provenance,
    explain,
    render_text,
    sample_highlights,
    utterance,
)


def medal_table() -> Table:
    return Table(
        columns=["Rank", "Nation", "Gold", "Silver", "Total"],
        rows=[
            [1, "New Caledonia", 120, 107, 288],
            [2, "Tahiti", 60, 42, 144],
            [3, "Papua New Guinea", 48, 25, 121],
            [4, "Fiji", 33, 44, 130],
            [5, "Samoa", 22, 17, 73],
            [6, "Tonga", 4, 6, 20],
        ],
        name="Pacific Games medal tally",
    )


def growth_table(rows: int = 500) -> Table:
    countries = ["Madagascar", "Burkina Faso", "Kenya", "Ghana", "Togo"]
    data = [
        [index + 1, countries[index % len(countries)], 1980 + (index % 35),
         round(1.5 + ((index * 7) % 17) * 0.1, 3)]
        for index in range(rows)
    ]
    return Table(columns=["Row", "Country", "Year", "Growth Rate"], rows=data, name="growth rates")


def show(query, table) -> None:
    provenance = compute_provenance(query, table)
    print("=" * 78)
    print("utterance :", utterance(query))
    print(
        "provenance: |PO| =", len(provenance.output),
        " |PE| =", len(provenance.execution),
        " |PC| =", len(provenance.columns),
        " chain ordered:", provenance.chain_is_ordered(),
    )
    print(explain(query, table).as_text())
    print()


def main() -> None:
    medals = medal_table()

    # The Figure 6 difference query.
    show(q.value_difference("Total", "Nation", "Fiji", "Tonga"), medals)

    # A superlative and an aggregation.
    show(q.column_values("Nation", q.argmax_records("Gold")), medals)
    show(q.count(q.comparison_records("Total", ">", 100)), medals)

    # The Figure 5 value comparison.
    show(q.compare_values("Total", "Nation", q.union("Fiji", "Samoa")), medals)

    # Section 5.3: the same machinery on a 500-row table, sampled to 3 rows.
    large = growth_table()
    query = q.max_(q.column_values("Growth Rate", q.column_records("Country", "Madagascar")))
    sample = sample_highlights(query, large, seed=3)
    print("=" * 78)
    print("utterance :", utterance(query))
    print(f"large table with {large.num_rows} rows -> sampled {sample.sample_size} rows "
          f"{list(sample.row_indices)}")
    print(render_text(sample.highlighted, rows=sample.row_indices))


if __name__ == "__main__":
    main()
