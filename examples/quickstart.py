"""Quickstart: explain a lambda DCS query over a web table.

Run with::

    python examples/quickstart.py

The script builds the paper's Figure 1 table (Olympic games), writes the
query ``max(R[Year].Country.Greece)`` with the fluent builder, executes it,
and prints the two explanation mechanisms of the paper: the NL utterance
and the provenance-based highlight.  It also shows the SQL translation of
Table 10 and verifies it against sqlite.
"""

from __future__ import annotations

from repro.tables import Table
from repro.dcs import builder as q, execute, to_sexpr
from repro.core import explain
from repro.sql import check_equivalence, to_sql


def main() -> None:
    # 1. A web table (paper Figure 1).
    olympics = Table(
        columns=["Year", "Country", "City"],
        rows=[
            [1896, "Greece", "Athens"],
            [1900, "France", "Paris"],
            [2004, "Greece", "Athens"],
            [2008, "China", "Beijing"],
            [2012, "UK", "London"],
            [2016, "Brazil", "Rio de Janeiro"],
        ],
        name="Olympic games",
    )

    # 2. A lambda DCS query: "Greece held its last Olympics in what year?"
    query = q.max_(q.column_values("Year", q.column_records("Country", "Greece")))
    print("lambda DCS :", to_sexpr(query))

    # 3. Execute it.
    result = execute(query, olympics)
    print("answer     :", ", ".join(result.answer_strings()))

    # 4. Explain it: NL utterance + provenance-based highlights.
    explanation = explain(query, olympics)
    print()
    print(explanation.as_text())

    # 5. Position it in SQL (paper Table 10) and check the translation.
    translated = to_sql(query)
    print()
    print("SQL        :", translated.sql)
    report = check_equivalence(query, olympics)
    print("sqlite agrees with the lambda DCS executor:", report.equivalent)


if __name__ == "__main__":
    main()
