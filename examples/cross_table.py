"""Cross-table questions: set routing, composition, the SQL oracle.

Run with::

    python examples/cross_table.py

The script registers two shards that can only answer a question
*together* — a medals fact table and a nation→continent dimension table
— then walks the whole composition pipeline: the ShardSetRouter's
covering-set proposals, the composed answer with its cross-shard join
provenance on the v2 envelope, and the two-table SQL translation that
gates every composed answer.
"""

from __future__ import annotations

from repro.api import ReproEngine
from repro.dcs import from_sexpr
from repro.sql import check_composed_equivalence, to_sql
from repro.tables import Table

QUESTION = "what is the total for nations in Oceania"


def main() -> None:
    # 1. Two shards; neither alone can answer the question. "Total"
    #    lives in medals, "Oceania" lives only in regions.
    medals = Table(
        columns=["Nation", "Total", "Golds"],
        rows=[
            ["Fiji", "120", "40"],
            ["Samoa", "80", "20"],
            ["Tonga", "95", "30"],
            ["Greece", "210", "60"],
            ["Norway", "300", "90"],
        ],
        name="medals",
    )
    regions = Table(
        columns=["Nation", "Continent"],
        rows=[
            ["Fiji", "Oceania"],
            ["Samoa", "Oceania"],
            ["Tonga", "Oceania"],
            ["Greece", "Europe"],
            ["Norway", "Europe"],
        ],
        name="regions",
    )
    engine = ReproEngine(tables=[medals, regions])

    # 2. The set router: no single shard covers every anchored term, so
    #    it proposes covering *sets*.
    sets = engine.routing_sets(QUESTION)
    print("question      :", QUESTION)
    print("coverable     :", ", ".join(sets.coverable))
    print("single covers :", sets.single_covered)
    for rank, proposal in enumerate(sets.proposals):
        names = " + ".join(ref.name for ref in proposal.refs)
        state = "complete" if proposal.complete else f"missing {proposal.missing}"
        print(f"proposal {rank}    : {names} ({state}, score {proposal.score})")

    # 3. The composed answer, with provenance spanning both shards.
    result = engine.query(QUESTION)
    composed = result.composed
    print()
    print("composed      :", ", ".join(composed.answer))
    print("lambda DCS    :", composed.sexpr)
    print("utterance     :", composed.utterance)
    print(
        "provenance    :",
        f"{composed.primary.name} ⋈ {composed.secondary.name} "
        f"on {composed.left_column} = {composed.right_column}, "
        f"pairs {list(composed.join_pairs)}",
    )

    # 4. The oracle: the same query as a real two-table sqlite JOIN.
    query = from_sexpr(composed.sexpr)
    print()
    print("SQL           :", to_sql(query))
    report = check_composed_equivalence(query, medals, regions)
    print("sqlite agrees :", report.equivalent)


if __name__ == "__main__":
    main()
