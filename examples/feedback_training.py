"""Training on user feedback, end to end (the Table 9 loop at small scale).

Run with::

    python examples/feedback_training.py

The script:

1. builds a synthetic corpus and trains the baseline parser with weak
   (answer-only) supervision,
2. shows the baseline's candidate explanations for training questions to
   three simulated crowd workers per question and keeps the majority-vote
   annotations (question-query pairs),
3. retrains the parser with the annotation objective (paper Equation 8),
4. compares correctness and MRR on held-out development questions for the
   two parsers.
"""

from __future__ import annotations

from repro.dataset import DatasetConfig, build_dataset, split_by_tables
from repro.interface import RetrainingConfig, RetrainingPipeline
from repro.parser import evaluate_parser, train_parser
from repro.users import FeedbackConfig


def main() -> None:
    print("building corpus ...")
    dataset = build_dataset(
        DatasetConfig(num_tables=24, questions_per_table=7, seed=12, paraphrase_rate=0.55)
    )
    split = split_by_tables(dataset, test_fraction=0.25, seed=4)
    print(f"  train examples: {len(split.train)}, test examples: {len(split.test)}")

    print("training the baseline parser (weak supervision) ...")
    baseline = train_parser(
        split.train.training_examples(annotated=False)[:100], epochs=3, use_annotations=False
    )
    dev = split.test.evaluation_examples()[:40]
    baseline_report = evaluate_parser(baseline, dev, k=7)
    print(f"  baseline correctness: {baseline_report.correctness:.1%}  "
          f"MRR: {baseline_report.mrr:.3f}")

    print("collecting user feedback through query explanations ...")
    pipeline = RetrainingPipeline(baseline, RetrainingConfig(epochs=3, feedback=FeedbackConfig(seed=8)))
    feedback_pool = split.train.examples[:60]
    feedback = pipeline.collect_feedback(feedback_pool)
    print(f"  annotated questions: {feedback.annotated_count}/{len(feedback_pool)} "
          f"(annotation precision vs. gold: {feedback.annotation_precision():.1%})")

    print("retraining with and without the annotations ...")
    comparison = pipeline.compare(
        annotated_training=feedback.training_examples,
        unannotated_training=split.train.training_examples(annotated=False)[60:100],
        dev_examples=dev,
    )
    summary = comparison.summary()
    print("\n=== Table 9-style comparison (same training questions) ===")
    print(f"  with annotations    : correctness {summary['correctness_with']:.1%}  "
          f"MRR {summary['mrr_with']:.3f}")
    print(f"  without annotations : correctness {summary['correctness_without']:.1%}  "
          f"MRR {summary['mrr_without']:.3f}")
    print(f"  correctness gain    : {summary['correctness_gain']:+.1%}")
    print(f"  MRR gain            : {summary['mrr_gain']:+.3f}")


if __name__ == "__main__":
    main()
