"""repro — a reproduction of "Explaining Queries over Web Tables to Non-Experts".

The package is organised as:

* :mod:`repro.tables` — the web-table data model (Section 3.1),
* :mod:`repro.dcs` — the lambda DCS query language and executor (Section 3.2),
* :mod:`repro.sql` — the lambda DCS → SQL mapping of Table 10,
* :mod:`repro.core` — the paper's contribution: multilevel cell-based
  provenance (Section 4), NL utterances and provenance-based highlights
  (Section 5),
* :mod:`repro.parser` — the semantic parser substrate (Section 6.2),
* :mod:`repro.dataset` — a synthetic WikiTableQuestions-like benchmark,
* :mod:`repro.users` — simulated crowd workers for the user study (Section 7),
* :mod:`repro.interface` — the deployed NL interface and feedback retraining
  (Section 6),
* :mod:`repro.perf` — batch parsing, content-addressed caches and the
  parse-latency bench harness (Table 7 at deployment scale),
* :mod:`repro.retrieval` — the corpus-level retrieval layer: a
  content-addressed term/entity index and shard router that prune the
  corpus *before* parsing (retrieve-then-parse),
* :mod:`repro.serving` — the asyncio serving layer over the multi-table
  catalog of :mod:`repro.tables.catalog` (concurrent sessions, TCP
  endpoint, serving bench),
* :mod:`repro.api` — the unified query API: the typed, versioned
  :class:`~repro.api.QueryRequest`/:class:`~repro.api.QueryResult`
  envelope with lossless JSON codecs and the structured
  :class:`~repro.api.ErrorCode` taxonomy, the
  :class:`~repro.api.ReproEngine` façade (sync ``query``/``query_many``,
  async ``aquery``) every entry point routes through, the
  :class:`~repro.api.ReproClient` (in-process or TCP), and the v1/v2
  JSON-lines wire protocol of :mod:`repro.api.wire`.
"""

from . import (
    api,
    core,
    dataset,
    dcs,
    interface,
    parser,
    perf,
    retrieval,
    serving,
    sql,
    tables,
    users,
)

__version__ = "1.1.0"

__all__ = [
    "api",
    "tables",
    "dcs",
    "sql",
    "core",
    "parser",
    "dataset",
    "users",
    "interface",
    "perf",
    "retrieval",
    "serving",
    "__version__",
]
