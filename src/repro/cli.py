"""Command-line interface for the reproduction.

Eleven sub-commands cover the workflows a downstream user needs::

    python -m repro explain --table table.csv --query '(aggregate max (column-values "Year" (column-records "Country" (value "Greece"))))'
    python -m repro ask     --table table.csv --question "When did Greece last host?" --k 5
    python -m repro dataset --output corpus/ --tables 20 --questions 6
    python -m repro study   --tables 20 --questions 6 --k 7
    python -m repro bench-parse --tables 4 --questions 4 --repeats 2 --workers 4 --output BENCH_parse.json
    python -m repro catalog --corpus corpus/ --question "which country hosted in 2004" --any
    python -m repro route   --corpus corpus/ --question "which country hosted in 2004"
    python -m repro serve   --corpus corpus/ --port 8765
    python -m repro bench-serve --tables 4 --questions 4 --sessions 8 --output BENCH_serve.json
    python -m repro update  --corpus corpus/ --name olympics --table new_olympics.csv
    python -m repro bench-churn --tables 4 --questions 4 --edits 12 --output BENCH_churn.json

* ``explain`` — parse a lambda DCS s-expression, execute it on a CSV table
  and print the utterance + provenance highlights (Section 5).
* ``ask`` — run the semantic parser on an NL question over a CSV table and
  print the explained top-k candidates (Section 6.3); the parser is
  untrained unless ``--model`` points at a saved weight file.
* ``dataset`` — generate a synthetic WikiTableQuestions-like corpus and
  write its tables (JSON) plus a ``questions.jsonl`` file.
* ``study`` — run the end-to-end deployment experiment on a freshly
  generated corpus with simulated workers and print the Table 6 scenario
  summary.
* ``bench-parse`` — run the parse-latency harness (sequential vs memoized
  vs indexed vs batched vs process parsing; ``--backend`` selects the
  pool backends, ``--disk-cache`` enables the persistent store) on a
  synthetic corpus and optionally write the ``BENCH_parse.json`` timing
  artifact.
* ``catalog`` — load a table corpus into a fingerprint-addressed
  :class:`~repro.tables.catalog.TableCatalog`, list the shards, and
  optionally route one question (``--table REF`` or corpus-wide
  ``--any``; ``--no-prune`` forces the full broadcast).
* ``route`` — inspect the corpus-retrieval routing decision for a
  question: every shard's retrieval score, the matched terms, which
  shards ``ask_any`` would parse versus prune, and whether the broadcast
  fallback fires.  Pure inspection: nothing is parsed.
* ``serve`` — serve a corpus over the versioned JSON-lines TCP endpoint
  (v1 legacy + v2 typed envelope, see :mod:`repro.api.wire`), or run an
  in-process ``--self-test`` of N concurrent sessions
  (``--emit-results`` writes their v2 ``QueryResult`` envelopes as JSON
  lines for schema validation).
* ``bench-serve`` — run the serving harness (sequential vs concurrent
  async sessions vs hot-set eviction) and optionally write
  ``BENCH_serve.json``.
* ``update`` — publish new content under a registered table name
  (versioned lineage: the catalog diffs the snapshots, patches the
  retrieval index and per-column structures in place, and retires the
  superseded version once no query holds it).
* ``bench-churn`` — run the live-corpus churn harness (delta
  maintenance vs from-scratch rebuild under a random edit script,
  plus the bit-identity verdicts) and optionally write
  ``BENCH_churn.json``.

The question-answering commands (``ask``, ``catalog``, ``serve``,
``route``) are thin faces over :class:`repro.api.ReproEngine` — the same
façade library users call — and failures exit non-zero with a one-line
coded message (the :class:`repro.api.ErrorCode` taxonomy), never a
traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .api import ApiError, ErrorCode, ReproEngine, classify_exception
from .tables import CatalogError, Table, save_tables, table_from_csv
from .dcs import from_sexpr, to_sexpr
from .core import explain as explain_query
from .parser import LogLinearModel, SemanticParser, train_parser
from .interface import NLInterface
from .dataset import DatasetConfig, build_dataset, dataset_statistics, split_by_tables
from .users import StudyConfig, UserStudy, worker_pool


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Explaining Queries over Web Tables to Non-Experts — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    explain_cmd = subparsers.add_parser("explain", help="explain a lambda DCS query over a CSV table")
    explain_cmd.add_argument("--table", required=True, help="path to a CSV table (first row = header)")
    explain_cmd.add_argument("--query", required=True, help="lambda DCS query as an s-expression")
    explain_cmd.add_argument("--html", action="store_true", help="emit HTML instead of text")

    ask_cmd = subparsers.add_parser("ask", help="ask an NL question over a CSV table")
    ask_cmd.add_argument("--table", required=True, help="path to a CSV table")
    ask_cmd.add_argument("--question", required=True, help="the NL question")
    ask_cmd.add_argument("--k", type=int, default=7, help="number of candidates to explain")
    ask_cmd.add_argument("--model", help="path to a saved LogLinearModel JSON file")
    ask_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the typed v2 QueryResult envelope instead of rendered text",
    )

    dataset_cmd = subparsers.add_parser("dataset", help="generate a synthetic corpus")
    dataset_cmd.add_argument("--output", required=True, help="output directory")
    dataset_cmd.add_argument("--tables", type=int, default=20)
    dataset_cmd.add_argument("--questions", type=int, default=6, help="questions per table")
    dataset_cmd.add_argument("--seed", type=int, default=7)

    study_cmd = subparsers.add_parser("study", help="run the deployment experiment end to end")
    study_cmd.add_argument("--tables", type=int, default=20)
    study_cmd.add_argument("--questions", type=int, default=6, help="questions per table")
    study_cmd.add_argument("--k", type=int, default=7)
    study_cmd.add_argument("--epochs", type=int, default=2)
    study_cmd.add_argument("--seed", type=int, default=7)

    bench_cmd = subparsers.add_parser(
        "bench-parse",
        help="benchmark sequential vs memoized vs indexed vs batched vs process parsing",
    )
    bench_cmd.add_argument("--tables", type=int, default=4)
    bench_cmd.add_argument("--questions", type=int, default=4, help="questions per table")
    bench_cmd.add_argument("--seed", type=int, default=2019)
    bench_cmd.add_argument("--repeats", type=int, default=2, help="workload replays (warm-cache traffic)")
    bench_cmd.add_argument("--workers", type=int, default=4, help="batch parser pool size")
    bench_cmd.add_argument(
        "--backend",
        choices=["thread", "process", "both"],
        default="both",
        help="which pool backends to bench (thread -> 'batched' mode, process -> 'process' mode)",
    )
    bench_cmd.add_argument(
        "--disk-cache",
        help="enable the content-addressed on-disk cache under this directory "
        "(one sub-directory per mode; rerun with the same path for a warm start)",
    )
    bench_cmd.add_argument("--model", help="path to a saved LogLinearModel JSON file")
    bench_cmd.add_argument("--output", help="write the timing payload to this JSON file")

    catalog_cmd = subparsers.add_parser(
        "catalog", help="inspect and query a multi-table catalog"
    )
    catalog_cmd.add_argument(
        "--corpus",
        required=True,
        help="corpus directory: JSON tables (a 'tables/' subdir or the directory "
        "itself) and/or CSV files",
    )
    catalog_cmd.add_argument("--cache-dir", help="content-addressed disk cache root")
    catalog_cmd.add_argument(
        "--max-hot", type=int, help="keep at most N shards hot (LRU auto-eviction)"
    )
    catalog_cmd.add_argument("--question", help="a question to route")
    catalog_cmd.add_argument("--table", help="table name/digest to route --question to")
    catalog_cmd.add_argument(
        "--any",
        action="store_true",
        help="score --question across every shard instead of one table",
    )
    catalog_cmd.add_argument("--k", type=int, default=7)
    catalog_cmd.add_argument("--model", help="path to a saved LogLinearModel JSON file")
    catalog_cmd.add_argument(
        "--prune",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="corpus-wide asks: parse only retrieved shards (--no-prune "
        "forces the full broadcast)",
    )
    catalog_cmd.add_argument(
        "--top",
        type=int,
        metavar="N",
        help="corpus-wide asks: parse at most the N highest-ranked shards "
        "(the router's heap-selection path)",
    )

    route_cmd = subparsers.add_parser(
        "route",
        help="inspect the corpus-retrieval routing decision for a question",
    )
    route_cmd.add_argument(
        "--corpus", required=True, help="corpus directory (see catalog)"
    )
    route_cmd.add_argument("--question", required=True, help="the question to route")
    route_cmd.add_argument("--cache-dir", help="content-addressed disk cache root")
    route_cmd.add_argument(
        "--max-hot", type=int, help="keep at most N shards hot (LRU auto-eviction)"
    )
    route_cmd.add_argument(
        "--top",
        type=int,
        metavar="N",
        help="cap candidates at the N highest-ranked shards (the router's "
        "heap-selection path; scored rows then cover only the survivors)",
    )
    route_cmd.add_argument(
        "--sets",
        action="store_true",
        help="also show the shard-set proposals (the 2-3-shard candidate "
        "sets cross-table composition would try when no single shard "
        "covers every anchored question term)",
    )
    route_cmd.add_argument(
        "--json", action="store_true", help="emit the decision as JSON"
    )

    serve_cmd = subparsers.add_parser(
        "serve", help="serve a table corpus over asyncio (JSON-lines TCP)"
    )
    serve_cmd.add_argument("--corpus", required=True, help="corpus directory (see catalog)")
    serve_cmd.add_argument("--cache-dir", help="content-addressed disk cache root")
    serve_cmd.add_argument("--max-hot", type=int, help="keep at most N shards hot")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8765)
    serve_cmd.add_argument("--workers", type=int, default=8, help="per-batch pool size")
    serve_cmd.add_argument(
        "--backend", choices=["thread", "process"], default="thread",
        help="pool backend one dispatcher batch fans out over",
    )
    serve_cmd.add_argument(
        "--max-pending", type=int, default=1024,
        help="bound on queued requests before the server sheds new asks "
        "with OVERLOADED (0 = unbounded)",
    )
    serve_cmd.add_argument(
        "--call-timeout", type=float, default=None, metavar="SECONDS",
        help="watchdog budget for a single worker parse call; a worker "
        "exceeding it is presumed hung and respawned (process backend)",
    )
    serve_cmd.add_argument(
        "--self-test",
        type=int,
        metavar="SESSIONS",
        help="run SESSIONS concurrent in-process sessions over the corpus "
        "questions (questions.jsonl) instead of listening on a socket",
    )
    serve_cmd.add_argument(
        "--emit-results",
        metavar="PATH",
        help="with --self-test: write every answer as a v2 QueryResult "
        "envelope (JSON lines) for schema validation",
    )
    serve_cmd.add_argument("--model", help="path to a saved LogLinearModel JSON file")

    bench_serve_cmd = subparsers.add_parser(
        "bench-serve",
        help="benchmark sequential vs concurrent-async serving over a catalog",
    )
    bench_serve_cmd.add_argument("--tables", type=int, default=4)
    bench_serve_cmd.add_argument("--questions", type=int, default=4, help="questions per table")
    bench_serve_cmd.add_argument("--seed", type=int, default=2019)
    bench_serve_cmd.add_argument("--repeats", type=int, default=2)
    bench_serve_cmd.add_argument("--sessions", type=int, default=8)
    bench_serve_cmd.add_argument("--workers", type=int, default=8)
    bench_serve_cmd.add_argument(
        "--backend", choices=["thread", "process"], default="thread"
    )
    bench_serve_cmd.add_argument(
        "--disk-cache", help="disk cache root (enables the async_hotset mode)"
    )
    bench_serve_cmd.add_argument(
        "--max-hot", type=int, help="hot-shard bound of the async_hotset mode"
    )
    bench_serve_cmd.add_argument(
        "--route",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="also run the corpus-wide route mode (pruned vs broadcast ask_any)",
    )
    bench_serve_cmd.add_argument("--output", help="write the timing payload to this JSON file")

    update_cmd = subparsers.add_parser(
        "update",
        help="publish new content under a registered table name (versioned lineage)",
    )
    update_cmd.add_argument(
        "--corpus", required=True, help="corpus directory (see catalog)"
    )
    update_cmd.add_argument(
        "--name", required=True, help="registered table name (or digest) to update"
    )
    update_cmd.add_argument(
        "--table", required=True, help="path to the new content (CSV or JSON table)"
    )
    update_cmd.add_argument("--cache-dir", help="content-addressed disk cache root")
    update_cmd.add_argument(
        "--max-hot", type=int, help="keep at most N shards hot (LRU auto-eviction)"
    )
    update_cmd.add_argument(
        "--question", help="optionally ask a question against the updated corpus"
    )
    update_cmd.add_argument("--k", type=int, default=7)
    update_cmd.add_argument("--model", help="path to a saved LogLinearModel JSON file")

    bench_churn_cmd = subparsers.add_parser(
        "bench-churn",
        help="benchmark delta index maintenance vs full rebuild under table churn",
    )
    bench_churn_cmd.add_argument("--tables", type=int, default=4)
    bench_churn_cmd.add_argument(
        "--questions", type=int, default=4, help="questions per table"
    )
    bench_churn_cmd.add_argument("--seed", type=int, default=2019)
    bench_churn_cmd.add_argument(
        "--edits",
        type=int,
        default=None,
        help="length of the random edit script (default: 12, scaled by "
        "REPRO_BENCH_SCALE)",
    )
    bench_churn_cmd.add_argument(
        "--output", help="write the timing payload to this JSON file"
    )

    bench_discovery_cmd = subparsers.add_parser(
        "bench-discovery",
        help="benchmark table-discovery recall and corpus-scale routing "
        "over a synthetic many-shard corpus",
    )
    bench_discovery_cmd.add_argument(
        "--tables",
        type=int,
        default=500,
        help="corpus size before REPRO_BENCH_SCALE scaling",
    )
    bench_discovery_cmd.add_argument(
        "--questions",
        type=int,
        default=300,
        help="gold-labeled questions before REPRO_BENCH_SCALE scaling",
    )
    bench_discovery_cmd.add_argument("--seed", type=int, default=2019)
    bench_discovery_cmd.add_argument(
        "--top",
        type=int,
        default=10,
        help="max_candidates cap of the routed hot path under test",
    )
    bench_discovery_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        help="bulk-extraction worker count (default: CPU count)",
    )
    bench_discovery_cmd.add_argument(
        "--identity-sample",
        type=int,
        default=8,
        help="questions to check pruned-vs-broadcast answer identity on "
        "(each check broadcasts over the whole corpus)",
    )
    bench_discovery_cmd.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of repeat count for the build-timing arms (default: 3)",
    )
    bench_discovery_cmd.add_argument(
        "--output", help="write the payload to this JSON file"
    )

    bench_join_cmd = subparsers.add_parser(
        "bench-join",
        help="benchmark cross-table shard-set routing and the composed-"
        "answer SQL oracle over the multi-table question tier",
    )
    bench_join_cmd.add_argument(
        "--pairs",
        type=int,
        default=12,
        help="fact/dimension shard pairs before REPRO_BENCH_SCALE scaling",
    )
    bench_join_cmd.add_argument(
        "--questions",
        type=int,
        default=36,
        help="gold-labeled questions before REPRO_BENCH_SCALE scaling",
    )
    bench_join_cmd.add_argument("--seed", type=int, default=2019)
    bench_join_cmd.add_argument(
        "--proposals",
        type=int,
        default=8,
        help="max shard-set proposals the router may return (recall@5 "
        "needs more than the serving default of 4)",
    )
    bench_join_cmd.add_argument(
        "--output", help="write the payload to this JSON file"
    )
    return parser


# ---------------------------------------------------------------------------
# sub-commands
# ---------------------------------------------------------------------------


def _load_table(path: str) -> Table:
    return table_from_csv(Path(path))


def run_explain(args: argparse.Namespace, out) -> int:
    table = _load_table(args.table)
    query = from_sexpr(args.query)
    explanation = explain_query(query, table)
    if args.html:
        print(explanation.as_html(), file=out)
    else:
        print(explanation.as_text(), file=out)
        print(file=out)
        print("answer:", ", ".join(explanation.answer), file=out)
    return 0


def run_ask(args: argparse.Namespace, out) -> int:
    table = _load_table(args.table)
    parser = SemanticParser()
    if args.model:
        parser.model = LogLinearModel.load(args.model)
    engine = ReproEngine(
        interface=NLInterface(parser=parser, k=args.k), tables=[table], k=args.k
    )
    result = engine.query(args.question, target=table.name, k=args.k)
    if args.json:
        # JSON mode always emits the envelope — a PARSE_FAILURE is
        # structured output (coded error + routing), not a text apology.
        print(json.dumps(result.to_dict(), ensure_ascii=False, indent=2), file=out)
        return 0 if result.ok else 1
    if result.error_code is ErrorCode.PARSE_FAILURE:
        print("no executable candidate queries were generated", file=out)
        return 1
    result.raise_for_error()
    print(result.raw.as_text(), file=out)
    return 0


def run_dataset(args: argparse.Namespace, out) -> int:
    config = DatasetConfig(
        num_tables=args.tables, questions_per_table=args.questions, seed=args.seed
    )
    dataset = build_dataset(config)
    output = Path(args.output)
    output.mkdir(parents=True, exist_ok=True)
    save_tables(dataset.tables, output / "tables")
    questions_path = output / "questions.jsonl"
    with questions_path.open("w", encoding="utf-8") as handle:
        for example in dataset.examples:
            handle.write(
                json.dumps(
                    {
                        "id": example.example_id,
                        "table": example.table.name,
                        "question": example.question,
                        "query": to_sexpr(example.gold_query),
                        "answer": [value.display() for value in example.gold_answer],
                        "domain": example.domain,
                        "template": example.template,
                    },
                    ensure_ascii=False,
                )
                + "\n"
            )
    stats = dataset_statistics(dataset)
    print(f"wrote {int(stats['tables'])} tables and {int(stats['examples'])} questions "
          f"to {output}", file=out)
    return 0


def run_study(args: argparse.Namespace, out) -> int:
    config = DatasetConfig(
        num_tables=args.tables, questions_per_table=args.questions, seed=args.seed
    )
    dataset = build_dataset(config)
    split = split_by_tables(dataset, test_fraction=0.25, seed=args.seed)
    print(f"corpus: {len(split.train)} train / {len(split.test)} test questions", file=out)

    parser = train_parser(
        split.train.training_examples(annotated=False),
        epochs=args.epochs,
        use_annotations=False,
        seed=args.seed,
    )
    examples = split.test.evaluation_examples()
    study = UserStudy(parser, StudyConfig(k=args.k, questions_per_worker=20, seed=args.seed))
    workers = worker_pool(max(2, len(examples) // 20 + 1), seed=args.seed)
    result = study.run(examples, workers)

    print(f"questions answered : {result.distinct_questions}", file=out)
    print(f"explanations shown : {result.explanations_shown}", file=out)
    print(f"success rate       : {result.question_success_rate:.1%}", file=out)
    print(f"parser correctness : {result.parser_correctness:.1%}", file=out)
    print(f"user correctness   : {result.user_correctness:.1%}", file=out)
    print(f"hybrid correctness : {result.hybrid_correctness:.1%}", file=out)
    print(f"correctness bound  : {result.correctness_bound:.1%}", file=out)
    return 0


def run_bench_parse(args: argparse.Namespace, out) -> int:
    from .perf import bench_pairs_from_dataset, run_parse_bench

    pairs = bench_pairs_from_dataset(
        num_tables=args.tables, questions_per_table=args.questions, seed=args.seed
    )
    backends = ("thread", "process") if args.backend == "both" else (args.backend,)
    model = LogLinearModel.load(args.model) if args.model else None
    report = run_parse_bench(
        pairs,
        model=model,
        repeats=args.repeats,
        workers=args.workers,
        backends=backends,
        disk_cache_dir=args.disk_cache,
    )
    print(
        f"workload: {report.questions} parses "
        f"({len(pairs)} questions x {report.repeats} repeats)",
        file=out,
    )
    print(f"{'mode':<12} {'total':>10} {'mean':>10} {'speedup':>8}", file=out)
    for mode, total, mean, speedup in report.rows():
        print(f"{mode:<12} {total:>10} {mean:>10} {speedup:>8}", file=out)
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote timings to {path}", file=out)
    return 0


def _load_corpus(corpus: str):
    """Load a corpus directory: tables (JSON and/or CSV) + optional questions.

    Accepts both the ``repro dataset`` layout (``DIR/tables/*.json`` +
    ``DIR/questions.jsonl``) and a flat directory of table files.
    Returns ``(tables, questions)`` where questions are
    ``(question, table_name)`` pairs (empty when no questions.jsonl).
    """
    from .tables import load_tables

    root = Path(corpus)
    tables_dir = root / "tables" if (root / "tables").is_dir() else root
    tables = load_tables(tables_dir)
    for csv_path in sorted(tables_dir.glob("*.csv")):
        tables.append(table_from_csv(csv_path))
    questions = []
    questions_path = root / "questions.jsonl"
    if questions_path.exists():
        with questions_path.open(encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                questions.append((payload["question"], payload["table"]))
    return tables, questions


def _build_engine(args, k: int = 7) -> ReproEngine:
    """An engine honouring the shared --cache-dir/--max-hot/--model flags."""
    from .parser import ParserConfig

    model_path = getattr(args, "model", None)
    cache_dir = getattr(args, "cache_dir", None)
    max_hot = getattr(args, "max_hot", None)
    interface = None
    if model_path:
        parser = SemanticParser(
            model=LogLinearModel.load(model_path),
            config=ParserConfig(disk_cache_dir=cache_dir or None),
        )
        interface = NLInterface(parser=parser, k=k)
    return ReproEngine(
        interface=interface, cache_dir=cache_dir, max_hot_shards=max_hot, k=k,
        call_timeout=getattr(args, "call_timeout", None),
    )


def _corpus_engine(args, out, k: int = 7) -> Optional[ReproEngine]:
    """Load --corpus into a fresh engine; None (after a message) if empty."""
    tables, _ = _load_corpus(args.corpus)
    if not tables:
        print(f"no tables found under {args.corpus}", file=out)
        return None
    engine = _build_engine(args, k=k)
    engine.register_all(tables)
    return engine


def run_catalog(args: argparse.Namespace, out) -> int:
    engine = _corpus_engine(args, out, k=args.k)
    if engine is None:
        return 1
    catalog = engine.catalog
    print(f"{'digest':<14} {'shape':>9}  {'hot':<4} name", file=out)
    for ref in engine.refs():
        shape = f"{ref.num_rows}x{ref.num_columns}"
        hot = "hot" if catalog.is_hot(ref) else "cold"
        print(f"{ref.short:<14} {shape:>9}  {hot:<4} {ref.name}", file=out)
    if not args.question:
        return 0
    result = engine.query(
        args.question,
        target=args.table if not args.any else None,
        k=args.k,
        prune=args.prune if (args.any or not args.table) else None,
        max_candidates=args.top if (args.any or not args.table) else None,
    )
    print(json.dumps(result.to_dict(), ensure_ascii=False, indent=2), file=out)
    return 0 if result.ok else 1


def run_route(args: argparse.Namespace, out) -> int:
    engine = _corpus_engine(args, out)
    if engine is None:
        return 1
    sets = None
    if args.sets:
        sets = engine.routing_sets(args.question, max_candidates=args.top)
        decision = sets.single
    else:
        decision = engine.routing(args.question, max_candidates=args.top)
    if args.json:
        payload = {
            "question": decision.question,
            "fallback": decision.fallback,
            "candidates": [ref.name for ref in decision.candidates],
            "pruned": [ref.name for ref in decision.pruned],
            "scored": [
                {
                    "table": scored.ref.name,
                    "digest": scored.ref.short,
                    "score": scored.score,
                    "matched": list(scored.matched),
                }
                for scored in decision.scored
            ],
        }
        if sets is not None:
            payload["sets"] = {
                "coverable": list(sets.coverable),
                "single_covered": sets.single_covered,
                "proposals": [
                    {
                        "tables": [ref.name for ref in proposal.refs],
                        "covered": list(proposal.covered),
                        "missing": list(proposal.missing),
                        "score": proposal.score,
                    }
                    for proposal in sets.proposals
                ],
            }
        print(json.dumps(payload, ensure_ascii=False, indent=2), file=out)
        return 0
    print(f"question: {decision.question}", file=out)
    kept = {ref.digest for ref in decision.candidates}
    # Under --top the decision only scores the survivors, so the corpus
    # size is candidates + pruned, not len(scored).
    total_shards = len(decision.candidates) + len(decision.pruned)
    print(
        f"routing: parse {len(decision.candidates)}/{total_shards} shards"
        + (" (fallback: no retrieval hits, broadcasting)" if decision.fallback else ""),
        file=out,
    )
    print(f"{'decision':<8} {'score':>7}  {'digest':<14} {'name':<20} matched", file=out)
    for scored in decision.scored:
        verdict = "parse" if scored.ref.digest in kept else "prune"
        matched = ", ".join(scored.matched[:6])
        if len(scored.matched) > 6:
            matched += f", ... ({len(scored.matched)} terms)"
        print(
            f"{verdict:<8} {scored.score:>7.1f}  {scored.ref.short:<14} "
            f"{scored.ref.name:<20} {matched}",
            file=out,
        )
    if sets is not None:
        terms = ", ".join(sets.coverable) if sets.coverable else "(none)"
        print(f"coverable terms: {terms}", file=out)
        if sets.single_covered:
            print("sets: a single candidate covers every term", file=out)
        elif not sets.proposals:
            print("sets: no multi-shard set improves coverage", file=out)
        for position, proposal in enumerate(sets.proposals, start=1):
            names = " + ".join(ref.name for ref in proposal.refs)
            missing = (
                "complete"
                if proposal.complete
                else f"missing {', '.join(proposal.missing)}"
            )
            print(
                f"set {position}: {names} "
                f"(covers {len(proposal.covered)}/{len(sets.coverable)}, "
                f"{missing}, score {proposal.score:.1f})",
                file=out,
            )
    return 0


def run_serve(args: argparse.Namespace, out) -> int:
    import asyncio

    from .api import result_from_served
    from .serving import split_sessions

    tables, questions = _load_corpus(args.corpus)
    if not tables:
        print(f"no tables found under {args.corpus}", file=out)
        return 1
    engine = _build_engine(args)
    engine.register_all(tables)

    if args.self_test is not None:
        if not questions:
            print(
                f"--self-test needs {Path(args.corpus) / 'questions.jsonl'} "
                "(generate one with `repro dataset`)",
                file=out,
            )
            return 1
        streams = split_sessions(questions, max(1, args.self_test))

        async def _self_test():
            import time

            async with engine.server(
                max_workers=args.workers, backend=args.backend,
                max_pending=args.max_pending,
            ) as server:
                started = time.perf_counter()
                answered = await asyncio.gather(
                    *(server.run_session(stream) for stream in streams)
                )
                elapsed = time.perf_counter() - started
                return answered, elapsed, server.stats.as_dict()

        answered, elapsed, stats = asyncio.run(_self_test())
        total = sum(len(session) for session in answered)
        if args.emit_results:
            # Every served answer, lifted into the typed v2 envelope —
            # one JSON line per question, validated against
            # schemas/query_result.v2.json by scripts/validate_wire.py
            # (CI runs exactly that pipeline).
            emit_path = Path(args.emit_results)
            emit_path.parent.mkdir(parents=True, exist_ok=True)
            from .api import ShardInfo

            with emit_path.open("w", encoding="utf-8") as handle:
                for stream, session in zip(streams, answered):
                    for (question, ref), answer in zip(stream, session):
                        shard = (
                            ShardInfo.from_ref(engine.catalog.resolve(ref))
                            if ref is not None
                            else None
                        )
                        result = result_from_served(question, answer, shard=shard)
                        handle.write(
                            json.dumps(result.to_dict(), ensure_ascii=False) + "\n"
                        )
            print(f"wrote {total} v2 result envelopes to {emit_path}", file=out)
        rate = f" ({total / elapsed:.1f} q/s)" if elapsed > 0 else ""
        print(
            f"{len(streams)} concurrent sessions answered {total} questions "
            f"in {elapsed:.2f}s{rate}",
            file=out,
        )
        print(f"dispatcher: {stats}", file=out)
        return 0

    async def _serve_forever():
        async with engine.server(
            max_workers=args.workers, backend=args.backend,
            max_pending=args.max_pending,
        ) as server:
            tcp = await server.serve(host=args.host, port=args.port)
            address = tcp.sockets[0].getsockname()
            print(
                f"serving {len(engine)} tables on {address[0]}:{address[1]} "
                "(JSON lines, protocol v1+v2; send {\"op\": \"list\"} to "
                "enumerate, {\"v\": 2, \"op\": \"hello\"} to negotiate v2)",
                file=out,
            )
            out.flush()
            async with tcp:
                await tcp.serve_forever()

    try:
        asyncio.run(_serve_forever())
    except KeyboardInterrupt:
        print("stopped", file=out)
    return 0


def run_bench_serve(args: argparse.Namespace, out) -> int:
    from .perf import bench_pairs_from_dataset
    from .serving import run_serving_bench

    pairs = bench_pairs_from_dataset(
        num_tables=args.tables, questions_per_table=args.questions, seed=args.seed
    )
    report = run_serving_bench(
        pairs,
        sessions=args.sessions,
        workers=args.workers,
        backend=args.backend,
        repeats=args.repeats,
        disk_cache_dir=args.disk_cache,
        max_hot_shards=args.max_hot,
        route=args.route,
    )
    print(
        f"workload: {report.questions} questions over {report.tables} tables, "
        f"{report.sessions} sessions, backend={report.backend}",
        file=out,
    )
    print(
        f"{'mode':<14} {'total':>10} {'throughput':>12} {'p50/p95/p99':>16} "
        f"{'identical':>10} {'speedup':>8}",
        file=out,
    )
    for mode, total, throughput, latency, identical, speedup in report.rows():
        print(
            f"{mode:<14} {total:>10} {throughput:>12} {latency:>16} "
            f"{identical:>10} {speedup:>8}",
            file=out,
        )
    if report.route is not None:
        route = report.route
        print(
            f"route: {route.questions} corpus-wide questions over "
            f"{route.shards} shards "
            f"({route.fallbacks} fallbacks to broadcast)",
            file=out,
        )
        for regime, total, parsed, matched, speedup in report.route_rows():
            print(
                f"{regime:<14} {total:>10} {parsed:>22} {matched:>10} {speedup:>8}",
                file=out,
            )
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote timings to {path}", file=out)
    ok = all(t.identical for t in report.modes.values())
    if report.route is not None:
        ok = ok and report.route.top_answers_match
    return 0 if ok else 1


def run_update(args: argparse.Namespace, out) -> int:
    from .tables import diff_tables, table_from_json

    engine = _corpus_engine(args, out, k=args.k)
    if engine is None:
        return 1
    catalog = engine.catalog
    old_ref = catalog.resolve(args.name)
    path = Path(args.table)
    if path.suffix.lower() == ".json":
        new_table = table_from_json(path.read_text(encoding="utf-8"))
    else:
        new_table = table_from_csv(path)
    diff = diff_tables(catalog.table(old_ref), new_table)
    new_ref = engine.update(old_ref, new_table)
    if new_ref.digest == old_ref.digest:
        print(
            f"{old_ref.name}: content unchanged ({old_ref.short}); nothing to do",
            file=out,
        )
        return 0
    print(
        f"{old_ref.name}: v{old_ref.version} {old_ref.short} -> "
        f"v{new_ref.version} {new_ref.short}",
        file=out,
    )
    print(
        f"  columns: {len(diff.changed_columns)} changed, "
        f"{len(diff.added_columns)} added, {len(diff.removed_columns)} removed",
        file=out,
    )
    print(
        f"  rows   : {len(diff.changed_rows)} changed"
        + (" (row count changed)" if diff.row_count_changed else ""),
        file=out,
    )
    stats = catalog.stats()
    print(
        f"  catalog: version {stats['version']}, {stats['updates']} updates, "
        f"{stats['retired']} retired",
        file=out,
    )
    if args.question:
        result = engine.query(args.question, target=args.name, k=args.k)
        print(json.dumps(result.to_dict(), ensure_ascii=False, indent=2), file=out)
        return 0 if result.ok else 1
    return 0


def run_bench_churn(args: argparse.Namespace, out) -> int:
    from .perf import bench_pairs_from_dataset, run_churn_bench

    pairs = bench_pairs_from_dataset(
        num_tables=args.tables, questions_per_table=args.questions, seed=args.seed
    )
    report = run_churn_bench(pairs, edits=args.edits, seed=args.seed)
    print(
        f"workload: {report.tables} tables, {report.questions} questions, "
        f"{report.edits} edits",
        file=out,
    )
    print(f"{'mode':<14} {'total':>10} {'mean edit':>10} {'speedup':>8}", file=out)
    for mode, total, mean, speedup in report.rows():
        print(f"{mode:<14} {total:>10} {mean:>10} {speedup:>8}", file=out)
    print(
        f"identical to from-scratch rebuild: answers="
        f"{report.identical_answers} index={report.identical_index}",
        file=out,
    )
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote timings to {path}", file=out)
    return 0 if (report.identical_answers and report.identical_index) else 1


def run_bench_discovery(args: argparse.Namespace, out) -> int:
    from .dataset.corpus import CorpusConfig
    from .perf.discovery import run_discovery_bench

    report = run_discovery_bench(
        config=CorpusConfig(
            num_tables=args.tables,
            num_questions=args.questions,
            seed=args.seed,
        ),
        max_candidates=args.top,
        workers=args.workers,
        identity_sample=args.identity_sample,
        build_repeats=args.repeats,
    )
    print(
        f"workload: {report.shards} shards, {report.questions} questions, "
        f"top-{report.max_candidates} routing",
        file=out,
    )
    for label, value in report.rows():
        print(f"{label:>18}: {value}", file=out)
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote payload to {path}", file=out)
    # Exit 1 when the pruned pipeline diverges from broadcast on a
    # question whose gold shard survived the cap, or when bulk
    # registration stops being structurally identical to sequential —
    # the discovery integrity gate.
    return 0 if (report.identical and report.identical_index) else 1


def run_bench_join(args: argparse.Namespace, out) -> int:
    from .dataset.join_corpus import JoinCorpusConfig
    from .perf.join import run_join_bench

    report = run_join_bench(
        config=JoinCorpusConfig(
            num_pairs=args.pairs,
            num_questions=args.questions,
            seed=args.seed,
        ),
        max_proposals=args.proposals,
    )
    print(
        f"workload: {report.pairs} shard pairs ({report.shards} shards), "
        f"{report.questions} questions, top-{report.max_proposals} proposals",
        file=out,
    )
    for label, value in report.rows():
        print(f"{label:>20}: {value}", file=out)
    for line in report.failures:
        print(f"  ! {line}", file=out)
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote payload to {path}", file=out)
    # The oracle gate: exit 1 when any composed answer diverges from the
    # translated two-table SQL, or when a gold pair fails to compose at
    # all (an uncomposed pair can't be oracle-checked, and passing it
    # silently would hollow out the gate).
    return 0 if report.gate_ok else 1


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_argument_parser().parse_args(argv)
    handlers = {
        "explain": run_explain,
        "ask": run_ask,
        "dataset": run_dataset,
        "study": run_study,
        "bench-parse": run_bench_parse,
        "catalog": run_catalog,
        "route": run_route,
        "serve": run_serve,
        "bench-serve": run_bench_serve,
        "update": run_update,
        "bench-churn": run_bench_churn,
        "bench-discovery": run_bench_discovery,
        "bench-join": run_bench_join,
    }
    try:
        return handlers[args.command](args, out)
    except (ApiError, CatalogError, OSError, ValueError) as error:
        # One coded line, no traceback: every catalog/API failure — and
        # the mundane ones (missing files, unreadable models) — funnels
        # through the repro.api error taxonomy.
        coded = classify_exception(error)
        print(f"error[{coded.code.value}]: {coded.message}", file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
