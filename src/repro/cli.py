"""Command-line interface for the reproduction.

Five sub-commands cover the workflows a downstream user needs::

    python -m repro explain --table table.csv --query '(aggregate max (column-values "Year" (column-records "Country" (value "Greece"))))'
    python -m repro ask     --table table.csv --question "When did Greece last host?" --k 5
    python -m repro dataset --output corpus/ --tables 20 --questions 6
    python -m repro study   --tables 20 --questions 6 --k 7
    python -m repro bench-parse --tables 4 --questions 4 --repeats 2 --workers 4 --output BENCH_parse.json

* ``explain`` — parse a lambda DCS s-expression, execute it on a CSV table
  and print the utterance + provenance highlights (Section 5).
* ``ask`` — run the semantic parser on an NL question over a CSV table and
  print the explained top-k candidates (Section 6.3); the parser is
  untrained unless ``--model`` points at a saved weight file.
* ``dataset`` — generate a synthetic WikiTableQuestions-like corpus and
  write its tables (JSON) plus a ``questions.jsonl`` file.
* ``study`` — run the end-to-end deployment experiment on a freshly
  generated corpus with simulated workers and print the Table 6 scenario
  summary.
* ``bench-parse`` — run the parse-latency harness (sequential vs memoized
  vs indexed vs batched vs process parsing; ``--backend`` selects the
  pool backends, ``--disk-cache`` enables the persistent store) on a
  synthetic corpus and optionally write the ``BENCH_parse.json`` timing
  artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .tables import Table, save_tables, table_from_csv
from .dcs import from_sexpr, to_sexpr
from .core import explain as explain_query
from .parser import LogLinearModel, SemanticParser, train_parser
from .interface import NLInterface
from .dataset import DatasetConfig, build_dataset, dataset_statistics, split_by_tables
from .users import StudyConfig, UserStudy, worker_pool


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Explaining Queries over Web Tables to Non-Experts — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    explain_cmd = subparsers.add_parser("explain", help="explain a lambda DCS query over a CSV table")
    explain_cmd.add_argument("--table", required=True, help="path to a CSV table (first row = header)")
    explain_cmd.add_argument("--query", required=True, help="lambda DCS query as an s-expression")
    explain_cmd.add_argument("--html", action="store_true", help="emit HTML instead of text")

    ask_cmd = subparsers.add_parser("ask", help="ask an NL question over a CSV table")
    ask_cmd.add_argument("--table", required=True, help="path to a CSV table")
    ask_cmd.add_argument("--question", required=True, help="the NL question")
    ask_cmd.add_argument("--k", type=int, default=7, help="number of candidates to explain")
    ask_cmd.add_argument("--model", help="path to a saved LogLinearModel JSON file")

    dataset_cmd = subparsers.add_parser("dataset", help="generate a synthetic corpus")
    dataset_cmd.add_argument("--output", required=True, help="output directory")
    dataset_cmd.add_argument("--tables", type=int, default=20)
    dataset_cmd.add_argument("--questions", type=int, default=6, help="questions per table")
    dataset_cmd.add_argument("--seed", type=int, default=7)

    study_cmd = subparsers.add_parser("study", help="run the deployment experiment end to end")
    study_cmd.add_argument("--tables", type=int, default=20)
    study_cmd.add_argument("--questions", type=int, default=6, help="questions per table")
    study_cmd.add_argument("--k", type=int, default=7)
    study_cmd.add_argument("--epochs", type=int, default=2)
    study_cmd.add_argument("--seed", type=int, default=7)

    bench_cmd = subparsers.add_parser(
        "bench-parse",
        help="benchmark sequential vs memoized vs indexed vs batched vs process parsing",
    )
    bench_cmd.add_argument("--tables", type=int, default=4)
    bench_cmd.add_argument("--questions", type=int, default=4, help="questions per table")
    bench_cmd.add_argument("--seed", type=int, default=2019)
    bench_cmd.add_argument("--repeats", type=int, default=2, help="workload replays (warm-cache traffic)")
    bench_cmd.add_argument("--workers", type=int, default=4, help="batch parser pool size")
    bench_cmd.add_argument(
        "--backend",
        choices=["thread", "process", "both"],
        default="both",
        help="which pool backends to bench (thread -> 'batched' mode, process -> 'process' mode)",
    )
    bench_cmd.add_argument(
        "--disk-cache",
        help="enable the content-addressed on-disk cache under this directory "
        "(one sub-directory per mode; rerun with the same path for a warm start)",
    )
    bench_cmd.add_argument("--model", help="path to a saved LogLinearModel JSON file")
    bench_cmd.add_argument("--output", help="write the timing payload to this JSON file")
    return parser


# ---------------------------------------------------------------------------
# sub-commands
# ---------------------------------------------------------------------------


def _load_table(path: str) -> Table:
    return table_from_csv(Path(path))


def run_explain(args: argparse.Namespace, out) -> int:
    table = _load_table(args.table)
    query = from_sexpr(args.query)
    explanation = explain_query(query, table)
    if args.html:
        print(explanation.as_html(), file=out)
    else:
        print(explanation.as_text(), file=out)
        print(file=out)
        print("answer:", ", ".join(explanation.answer), file=out)
    return 0


def run_ask(args: argparse.Namespace, out) -> int:
    table = _load_table(args.table)
    parser = SemanticParser()
    if args.model:
        parser.model = LogLinearModel.load(args.model)
    interface = NLInterface(parser=parser, k=args.k)
    response = interface.ask(args.question, table)
    if not response.explained:
        print("no executable candidate queries were generated", file=out)
        return 1
    print(response.as_text(), file=out)
    return 0


def run_dataset(args: argparse.Namespace, out) -> int:
    config = DatasetConfig(
        num_tables=args.tables, questions_per_table=args.questions, seed=args.seed
    )
    dataset = build_dataset(config)
    output = Path(args.output)
    output.mkdir(parents=True, exist_ok=True)
    save_tables(dataset.tables, output / "tables")
    questions_path = output / "questions.jsonl"
    with questions_path.open("w", encoding="utf-8") as handle:
        for example in dataset.examples:
            handle.write(
                json.dumps(
                    {
                        "id": example.example_id,
                        "table": example.table.name,
                        "question": example.question,
                        "query": to_sexpr(example.gold_query),
                        "answer": [value.display() for value in example.gold_answer],
                        "domain": example.domain,
                        "template": example.template,
                    },
                    ensure_ascii=False,
                )
                + "\n"
            )
    stats = dataset_statistics(dataset)
    print(f"wrote {int(stats['tables'])} tables and {int(stats['examples'])} questions "
          f"to {output}", file=out)
    return 0


def run_study(args: argparse.Namespace, out) -> int:
    config = DatasetConfig(
        num_tables=args.tables, questions_per_table=args.questions, seed=args.seed
    )
    dataset = build_dataset(config)
    split = split_by_tables(dataset, test_fraction=0.25, seed=args.seed)
    print(f"corpus: {len(split.train)} train / {len(split.test)} test questions", file=out)

    parser = train_parser(
        split.train.training_examples(annotated=False),
        epochs=args.epochs,
        use_annotations=False,
        seed=args.seed,
    )
    examples = split.test.evaluation_examples()
    study = UserStudy(parser, StudyConfig(k=args.k, questions_per_worker=20, seed=args.seed))
    workers = worker_pool(max(2, len(examples) // 20 + 1), seed=args.seed)
    result = study.run(examples, workers)

    print(f"questions answered : {result.distinct_questions}", file=out)
    print(f"explanations shown : {result.explanations_shown}", file=out)
    print(f"success rate       : {result.question_success_rate:.1%}", file=out)
    print(f"parser correctness : {result.parser_correctness:.1%}", file=out)
    print(f"user correctness   : {result.user_correctness:.1%}", file=out)
    print(f"hybrid correctness : {result.hybrid_correctness:.1%}", file=out)
    print(f"correctness bound  : {result.correctness_bound:.1%}", file=out)
    return 0


def run_bench_parse(args: argparse.Namespace, out) -> int:
    from .perf import bench_pairs_from_dataset, run_parse_bench

    pairs = bench_pairs_from_dataset(
        num_tables=args.tables, questions_per_table=args.questions, seed=args.seed
    )
    backends = ("thread", "process") if args.backend == "both" else (args.backend,)
    model = LogLinearModel.load(args.model) if args.model else None
    report = run_parse_bench(
        pairs,
        model=model,
        repeats=args.repeats,
        workers=args.workers,
        backends=backends,
        disk_cache_dir=args.disk_cache,
    )
    print(
        f"workload: {report.questions} parses "
        f"({len(pairs)} questions x {report.repeats} repeats)",
        file=out,
    )
    print(f"{'mode':<12} {'total':>10} {'mean':>10} {'speedup':>8}", file=out)
    for mode, total, mean, speedup in report.rows():
        print(f"{mode:<12} {total:>10} {mean:>10} {speedup:>8}", file=out)
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.to_payload(), indent=2, sort_keys=True),
            encoding="utf-8",
        )
        print(f"wrote timings to {path}", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_argument_parser().parse_args(argv)
    handlers = {
        "explain": run_explain,
        "ask": run_ask,
        "dataset": run_dataset,
        "study": run_study,
        "bench-parse": run_bench_parse,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
