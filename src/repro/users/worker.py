"""Simulated crowd workers (substitution for the paper's AMT participants).

The user study (Section 7.2) recruited 35 non-expert workers who, for each
question, saw the explanations of the top-7 candidate queries in random
order and marked the correct one (or *None*).  Their measured behaviour:

* 78.4% of the individual explanations were judged correctly (Table 4),
* selections raised correctness from the parser's 37.1% to 44.6%, and the
  hybrid policy to 48.7% (Table 6),
* highlights cut the average work time by roughly a third (Table 5).

A :class:`SimulatedWorker` reproduces that behaviour stochastically: it
judges each explanation independently with a per-condition accuracy, then
selects among the candidates it believes to be correct.  The judgment
accuracies are the model's calibration knobs; the downstream quantities
(Tables 4-6 and 9) are *measured* from the simulated interaction, not
hard-coded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .timing import ExplanationMode, TimingParameters, WorkTimeModel


@dataclass(frozen=True)
class JudgmentParameters:
    """Per-condition probabilities of judging one explanation correctly."""

    #: P(worker recognises a correct candidate as correct).
    recognise_correct: float = 0.85
    #: P(worker correctly rejects an incorrect candidate).
    reject_incorrect: float = 0.97
    #: Degradation applied when highlights are absent (utterances only).  The
    #: paper found both explanation conditions equally *accurate* (only the
    #: work time differed), so the penalty is small.
    utterance_only_penalty: float = 0.02
    #: With raw lambda DCS only, non-experts are effectively guessing.
    formal_only_recognise: float = 0.15
    formal_only_reject: float = 0.55


@dataclass
class WorkerDecision:
    """The outcome of one worker examining one question's candidate list."""

    selected_index: Optional[int]
    judgments: List[bool]
    correct_judgments: int
    seconds: float

    @property
    def marked_none(self) -> bool:
        return self.selected_index is None

    @property
    def judgment_count(self) -> int:
        return len(self.judgments)


class SimulatedWorker:
    """One simulated AMT worker."""

    def __init__(
        self,
        worker_id: str,
        mode: ExplanationMode = ExplanationMode.UTTERANCES_AND_HIGHLIGHTS,
        judgment: JudgmentParameters = JudgmentParameters(),
        timing: TimingParameters = TimingParameters(),
        seed: int = 0,
    ) -> None:
        self.worker_id = worker_id
        self.mode = mode
        self.judgment = judgment
        self._random = random.Random(seed)
        self._timer = WorkTimeModel(mode, timing, seed=seed + 104729)

    # -- judgement model -----------------------------------------------------------
    def _probabilities(self) -> Tuple[float, float]:
        params = self.judgment
        if self.mode == ExplanationMode.FORMAL_ONLY:
            return params.formal_only_recognise, params.formal_only_reject
        recognise = params.recognise_correct
        reject = params.reject_incorrect
        if self.mode == ExplanationMode.UTTERANCES_ONLY:
            recognise = max(0.0, recognise - params.utterance_only_penalty)
            reject = max(0.0, reject - params.utterance_only_penalty)
        return recognise, reject

    def judge_candidate(self, is_correct: bool) -> bool:
        """The worker's belief about one candidate ("this one is correct")."""
        recognise, reject = self._probabilities()
        if is_correct:
            return self._random.random() < recognise
        return self._random.random() >= reject

    # -- per-question behaviour --------------------------------------------------------
    def review_question(self, candidate_correctness: Sequence[bool]) -> WorkerDecision:
        """Review one question's candidates (already in display order).

        ``candidate_correctness[i]`` says whether displayed candidate ``i``
        really is a correct translation; the worker does not see it, it is
        only used to score the worker's judgments.
        """
        judgments = [self.judge_candidate(is_correct) for is_correct in candidate_correctness]
        correct_judgments = sum(
            1 for belief, truth in zip(judgments, candidate_correctness) if belief == truth
        )
        believed_correct = [index for index, belief in enumerate(judgments) if belief]
        if believed_correct:
            selected = believed_correct[0]
            # Workers occasionally pick a later plausible candidate instead.
            if len(believed_correct) > 1 and self._random.random() < 0.25:
                selected = self._random.choice(believed_correct)
        else:
            selected = None
        seconds = self._timer.question_seconds(len(candidate_correctness))
        return WorkerDecision(
            selected_index=selected,
            judgments=judgments,
            correct_judgments=correct_judgments,
            seconds=seconds,
        )


def worker_pool(
    count: int,
    mode: ExplanationMode = ExplanationMode.UTTERANCES_AND_HIGHLIGHTS,
    judgment: JudgmentParameters = JudgmentParameters(),
    timing: TimingParameters = TimingParameters(),
    seed: int = 0,
) -> List[SimulatedWorker]:
    """Create ``count`` workers with distinct random streams."""
    return [
        SimulatedWorker(
            worker_id=f"worker-{index:02d}",
            mode=mode,
            judgment=judgment,
            timing=timing,
            seed=seed * 1000 + index,
        )
        for index in range(count)
    ]
