"""Collecting question-query annotations from user feedback (Section 7.3).

During the feedback experiment the paper showed each *training* question to
three distinct workers; a candidate query counted as an annotation when at
least two of them marked it correct.  The resulting question-query pairs
were then used to retrain the parser with the Equation 8 objective.

:class:`FeedbackCollector` reproduces that protocol with simulated workers
and emits :class:`~repro.parser.training.TrainingExample` objects carrying
the collected annotations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dcs.sexpr import to_sexpr
from ..parser.candidates import SemanticParser
from ..parser.evaluation import find_correct_indices
from ..parser.training import TrainingExample
from ..dataset.dataset import DatasetExample
from .timing import ExplanationMode
from .worker import JudgmentParameters, SimulatedWorker, worker_pool


@dataclass
class AnnotationRecord:
    """The annotations collected for one training question."""

    example: DatasetExample
    annotated_sexprs: Tuple[str, ...]
    candidate_count: int
    workers_agreeing: int

    @property
    def has_annotation(self) -> bool:
        return bool(self.annotated_sexprs)


@dataclass
class FeedbackResult:
    """Everything the feedback-collection pass produced."""

    records: List[AnnotationRecord] = field(default_factory=list)
    training_examples: List[TrainingExample] = field(default_factory=list)

    @property
    def annotated_count(self) -> int:
        return sum(1 for record in self.records if record.has_annotation)

    @property
    def annotation_rate(self) -> float:
        if not self.records:
            return 0.0
        return self.annotated_count / len(self.records)

    def annotation_precision(self) -> float:
        """Fraction of collected annotations that really are correct queries.

        Uses the gold query available in the synthetic corpus; the paper had
        no gold queries and relied on worker agreement alone.
        """
        correct = 0
        total = 0
        for record in self.records:
            gold = to_sexpr(record.example.gold_query)
            for sexpr in record.annotated_sexprs:
                total += 1
                if sexpr == gold:
                    correct += 1
        return correct / total if total else 0.0


@dataclass
class FeedbackConfig:
    """Configuration of the annotation-collection protocol."""

    k: int = 7
    workers_per_question: int = 3
    agreement_threshold: int = 2
    shuffle_candidates: bool = True
    seed: int = 41
    perturbations: int = 2
    mode: ExplanationMode = ExplanationMode.UTTERANCES_AND_HIGHLIGHTS
    judgment: JudgmentParameters = field(default_factory=JudgmentParameters)


class FeedbackCollector:
    """Collects majority-vote annotations from simulated workers."""

    def __init__(self, parser: SemanticParser, config: Optional[FeedbackConfig] = None) -> None:
        self.parser = parser
        self.config = config or FeedbackConfig()
        self._random = random.Random(self.config.seed)

    def collect(self, examples: Sequence[DatasetExample]) -> FeedbackResult:
        """Collect annotations for every example (training questions)."""
        config = self.config
        result = FeedbackResult()
        workers = worker_pool(
            config.workers_per_question,
            mode=config.mode,
            judgment=config.judgment,
            seed=config.seed,
        )
        for example in examples:
            record = self._collect_one(example, workers)
            result.records.append(record)
            annotated_queries = tuple(
                candidate_query
                for candidate_query in self._queries_from_sexprs(example, record.annotated_sexprs)
            )
            result.training_examples.append(
                TrainingExample(
                    question=example.question,
                    table=example.table,
                    answer=example.gold_answer,
                    annotated_queries=annotated_queries,
                )
            )
        return result

    # -- internals -------------------------------------------------------------------
    def _collect_one(
        self, example: DatasetExample, workers: Sequence[SimulatedWorker]
    ) -> AnnotationRecord:
        config = self.config
        parse = self.parser.parse(example.question, example.table)
        ranked = parse.top_k(config.k)
        evaluation_example = example.to_evaluation_example()
        correct_indices = set(
            find_correct_indices(
                ranked, evaluation_example, perturbations=config.perturbations
            )
        )

        votes: Dict[int, int] = {}
        for worker in workers:
            order = list(range(len(ranked)))
            if config.shuffle_candidates:
                self._random.shuffle(order)
            displayed_correctness = [index in correct_indices for index in order]
            decision = worker.review_question(displayed_correctness)
            if decision.selected_index is not None:
                original_index = order[decision.selected_index]
                votes[original_index] = votes.get(original_index, 0) + 1

        annotated = [
            index
            for index, count in sorted(votes.items())
            if count >= config.agreement_threshold
        ]
        max_agreement = max(votes.values()) if votes else 0
        return AnnotationRecord(
            example=example,
            annotated_sexprs=tuple(ranked[index].sexpr for index in annotated),
            candidate_count=len(ranked),
            workers_agreeing=max_agreement,
        )

    def _queries_from_sexprs(self, example: DatasetExample, sexprs: Sequence[str]):
        from ..dcs.sexpr import from_sexpr

        for sexpr in sexprs:
            yield from_sexpr(sexpr)
