"""The interactive user study harness (paper Section 7.2).

The harness drives the full deployment loop on a set of test questions:

1. the semantic parser produces its candidate queries,
2. the top-k candidates are shown to a simulated worker in random order
   (the paper randomises the order so users are not biased towards the
   parser's top query),
3. the worker selects the candidate it believes to be correct, or *None*,
4. the study records everything needed for Tables 4, 5 and 6: explanation
   counts, per-question success, user/hybrid correctness, the correctness
   bound and the per-worker work time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..parser.candidates import Candidate, SemanticParser
from ..parser.evaluation import EvaluationExample, find_correct_indices
from .timing import ExplanationMode
from .worker import SimulatedWorker, WorkerDecision, worker_pool


@dataclass
class QuestionTrial:
    """The outcome of one worker answering one question."""

    example: EvaluationExample
    worker_id: str
    displayed_candidates: List[Candidate]
    displayed_correctness: List[bool]
    decision: WorkerDecision
    parser_top_correct: bool
    has_correct_candidate: bool

    @property
    def user_selected_correct(self) -> bool:
        index = self.decision.selected_index
        return index is not None and self.displayed_correctness[index]

    @property
    def question_success(self) -> bool:
        """The Table 4 notion of success: right selection or a justified None."""
        if self.decision.selected_index is None:
            return not self.has_correct_candidate
        return self.displayed_correctness[self.decision.selected_index]

    @property
    def hybrid_correct(self) -> bool:
        """Hybrid policy: user's pick if any, otherwise the parser's top query."""
        if self.decision.selected_index is not None:
            return self.displayed_correctness[self.decision.selected_index]
        return self.parser_top_correct


@dataclass
class StudyResult:
    """Aggregated user-study measurements."""

    trials: List[QuestionTrial] = field(default_factory=list)
    k: int = 7

    # -- Table 4 -------------------------------------------------------------------
    @property
    def distinct_questions(self) -> int:
        return len({trial.example.question for trial in self.trials})

    @property
    def explanations_shown(self) -> int:
        return sum(len(trial.displayed_candidates) for trial in self.trials)

    @property
    def question_success_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(trial.question_success for trial in self.trials) / len(self.trials)

    # -- Table 6 -------------------------------------------------------------------
    @property
    def parser_correctness(self) -> float:
        if not self.trials:
            return 0.0
        return sum(trial.parser_top_correct for trial in self.trials) / len(self.trials)

    @property
    def user_correctness(self) -> float:
        if not self.trials:
            return 0.0
        return sum(trial.user_selected_correct for trial in self.trials) / len(self.trials)

    @property
    def hybrid_correctness(self) -> float:
        if not self.trials:
            return 0.0
        return sum(trial.hybrid_correct for trial in self.trials) / len(self.trials)

    @property
    def correctness_bound(self) -> float:
        if not self.trials:
            return 0.0
        return sum(trial.has_correct_candidate for trial in self.trials) / len(self.trials)

    # -- Table 5 -------------------------------------------------------------------
    def worker_minutes(self) -> Dict[str, float]:
        """Total work time per worker, in minutes."""
        totals: Dict[str, float] = {}
        for trial in self.trials:
            totals[trial.worker_id] = totals.get(trial.worker_id, 0.0) + trial.decision.seconds
        return {worker: seconds / 60.0 for worker, seconds in totals.items()}

    def correct_counts(self) -> Dict[str, int]:
        """Raw correct-example counts (the numerators of Table 6)."""
        return {
            "parser": sum(trial.parser_top_correct for trial in self.trials),
            "users": sum(trial.user_selected_correct for trial in self.trials),
            "hybrid": sum(trial.hybrid_correct for trial in self.trials),
            "bound": sum(trial.has_correct_candidate for trial in self.trials),
            "total": len(self.trials),
        }

    def summary(self) -> Dict[str, float]:
        return {
            "questions": float(self.distinct_questions),
            "trials": float(len(self.trials)),
            "explanations": float(self.explanations_shown),
            "success_rate": self.question_success_rate,
            "parser_correctness": self.parser_correctness,
            "user_correctness": self.user_correctness,
            "hybrid_correctness": self.hybrid_correctness,
            "correctness_bound": self.correctness_bound,
        }


@dataclass
class StudyConfig:
    """Configuration of a study run."""

    k: int = 7
    questions_per_worker: int = 20
    shuffle_candidates: bool = True
    seed: int = 17
    perturbations: int = 2


class UserStudy:
    """Runs the interactive-parsing user study with simulated workers."""

    def __init__(self, parser: SemanticParser, config: Optional[StudyConfig] = None) -> None:
        self.parser = parser
        self.config = config or StudyConfig()
        self._random = random.Random(self.config.seed)

    def run_question(
        self, example: EvaluationExample, worker: SimulatedWorker
    ) -> QuestionTrial:
        """Run one question with one worker."""
        parse = self.parser.parse(example.question, example.table)
        ranked = parse.top_k(self.config.k)
        correct_indices = set(
            find_correct_indices(ranked, example, perturbations=self.config.perturbations)
        )
        parser_top_correct = 0 in correct_indices

        order = list(range(len(ranked)))
        if self.config.shuffle_candidates:
            self._random.shuffle(order)
        displayed = [ranked[i] for i in order]
        displayed_correctness = [i in correct_indices for i in order]

        decision = worker.review_question(displayed_correctness)
        return QuestionTrial(
            example=example,
            worker_id=worker.worker_id,
            displayed_candidates=displayed,
            displayed_correctness=displayed_correctness,
            decision=decision,
            parser_top_correct=parser_top_correct,
            has_correct_candidate=bool(correct_indices),
        )

    def run(
        self,
        examples: Sequence[EvaluationExample],
        workers: Sequence[SimulatedWorker],
    ) -> StudyResult:
        """Distribute questions over workers (``questions_per_worker`` each).

        Questions are dealt round-robin so every worker sees a distinct
        block, mirroring the paper's protocol of 20 random questions per
        participant.
        """
        result = StudyResult(k=self.config.k)
        per_worker = self.config.questions_per_worker
        example_index = 0
        for worker in workers:
            for _ in range(per_worker):
                if example_index >= len(examples):
                    return result
                example = examples[example_index]
                example_index += 1
                result.trials.append(self.run_question(example, worker))
        return result


def run_worktime_comparison(
    parser: SemanticParser,
    examples: Sequence[EvaluationExample],
    workers_per_group: int = 10,
    questions_per_worker: int = 20,
    k: int = 7,
    seed: int = 29,
) -> Dict[ExplanationMode, StudyResult]:
    """The Table 5 experiment: two worker groups, one per explanation condition."""
    results: Dict[ExplanationMode, StudyResult] = {}
    for group_index, mode in enumerate(
        (ExplanationMode.UTTERANCES_AND_HIGHLIGHTS, ExplanationMode.UTTERANCES_ONLY)
    ):
        study = UserStudy(
            parser,
            StudyConfig(k=k, questions_per_worker=questions_per_worker, seed=seed + group_index),
        )
        workers = worker_pool(workers_per_group, mode=mode, seed=seed + 100 * group_index)
        results[mode] = study.run(examples, workers)
    return results
