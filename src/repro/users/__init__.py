"""Simulated crowd workers and the user-study / feedback harnesses."""

from .timing import ExplanationMode, TimingParameters, WorkTimeModel
from .worker import JudgmentParameters, SimulatedWorker, WorkerDecision, worker_pool
from .study import (
    QuestionTrial,
    StudyConfig,
    StudyResult,
    UserStudy,
    run_worktime_comparison,
)
from .feedback import (
    AnnotationRecord,
    FeedbackCollector,
    FeedbackConfig,
    FeedbackResult,
)

__all__ = [
    "ExplanationMode",
    "TimingParameters",
    "WorkTimeModel",
    "JudgmentParameters",
    "SimulatedWorker",
    "WorkerDecision",
    "worker_pool",
    "UserStudy",
    "StudyConfig",
    "StudyResult",
    "QuestionTrial",
    "run_worktime_comparison",
    "FeedbackCollector",
    "FeedbackConfig",
    "FeedbackResult",
    "AnnotationRecord",
]
