"""Work-time models for simulated crowd workers (paper Table 5).

The paper measured how long AMT workers took to answer 20 questions under
two explanation conditions:

* utterances + provenance highlights — 16.2 minutes on average,
* utterances only — 24.7 minutes on average.

The simulated workers reproduce that *mechanism*: reading an NL utterance
takes a roughly constant time per candidate, while a highlight lets the
worker discard obviously-wrong candidates after a quick glance.  The
per-candidate inspection times below are calibrated so that 20 questions
with 7 candidates each land near the paper's per-condition totals, with
worker-level noise on top.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum


class ExplanationMode(Enum):
    """What the worker is shown for each candidate query."""

    UTTERANCES_AND_HIGHLIGHTS = "utterances+highlights"
    UTTERANCES_ONLY = "utterances"
    FORMAL_ONLY = "lambda-dcs"


@dataclass(frozen=True)
class TimingParameters:
    """Per-candidate inspection-time parameters (seconds)."""

    read_utterance_seconds: float = 9.5
    glance_highlight_seconds: float = 3.0
    read_formal_seconds: float = 12.0
    question_overhead_seconds: float = 8.0
    noise_fraction: float = 0.25
    #: Fraction of candidates a highlight lets the worker discard at a glance.
    highlight_skip_fraction: float = 0.7


class WorkTimeModel:
    """Samples per-question work times for one worker and condition."""

    def __init__(
        self,
        mode: ExplanationMode,
        parameters: TimingParameters = TimingParameters(),
        seed: int = 0,
    ) -> None:
        self.mode = mode
        self.parameters = parameters
        self._random = random.Random(seed)

    def question_seconds(self, num_candidates: int) -> float:
        """Time (seconds) to judge one question with ``num_candidates`` candidates."""
        params = self.parameters
        if self.mode == ExplanationMode.UTTERANCES_AND_HIGHLIGHTS:
            # A glance at the highlight discards most candidates; the remaining
            # ones still require reading the utterance to be sure.
            skipped = params.highlight_skip_fraction * num_candidates
            read_fully = num_candidates - skipped
            base = (
                num_candidates * params.glance_highlight_seconds
                + read_fully * params.read_utterance_seconds
            )
        elif self.mode == ExplanationMode.UTTERANCES_ONLY:
            base = num_candidates * params.read_utterance_seconds
        else:
            base = num_candidates * params.read_formal_seconds
        base += params.question_overhead_seconds
        noise = self._random.gauss(0.0, params.noise_fraction * base / 3.0)
        return max(base * 0.4, base + noise)

    def session_minutes(self, num_questions: int, candidates_per_question: int) -> float:
        """Total time in minutes for a session of ``num_questions`` questions."""
        total_seconds = sum(
            self.question_seconds(candidates_per_question) for _ in range(num_questions)
        )
        return total_seconds / 60.0
