"""Lightweight schema inspection for web tables.

The semantic parser and the question generator both need to know, per
column, whether the column is numeric, date-like or textual, and which
columns are good candidates for aggregation, superlatives and arithmetic
difference.  This module infers that information from a table's cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .fingerprint import LRUCache
from .table import Table
from .values import DateValue, NumberValue, StringValue


@dataclass(frozen=True)
class ColumnProfile:
    """Summary statistics for one table column."""

    name: str
    numeric_fraction: float
    date_fraction: float
    distinct_count: int
    total_count: int

    @property
    def is_numeric(self) -> bool:
        return self.numeric_fraction >= 0.8

    @property
    def is_date(self) -> bool:
        return self.date_fraction >= 0.8

    @property
    def is_textual(self) -> bool:
        return not self.is_numeric and not self.is_date

    @property
    def distinct_fraction(self) -> float:
        if self.total_count == 0:
            return 0.0
        return self.distinct_count / self.total_count


@dataclass(frozen=True)
class TableSchema:
    """Per-column profiles for a table."""

    table_name: str
    profiles: Dict[str, ColumnProfile]

    def column(self, name: str) -> ColumnProfile:
        return self.profiles[name]

    @property
    def numeric_columns(self) -> List[str]:
        return [name for name, p in self.profiles.items() if p.is_numeric]

    @property
    def date_columns(self) -> List[str]:
        return [name for name, p in self.profiles.items() if p.is_date]

    @property
    def textual_columns(self) -> List[str]:
        return [name for name, p in self.profiles.items() if p.is_textual]

    @property
    def comparable_columns(self) -> List[str]:
        """Columns usable for superlatives / comparisons (numeric or date)."""
        return [
            name
            for name, profile in self.profiles.items()
            if profile.is_numeric or profile.is_date
        ]


def profile_column(table: Table, column: str) -> ColumnProfile:
    """Compute the :class:`ColumnProfile` of one column."""
    values = table.column_values(column)
    total = len(values)
    if total == 0:
        return ColumnProfile(column, 0.0, 0.0, 0, 0)
    numeric = sum(1 for v in values if isinstance(v, NumberValue))
    dates = sum(1 for v in values if isinstance(v, DateValue))
    distinct = len({
        v.normalized if isinstance(v, StringValue) else v.display() for v in values
    })
    return ColumnProfile(
        name=column,
        numeric_fraction=numeric / total,
        date_fraction=dates / total,
        distinct_count=distinct,
        total_count=total,
    )


def infer_schema(table: Table) -> TableSchema:
    """Profile every column of a table."""
    return TableSchema(
        table_name=table.name,
        profiles={column: profile_column(table, column) for column in table.columns},
    )


#: Content-addressed profile cache backing :func:`table_schema`.  Profiles
#: are derived purely from headers and typed cells, so they are safely
#: shared between equal-content tables (the table *name* is re-attached
#: per call and never cached).
_PROFILE_CACHE = LRUCache(maxsize=256)


def clear_schema_cache() -> None:
    """Drop every cached column profile (benchmarks use this so each
    measured mode starts cold)."""
    _PROFILE_CACHE.clear()


def evict_schema(fingerprint) -> None:
    """Drop one table content's cached profiles (the shard-eviction hook)."""
    _PROFILE_CACHE.pop(fingerprint)


def table_schema(table: Table) -> TableSchema:
    """The (cached) :class:`TableSchema` of ``table``'s content.

    Identical to :func:`infer_schema` in output, but the per-column
    profiling — an O(cells) pass — runs once per table *content*: the
    candidate validator used to recompute it for every one of the ~600
    candidates of a question.
    """
    profiles = _PROFILE_CACHE.get_or_create(
        table.fingerprint,
        lambda: {column: profile_column(table, column) for column in table.columns},
    )
    return TableSchema(table_name=table.name, profiles=profiles)
