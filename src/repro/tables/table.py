"""The web-table data model.

Section 3.1 of the paper: a table ``T`` is an ordered list of records, each
record has a unique ``Index`` (0, 1, 2, ...) and a ``Prev`` pointer to the
record above it.  Cells contain typed values (string, number or date).

The classes in this module are deliberately simple containers; query
execution lives in :mod:`repro.dcs.executor` and provenance in
:mod:`repro.core.provenance`, both of which address cells through the
:class:`Cell` objects defined here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .fingerprint import TableFingerprint, fingerprint_table
from .values import RawValue, Value, parse_value


class TableError(Exception):
    """Raised on malformed tables or invalid column/record access."""


@dataclass(frozen=True)
class Cell:
    """A single table cell.

    A cell knows its position (record index, column name) and its typed
    value.  Cells are the atoms of the provenance model: the provenance
    functions ``PO``, ``PE`` and ``PC`` all return sets of cells.
    """

    row_index: int
    column: str
    value: Value

    @property
    def coordinate(self) -> Tuple[int, str]:
        return (self.row_index, self.column)

    def display(self) -> str:
        return self.value.display()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Cell({self.row_index}, {self.column!r}, {self.value.display()!r})"


@dataclass(frozen=True)
class Record:
    """A table record (row) with its unique index.

    ``prev_index`` implements the paper's ``Prev`` pointer; it is ``None``
    for the first record.
    """

    index: int
    cells: Tuple[Cell, ...]

    @property
    def prev_index(self) -> Optional[int]:
        return self.index - 1 if self.index > 0 else None

    def cell(self, column: str) -> Cell:
        for cell in self.cells:
            if cell.column == column:
                return cell
        raise TableError(f"record {self.index} has no column {column!r}")

    def value(self, column: str) -> Value:
        return self.cell(column).value

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)


class Table:
    """An ordered web table.

    Parameters
    ----------
    columns:
        Column header names, in display order.  Headers must be unique.
    rows:
        Iterable of row contents.  Each row is a sequence of raw values
        (strings, numbers, dates or :class:`~repro.tables.values.Value`)
        with the same arity as ``columns``.
    name:
        Optional human-readable table title (e.g. the Wikipedia page name).
    date_columns:
        Column names whose bare-year strings should be parsed as dates
        rather than numbers.
    """

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterable[Sequence[RawValue]],
        name: str = "table",
        date_columns: Optional[Sequence[str]] = None,
    ) -> None:
        self.name = name
        self.columns: List[str] = [str(c) for c in columns]
        if len(set(self.columns)) != len(self.columns):
            raise TableError(f"duplicate column headers in {self.columns}")
        date_columns = set(date_columns or ())
        unknown = date_columns - set(self.columns)
        if unknown:
            raise TableError(f"date_columns not in table: {sorted(unknown)}")

        records: List[Record] = []
        for row_index, row in enumerate(rows):
            row = list(row)
            if len(row) != len(self.columns):
                raise TableError(
                    f"row {row_index} has {len(row)} cells, expected {len(self.columns)}"
                )
            cells = tuple(
                Cell(
                    row_index=row_index,
                    column=column,
                    value=parse_value(raw, prefer_date_for_years=column in date_columns),
                )
                for column, raw in zip(self.columns, row)
            )
            records.append(Record(index=row_index, cells=cells))
        self.records: Tuple[Record, ...] = tuple(records)
        self._column_cells: Dict[str, Tuple[Cell, ...]] = {
            column: tuple(record.cell(column) for record in self.records)
            for column in self.columns
        }
        self._fingerprint: Optional[TableFingerprint] = None

    # -- basic introspection --------------------------------------------------
    @property
    def fingerprint(self) -> TableFingerprint:
        """The content-addressed identity of this table.

        A stable SHA-256 over headers and typed cells (the table *name* is
        excluded); see :class:`~repro.tables.fingerprint.TableFingerprint`
        for the exact contract.  Computed lazily once per table object —
        tables are immutable after construction, so the cached digest can
        never go stale.
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint_table(self)
        return self._fingerprint

    @property
    def num_rows(self) -> int:
        return len(self.records)

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return self.num_rows

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def has_column(self, column: str) -> bool:
        return column in self._column_cells

    def record(self, index: int) -> Record:
        if not 0 <= index < self.num_rows:
            raise TableError(f"record index out of range: {index}")
        return self.records[index]

    def column_cells(self, column: str) -> Tuple[Cell, ...]:
        """All cells of a column, in record order."""
        try:
            return self._column_cells[column]
        except KeyError:
            raise TableError(f"table {self.name!r} has no column {column!r}") from None

    def column_values(self, column: str) -> List[Value]:
        return [cell.value for cell in self.column_cells(column)]

    def cell(self, row_index: int, column: str) -> Cell:
        return self.record(row_index).cell(column)

    def all_cells(self) -> List[Cell]:
        return [cell for record in self.records for cell in record.cells]

    # -- convenience constructors --------------------------------------------
    @classmethod
    def from_dicts(
        cls,
        rows: Sequence[Dict[str, RawValue]],
        columns: Optional[Sequence[str]] = None,
        name: str = "table",
        date_columns: Optional[Sequence[str]] = None,
    ) -> "Table":
        """Build a table from a list of ``{column: value}`` dictionaries."""
        if not rows and columns is None:
            raise TableError("cannot infer columns from an empty row list")
        if columns is None:
            columns = list(rows[0].keys())
        data = [[row.get(column) for column in columns] for row in rows]
        return cls(columns=columns, rows=data, name=name, date_columns=date_columns)

    def to_dicts(self) -> List[Dict[str, str]]:
        """Export rows as display-string dictionaries (for rendering/IO)."""
        return [
            {cell.column: cell.display() for cell in record.cells}
            for record in self.records
        ]

    def subtable(self, row_indices: Sequence[int], name: Optional[str] = None) -> "Table":
        """A new table containing only the given records (re-indexed)."""
        rows = []
        for index in row_indices:
            record = self.record(index)
            rows.append([record.value(column) for column in self.columns])
        return Table(columns=self.columns, rows=rows, name=name or f"{self.name}[sample]")

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Table({self.name!r}, {self.num_rows}x{self.num_columns})"
