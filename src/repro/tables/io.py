"""Loading and saving tables.

WikiTableQuestions distributes its tables as CSV/TSV files; this module
provides the equivalent IO for the reproduction: CSV, TSV and JSON
round-tripping of :class:`~repro.tables.table.Table` objects.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import List, Optional, Sequence, Union

from .table import Table, TableError

PathLike = Union[str, Path]


def table_from_csv(
    source: Union[PathLike, io.TextIOBase],
    delimiter: str = ",",
    name: Optional[str] = None,
    date_columns: Optional[Sequence[str]] = None,
) -> Table:
    """Load a table from a CSV (or TSV) file or file-like object.

    The first row is taken as the header.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        with path.open(newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle, delimiter=delimiter))
        table_name = name or path.stem
    else:
        rows = list(csv.reader(source, delimiter=delimiter))
        table_name = name or "table"
    if not rows:
        raise TableError("empty CSV: no header row")
    header, data = rows[0], rows[1:]
    return Table(columns=header, rows=data, name=table_name, date_columns=date_columns)


def table_from_tsv(
    source: Union[PathLike, io.TextIOBase],
    name: Optional[str] = None,
    date_columns: Optional[Sequence[str]] = None,
) -> Table:
    """Load a table from a TSV file (the WikiTableQuestions on-disk format)."""
    return table_from_csv(source, delimiter="\t", name=name, date_columns=date_columns)


def table_to_csv(table: Table, destination: Union[PathLike, io.TextIOBase], delimiter: str = ",") -> None:
    """Write a table's display values to CSV."""
    def _write(handle) -> None:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.columns)
        for record in table.records:
            writer.writerow([cell.display() for cell in record.cells])

    if isinstance(destination, (str, Path)):
        with Path(destination).open("w", newline="", encoding="utf-8") as handle:
            _write(handle)
    else:
        _write(destination)


def table_to_json(table: Table) -> str:
    """Serialise a table (name, columns, display rows) to a JSON string."""
    payload = {
        "name": table.name,
        "columns": table.columns,
        "rows": [[cell.display() for cell in record.cells] for record in table.records],
    }
    return json.dumps(payload, ensure_ascii=False, indent=2)


def table_from_json(
    text: str, date_columns: Optional[Sequence[str]] = None
) -> Table:
    """Deserialise a table from the JSON produced by :func:`table_to_json`."""
    payload = json.loads(text)
    missing = {"name", "columns", "rows"} - set(payload)
    if missing:
        raise TableError(f"JSON table missing keys: {sorted(missing)}")
    return Table(
        columns=payload["columns"],
        rows=payload["rows"],
        name=payload["name"],
        date_columns=date_columns,
    )


def save_tables(tables: List[Table], directory: PathLike) -> List[Path]:
    """Save a list of tables as individual JSON files in a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for i, table in enumerate(tables):
        path = directory / f"{i:04d}_{_slug(table.name)}.json"
        path.write_text(table_to_json(table), encoding="utf-8")
        paths.append(path)
    return paths


def load_tables(directory: PathLike) -> List[Table]:
    """Load every ``*.json`` table in a directory (sorted by filename)."""
    directory = Path(directory)
    tables = []
    for path in sorted(directory.glob("*.json")):
        tables.append(table_from_json(path.read_text(encoding="utf-8")))
    return tables


def _slug(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name.lower())[:40]
