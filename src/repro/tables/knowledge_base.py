"""Knowledge-base view of a table.

The paper (Section 3.1) describes the table as a knowledge base
``K ⊆ E × P × E`` where the entity set ``E`` contains all table cells and
all table records, and the property set ``P`` contains the column headers,
each acting as a binary relation from a cell value to the records in which
that value appears.

This module materialises that view.  The semantic parser's lexicon uses it
to link question tokens to table entities, and the lambda DCS executor uses
it to resolve joins such as ``Country.Greece``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from .table import Table
from .values import StringValue, Value, values_equal


@dataclass(frozen=True)
class Triple:
    """A single KB triple ``(record_index, property, value)``."""

    record_index: int
    property: str
    value: Value


class KnowledgeBase:
    """An index over a table's (record, column, value) triples.

    The KB offers the two lookups that drive lambda DCS joins:

    * ``records_with_value(column, value)`` — the ``C.v`` join,
    * ``values_of_records(column, indices)`` — the ``R[C].records`` reverse join.
    """

    def __init__(self, table: Table) -> None:
        self.table = table
        self._triples: List[Triple] = []
        self._by_property: Dict[str, List[Triple]] = defaultdict(list)
        self._value_index: Dict[Tuple[str, Value], Set[int]] = defaultdict(set)
        #: Value types present per column: the cross-type scan in
        #: :meth:`records_with_value` is skipped when a column is
        #: homogeneous in the probe's type (the typed index is complete
        #: there), which keeps the common case O(1).
        self._column_types: Dict[str, Set[type]] = defaultdict(set)
        for record in table.records:
            for cell in record.cells:
                triple = Triple(record.index, cell.column, cell.value)
                self._triples.append(triple)
                self._by_property[cell.column].append(triple)
                self._value_index[(cell.column, cell.value)].add(record.index)
                self._column_types[cell.column].add(type(cell.value))

    # -- entity / property enumeration ---------------------------------------
    @property
    def properties(self) -> List[str]:
        return list(self.table.columns)

    @property
    def triples(self) -> List[Triple]:
        return list(self._triples)

    def entities(self) -> Set[Value]:
        """All distinct cell values in the table."""
        return {triple.value for triple in self._triples}

    def column_entities(self, column: str) -> Set[Value]:
        return {triple.value for triple in self._by_property[column]}

    # -- joins ----------------------------------------------------------------
    def records_with_value(self, column: str, value: Value) -> FrozenSet[int]:
        """Indices of records where ``column`` holds ``value`` (the ``C.v`` join).

        The contract mirrors :class:`~repro.tables.index.TableIndex`: every
        record whose cell satisfies :func:`values_equal` is returned.  The
        typed index answers same-type matches in O(1); cross-type matches
        (the string ``"2004"`` against the number ``2004``) come from a
        scan over the column's *other-typed* cells, which a homogeneous
        column — the common case — skips entirely.  An exact hit must NOT
        short-circuit that scan: a column holding both ``"2004"`` and
        ``2004`` owes the join both records.
        """
        exact = self._value_index.get((column, value))
        matches: Set[int] = set(exact) if exact is not None else set()
        probe_type = type(value)
        if self._column_types.get(column, set()) - {probe_type}:
            for triple in self._by_property.get(column, ()):
                if type(triple.value) is not probe_type and values_equal(
                    triple.value, value
                ):
                    matches.add(triple.record_index)
        return frozenset(matches)

    def values_of_records(self, column: str, indices) -> List[Value]:
        """Values of ``column`` in the given records (``R[C].records``)."""
        column_cells = self.table.column_cells(column)
        return [column_cells[i].value for i in sorted(indices)]

    # -- string search (used by the parser lexicon) ---------------------------
    def find_entity(self, text: str) -> List[Tuple[str, Value]]:
        """Find table values whose textual form matches ``text``.

        Returns ``(column, value)`` pairs; matching is case-insensitive on
        the normalised string form.
        """
        target = StringValue(text).normalized
        matches: List[Tuple[str, Value]] = []
        seen: Set[Tuple[str, Value]] = set()
        for triple in self._triples:
            key = (triple.property, triple.value)
            if key in seen:
                continue
            display = StringValue(triple.value.display()).normalized
            if display == target:
                matches.append(key)
                seen.add(key)
        return matches

    def find_columns(self, text: str) -> List[str]:
        """Columns whose header matches ``text`` (case-insensitive)."""
        target = StringValue(text).normalized
        return [
            column
            for column in self.table.columns
            if StringValue(column).normalized == target
        ]
