"""Content diffs between two :class:`~repro.tables.table.Table` versions.

The live-corpus mutation path (``TableCatalog.update``) needs to know
*what part* of a table an edit touched, so every downstream structure —
per-column indexes, corpus postings, parser caches — can be maintained
incrementally instead of rebuilt.  A :class:`TableDiff` answers exactly
that question: which columns and rows differ between two table contents,
compared through typed-value equality (the same dataclass equality the
fingerprint hashes over, so ``diff.identical`` ⇔ equal fingerprints for
equal headers).

The one subtlety is the **row-count rule**: per-column structures
(:class:`~repro.tables.index.ColumnIndex`) embed row indices, so a
column is only reusable when the row set is unchanged.  When row counts
differ, every surviving column is reported changed — callers never need
to re-derive that invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .table import Table


@dataclass(frozen=True)
class TableDiff:
    """What changed between two table versions.

    ``changed_columns`` lists the columns present in *both* versions
    whose cell content differs (all of them when the row count changed —
    see the module docstring); added/removed columns are reported
    separately.  ``changed_rows`` lists the row indices with at least one
    differing cell (rows beyond the shorter table count as changed).
    """

    old_digest: str
    new_digest: str
    changed_columns: Tuple[str, ...]
    added_columns: Tuple[str, ...]
    removed_columns: Tuple[str, ...]
    changed_rows: Tuple[int, ...]
    row_count_changed: bool

    @property
    def identical(self) -> bool:
        """Whether the two versions have equal content (same fingerprint)."""
        return self.old_digest == self.new_digest

    @property
    def num_changed_cells_upper_bound(self) -> int:
        """A cheap upper bound on touched cells (for churn accounting)."""
        return len(self.changed_columns) * max(len(self.changed_rows), 1)

    def unchanged_columns(self, table: Table) -> Tuple[str, ...]:
        """``table``'s columns whose per-column structures are reusable."""
        changed = set(self.changed_columns) | set(self.added_columns)
        return tuple(
            column for column in table.columns if column not in changed
        )


def diff_tables(old: Table, new: Table) -> TableDiff:
    """The content diff from ``old`` to ``new``.

    Cells are compared through typed-value equality (``Value`` dataclass
    equality), never display strings, so a retyped cell (``"2004"`` the
    string vs ``2004`` the number) registers as changed exactly when the
    fingerprint does.
    """
    old_columns = set(old.columns)
    new_columns = set(new.columns)
    added = tuple(c for c in new.columns if c not in old_columns)
    removed = tuple(c for c in old.columns if c not in new_columns)
    common = [c for c in new.columns if c in old_columns]

    row_count_changed = old.num_rows != new.num_rows
    shared_rows = min(old.num_rows, new.num_rows)
    total_rows = max(old.num_rows, new.num_rows)

    changed_columns = []
    changed_rows = set(range(shared_rows, total_rows))
    for column in common:
        old_cells = old.column_cells(column)
        new_cells = new.column_cells(column)
        column_changed = row_count_changed
        for row in range(shared_rows):
            if old_cells[row].value != new_cells[row].value:
                column_changed = True
                changed_rows.add(row)
        if column_changed:
            changed_columns.append(column)

    return TableDiff(
        old_digest=old.fingerprint.digest,
        new_digest=new.fingerprint.digest,
        changed_columns=tuple(changed_columns),
        added_columns=added,
        removed_columns=removed,
        changed_rows=tuple(sorted(changed_rows)),
        row_count_changed=row_count_changed,
    )
