"""Content-addressed table identity and the caches built on top of it.

Long-running deployments (Section 6 of the paper: the interface answers a
stream of questions over many tables) need per-table caches — lexicons,
candidate grammars, execution results.  Keying those caches by ``id(table)``
is wrong twice over: CPython reuses object ids after garbage collection, so
two *different* tables can silently alias the same cache slot, and the cache
grows without bound because ids of dead tables are never evicted.

This module provides the fix used throughout the repository:

* :class:`TableFingerprint` — a stable, content-addressed identity for a
  table: a SHA-256 digest over the table's schema (headers, in order) and
  every typed cell.  Two tables with identical content share a fingerprint
  (so caches are shared between them); any change to a header, a cell value
  or a cell *type* changes the fingerprint.
* :class:`LRUCache` — a small, thread-safe, bounded LRU mapping used for
  every fingerprint-keyed cache (parser lexicons/grammars, explanation
  generators, candidate lists, execution results).

The fingerprint is exposed as :attr:`repro.tables.table.Table.fingerprint`
and computed lazily exactly once per table object.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, Optional

from .values import DateValue, NumberValue, StringValue, Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (table.py imports us)
    from .table import Table


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableFingerprint:
    """A content-addressed identity for a :class:`~repro.tables.table.Table`.

    The fingerprint contract:

    * **Determinism** — rebuilding a table from the same columns and rows
      always yields the same fingerprint, across processes and sessions.
    * **Sensitivity** — changing any header, any cell value, the type of
      any cell (e.g. a column switching from numbers to dates), the row
      order or the column order changes the fingerprint.
    * **Name-independence** — the table *title* is display metadata and is
      deliberately excluded, so two identical tables loaded under
      different names share caches.

    Attributes
    ----------
    digest:
        Hex SHA-256 over the canonical serialisation of schema + cells.
    num_rows / num_columns:
        Shape metadata, carried along for observability (bench reports,
        cache statistics).  They participate in dataclass equality, but
        the canonical serialisation is injective, so two fingerprints
        with equal digests always carry equal shapes as well.
    """

    digest: str
    num_rows: int
    num_columns: int

    @property
    def short(self) -> str:
        """A 12-hex-digit abbreviation for logs and bench reports."""
        return self.digest[:12]

    def __str__(self) -> str:
        return self.short


def _cell_token(value: Value) -> str:
    """A canonical, type-tagged token for one cell value."""
    if isinstance(value, StringValue):
        return f"s\x1f{value.text}"
    if isinstance(value, NumberValue):
        return f"n\x1f{value.number!r}"
    if isinstance(value, DateValue):
        return f"d\x1f{value.year}\x1f{value.month}\x1f{value.day}"
    return f"?\x1f{type(value).__name__}\x1f{value.display()}"  # pragma: no cover


def fingerprint_table(table: "Table") -> TableFingerprint:
    """Compute the content-addressed fingerprint of ``table``.

    Prefer the cached :attr:`Table.fingerprint` property; this function is
    the underlying (stateless) implementation.

    Every token is length-prefixed before hashing, which makes the
    serialisation injective: a delimiter character *inside* a header or
    cell text cannot shift token boundaries, so two different tables can
    never share a digest by construction.
    """

    def feed(hasher, token: str) -> None:
        data = token.encode("utf-8", "surrogatepass")
        hasher.update(f"{len(data)}:".encode("ascii"))
        hasher.update(data)

    hasher = hashlib.sha256()
    hasher.update(b"repro-table-v2\x1e")
    for column in table.columns:
        feed(hasher, column)
    hasher.update(b"\x1e")
    for record in table.records:
        for cell in record.cells:
            feed(hasher, _cell_token(cell.value))
        hasher.update(b"\x1e")
    return TableFingerprint(
        digest=hasher.hexdigest(),
        num_rows=table.num_rows,
        num_columns=table.num_columns,
    )


# ---------------------------------------------------------------------------
# the bounded LRU backing every fingerprint-keyed cache
# ---------------------------------------------------------------------------

_MISSING = object()


class LRUCache:
    """A thread-safe, bounded least-recently-used mapping.

    Used for every content-addressed cache in the repository: parser
    lexicons and grammars, explanation generators, per-question candidate
    lists and memoized execution results.  Eviction keeps long-running
    deployments at a fixed memory footprint; hit/miss/eviction counters
    feed the bench reports and ``SemanticParser.cache_stats()``.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"LRUCache needs maxsize >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- mapping interface ----------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency.  Counts a hit or miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_create(self, key: Any, factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on a miss.

        The factory runs *outside* the lock so that an expensive build
        (e.g. a candidate grammar) never serialises unrelated lookups;
        when two threads race on the same key the first inserted value
        wins and the duplicate is discarded, which is safe because every
        factory used in this repository is deterministic.
        """
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self._data.move_to_end(key)
                self.hits += 1
                return value
            self.misses += 1
        built = factory()
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self._data.move_to_end(key)
                return value
            self._data[key] = built
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
            return built

    def pop(self, key: Any, default: Any = None) -> Any:
        """Remove and return ``key``'s value (no hit/miss counting).

        Explicit removal — used by shard eviction — is bookkeeping, not
        lookup traffic, so the counters stay untouched.
        """
        with self._lock:
            value = self._data.pop(key, _MISSING)
            return default if value is _MISSING else value

    # -- introspection --------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> Iterator[Any]:
        with self._lock:
            return iter(list(self._data.keys()))

    def items(self):
        """A snapshot of ``(key, value)`` pairs (no recency/counter effects)."""
        with self._lock:
            return list(self._data.items())

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for bench reports: size, capacity, hits, misses, evictions."""
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"LRUCache({len(self)}/{self.maxsize}, hits={self.hits}, misses={self.misses})"
