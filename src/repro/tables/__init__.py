"""Web-table substrate: the data model of Section 3.1 of the paper."""

from .values import (
    DateValue,
    NumberValue,
    StringValue,
    Value,
    parse_date,
    parse_number,
    parse_value,
    values_equal,
)
from .fingerprint import LRUCache, TableFingerprint, fingerprint_table
from .table import Cell, Record, Table, TableError
from .index import (
    ColumnIndex,
    TableIndex,
    clear_index_cache,
    evict_index,
    index_cache_stats,
    table_index,
)
from .knowledge_base import KnowledgeBase, Triple
from .catalog import (
    AmbiguousTableError,
    CatalogAnswer,
    CatalogError,
    TableCatalog,
    TableRef,
    UnknownTableError,
)
from .schema import (
    ColumnProfile,
    TableSchema,
    evict_schema,
    infer_schema,
    profile_column,
    table_schema,
)
from .io import (
    load_tables,
    save_tables,
    table_from_csv,
    table_from_json,
    table_from_tsv,
    table_to_csv,
    table_to_json,
)

__all__ = [
    "Value",
    "StringValue",
    "NumberValue",
    "DateValue",
    "parse_value",
    "parse_number",
    "parse_date",
    "values_equal",
    "Cell",
    "Record",
    "Table",
    "TableError",
    "TableFingerprint",
    "fingerprint_table",
    "LRUCache",
    "ColumnIndex",
    "TableIndex",
    "table_index",
    "index_cache_stats",
    "clear_index_cache",
    "evict_index",
    "evict_schema",
    "KnowledgeBase",
    "Triple",
    "TableCatalog",
    "TableRef",
    "CatalogAnswer",
    "CatalogError",
    "UnknownTableError",
    "AmbiguousTableError",
    "ColumnProfile",
    "TableSchema",
    "infer_schema",
    "profile_column",
    "table_schema",
    "table_from_csv",
    "table_from_tsv",
    "table_from_json",
    "table_to_csv",
    "table_to_json",
    "save_tables",
    "load_tables",
]
