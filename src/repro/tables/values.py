"""Typed cell values for web tables.

The paper's data model (Section 3.1) allows table cells to hold strings,
numbers or dates.  Lambda DCS operators compare, aggregate and subtract
values, so every cell content is normalised into one of three value classes:

* :class:`StringValue` -- free text, compared case-insensitively,
* :class:`NumberValue` -- a float (possibly extracted from text such as
  ``"$150,000"`` or ``"130 medals"``),
* :class:`DateValue`  -- a (year, month, day) triple with partial dates
  allowed (e.g. a bare year ``2004``).

The :func:`parse_value` helper mirrors the normalisation performed by the
WikiTableQuestions preprocessing: it attempts date parsing, then numeric
parsing, and falls back to a string value.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from functools import total_ordering
from typing import Optional, Union


class ValueError_(Exception):
    """Raised when a value cannot be interpreted in the requested way."""


@total_ordering
@dataclass(frozen=True)
class Value:
    """Abstract base class for typed cell values.

    Values are immutable, hashable and totally ordered *within* the same
    type; comparisons across types fall back to a stable type ordering so
    that sorting mixed columns never raises.
    """

    def sort_key(self):
        raise NotImplementedError

    # -- ordering -----------------------------------------------------------
    def __lt__(self, other: "Value") -> bool:
        if not isinstance(other, Value):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    # -- numeric view -------------------------------------------------------
    @property
    def is_numeric(self) -> bool:
        return False

    def as_number(self) -> float:
        raise ValueError_(f"{self!r} is not numeric")

    def display(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class StringValue(Value):
    """A textual cell value.  Equality is case- and whitespace-insensitive."""

    text: str

    def __post_init__(self):
        object.__setattr__(self, "text", str(self.text))

    @property
    def normalized(self) -> str:
        return " ".join(self.text.strip().lower().split())

    def sort_key(self):
        return (2, self.normalized)

    def display(self) -> str:
        return self.text

    def __eq__(self, other):
        if isinstance(other, StringValue):
            return self.normalized == other.normalized
        return NotImplemented

    def __hash__(self):
        return hash(("str", self.normalized))


#: Inverse granularity of the numeric equality grid: two numbers are equal
#: when they round to the same multiple of 1e-9.  Both ``__eq__`` and
#: ``__hash__`` derive from this one bucket, which is what makes the
#: ``a == b  ⇒  hash(a) == hash(b)`` invariant hold by construction (the
#: seed's ``math.isclose`` equality was *wider* than its rounded hash, so
#: equal values could hash apart and silently miss dict/set/index lookups).
_NUMBER_QUANTUM_INV = 10 ** 9


@dataclass(frozen=True)
class NumberValue(Value):
    """A numeric cell value (stored as a float).

    Equality is quantized: numbers are compared on a 1e-9 grid (see
    :data:`_NUMBER_QUANTUM_INV`), which absorbs float arithmetic noise
    (``0.1 + 0.2 == 0.3``) while staying transitive and consistent with
    ``__hash__`` — unlike tolerance-based ``isclose`` equality, which no
    hash function can be consistent with.
    """

    number: float

    def __post_init__(self):
        object.__setattr__(self, "number", float(self.number))

    @property
    def is_numeric(self) -> bool:
        return True

    def as_number(self) -> float:
        return self.number

    def sort_key(self):
        return (0, self.number)

    def display(self) -> str:
        if math.isfinite(self.number) and float(self.number).is_integer():
            return str(int(self.number))
        return str(self.number)

    def _bucket(self):
        """The quantized equality key shared by ``__eq__`` and ``__hash__``."""
        scaled = self.number * _NUMBER_QUANTUM_INV
        if math.isinf(scaled):
            # Either the number itself is infinite or it is too large for
            # the grid; at that magnitude the grid is finer than float
            # spacing anyway, so exact identity is the right bucket.  The
            # tag keeps this domain disjoint from the grid's integers —
            # round(n * 1e9) of a smaller number must never collide with
            # the raw float of one 1e9 times larger.
            return ("xl", self.number)
        return round(scaled)

    def __eq__(self, other):
        if isinstance(other, NumberValue):
            if math.isnan(self.number) or math.isnan(other.number):
                return False
            return self._bucket() == other._bucket()
        return NotImplemented

    def __hash__(self):
        if math.isnan(self.number):
            return hash(("num", "nan"))
        return hash(("num", self._bucket()))


@dataclass(frozen=True)
class DateValue(Value):
    """A (possibly partial) date value.

    Missing components are ``None``; a bare year such as ``1896`` is a valid
    date value (``DateValue(1896)``).  Ordering treats missing components as
    the smallest possible value so that ``1896`` sorts before ``1896-04-06``.
    """

    year: Optional[int] = None
    month: Optional[int] = None
    day: Optional[int] = None

    def __post_init__(self):
        if self.year is None and self.month is None and self.day is None:
            raise ValueError_("a DateValue needs at least one component")
        if self.month is not None and not 1 <= self.month <= 12:
            raise ValueError_(f"month out of range: {self.month}")
        if self.day is not None and not 1 <= self.day <= 31:
            raise ValueError_(f"day out of range: {self.day}")

    @property
    def is_numeric(self) -> bool:
        # A bare year behaves like a number for aggregation/difference.
        return self.month is None and self.day is None and self.year is not None

    def as_number(self) -> float:
        if self.year is None:
            raise ValueError_("date without a year has no numeric view")
        return float(self.year)

    def sort_key(self):
        return (
            1,
            self.year if self.year is not None else -math.inf,
            self.month if self.month is not None else 0,
            self.day if self.day is not None else 0,
        )

    def display(self) -> str:
        parts = []
        if self.year is not None:
            parts.append(f"{self.year:04d}")
        if self.month is not None:
            parts.append(f"{self.month:02d}")
        if self.day is not None:
            parts.append(f"{self.day:02d}")
        return "-".join(parts)

    def __eq__(self, other):
        if isinstance(other, DateValue):
            return (self.year, self.month, self.day) == (other.year, other.month, other.day)
        return NotImplemented

    def __hash__(self):
        return hash(("date", self.year, self.month, self.day))


RawValue = Union[Value, str, int, float, None]

_MONTH_NAMES = {
    "january": 1, "jan": 1,
    "february": 2, "feb": 2,
    "march": 3, "mar": 3,
    "april": 4, "apr": 4,
    "may": 5,
    "june": 6, "jun": 6,
    "july": 7, "jul": 7,
    "august": 8, "aug": 8,
    "september": 9, "sep": 9, "sept": 9,
    "october": 10, "oct": 10,
    "november": 11, "nov": 11,
    "december": 12, "dec": 12,
}

# Thousands separators must delimit groups of exactly three digits after a
# 1-3 digit leading group ("1,234", "$1,000,000").  The seed's permissive
# ``[\d,]+`` silently read malformed groupings such as ``"1,2,3"`` or
# ``"12,34"`` as numbers; those cells now stay strings.
_NUMBER_RE = re.compile(r"^[+-]?\$?(?:\d{1,3}(?:,\d{3})+|\d+)(?:\.\d+)?%?$")
_ISO_DATE_RE = re.compile(r"^(\d{4})-(\d{1,2})(?:-(\d{1,2}))?$")
_TEXT_DATE_RE = re.compile(
    r"^(?P<month>[A-Za-z]+)\s+(?P<day>\d{1,2})\s*,?\s+(?P<year>\d{4})$"
)
_DAY_MONTH_YEAR_RE = re.compile(
    r"^(?P<day>\d{1,2})\s+(?P<month>[A-Za-z]+)\s+(?P<year>\d{4})$"
)
_YEAR_RE = re.compile(r"^\d{4}$")


def parse_number(text: str) -> Optional[float]:
    """Parse a numeric string such as ``"1,234"``, ``"$150,000"`` or ``"42%"``.

    Returns ``None`` when the text is not numeric, including texts with
    malformed thousands groupings (``"1,2,3"``, ``"12,34"``) — cells like
    those are identifiers or lists, not numbers.
    """
    candidate = text.strip()
    if not candidate or not _NUMBER_RE.match(candidate):
        return None
    cleaned = candidate.replace(",", "").replace("$", "").replace("%", "")
    try:
        return float(cleaned)
    except ValueError:
        return None


def parse_date(text: str) -> Optional[DateValue]:
    """Parse ISO (``2013-06-08``) and textual (``June 8, 2013``) dates."""
    candidate = text.strip()
    match = _ISO_DATE_RE.match(candidate)
    if match:
        year, month = int(match.group(1)), int(match.group(2))
        day = int(match.group(3)) if match.group(3) else None
        if 1 <= month <= 12 and (day is None or 1 <= day <= 31):
            return DateValue(year=year, month=month, day=day)
        return None
    for pattern in (_TEXT_DATE_RE, _DAY_MONTH_YEAR_RE):
        match = pattern.match(candidate)
        if match:
            month = _MONTH_NAMES.get(match.group("month").lower())
            if month is None:
                return None
            day = int(match.group("day"))
            if not 1 <= day <= 31:
                return None
            return DateValue(year=int(match.group("year")), month=month, day=day)
    return None


def parse_value(raw: RawValue, prefer_date_for_years: bool = False) -> Value:
    """Normalise a raw cell content into a typed :class:`Value`.

    Parameters
    ----------
    raw:
        A python object: an existing :class:`Value` (returned untouched),
        a number, or a string to be interpreted.
    prefer_date_for_years:
        When True, a bare four-digit string such as ``"1896"`` becomes a
        :class:`DateValue`; otherwise it becomes a :class:`NumberValue`.
    """
    if isinstance(raw, Value):
        return raw
    if raw is None:
        return StringValue("")
    if isinstance(raw, bool):
        return StringValue(str(raw))
    if isinstance(raw, (int, float)):
        if (
            prefer_date_for_years
            and float(raw).is_integer()
            and 1000 <= float(raw) <= 2999
        ):
            return DateValue(year=int(raw))
        return NumberValue(float(raw))
    text = str(raw)
    stripped = text.strip()
    if _YEAR_RE.match(stripped):
        if prefer_date_for_years:
            return DateValue(year=int(stripped))
        return NumberValue(float(stripped))
    date = parse_date(stripped)
    if date is not None:
        return date
    number = parse_number(stripped)
    if number is not None:
        return NumberValue(number)
    return StringValue(text)


def values_equal(left: Value, right: Value) -> bool:
    """Equality across value types.

    String/number cross-type comparison succeeds when the string parses to
    the same number (so the cell ``"2004"`` matches the constant ``2004``).
    A numeric :class:`DateValue` (bare year) also matches an equal number.
    """
    if type(left) is type(right):
        return left == right
    if isinstance(left, StringValue) and isinstance(right, (NumberValue, DateValue)):
        reparsed = parse_value(left.text)
        if isinstance(reparsed, StringValue):
            return False
        return values_equal(reparsed, right)
    if isinstance(right, StringValue) and isinstance(left, (NumberValue, DateValue)):
        reparsed = parse_value(right.text)
        if isinstance(reparsed, StringValue):
            return False
        return values_equal(left, reparsed)
    if left.is_numeric and right.is_numeric:
        return math.isclose(left.as_number(), right.as_number(), rel_tol=1e-9, abs_tol=1e-9)
    return False
