"""Per-column indexes answering equality and range lookups in O(log n).

Every :class:`~repro.dcs.executor.Executor` operator of the seed walked a
whole column per evaluation — an O(rows) scan re-running the expensive
cross-type :func:`~repro.tables.values.values_equal` (which re-parses
string cells on *every* comparison).  Memoization (PR 1) amortised the
scans across duplicate sub-queries, but each distinct sub-query still
paid one.  This module removes the scan itself:

* :class:`ColumnIndex` — for one column, a hash map from normalised cell
  value to row indices (equality), plus sorted numeric / sort-key arrays
  (range comparisons and superlatives) answered by :mod:`bisect`.
* :class:`TableIndex` — one :class:`ColumnIndex` per column, built
  eagerly from the table's typed cells and holding **no reference** to
  the table (only row indices and primitive keys), so a cached index
  never keeps a dead table alive.
* :func:`table_index` — the process-wide registry: indexes are built
  lazily once per *table content* and held in the existing bounded
  thread-safe :class:`~repro.tables.fingerprint.LRUCache`, keyed by
  :attr:`~repro.tables.table.Table.fingerprint` — two tables with equal
  content share one index, and a changed cell (changed fingerprint)
  gets a fresh one.

Exactness contract (locked in by the property tests in
``tests/test_property_based.py`` and ``tests/test_table_index.py``): the
index never changes results.  Equality lookups return a *superset* of
candidate rows which callers re-check with ``values_equal`` — the index
can produce a spurious candidate, never miss a matching row.  Ordered
lookups mirror :func:`repro.dcs.executor._compare` exactly, including
the numeric-vs-sort-key fallback, NaN cells (never selected by an
ordered operator) and cross-type misses.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple

from .fingerprint import LRUCache
from .table import Cell, Table
from .values import DateValue, NumberValue, StringValue, Value, parse_value

#: Capacity of the process-wide index registry.  Indexes hold only row
#: indices and primitive keys, so even large deployments stay small.
INDEX_REGISTRY_SIZE = 256

#: Relative slack of the numeric equality window.  ``values_equal`` uses
#: ``math.isclose(rel_tol=1e-9, abs_tol=1e-9)``; the window is strictly
#: wider, and callers filter the surplus with ``values_equal`` itself.
_EQ_REL = 2e-9
_EQ_ABS = 1e-9


def _sorted_pairs(pairs: List[Tuple]) -> Tuple[Tuple, Tuple[int, ...]]:
    """Split ``(key, row)`` pairs into parallel sorted key/row tuples."""
    pairs.sort()
    return tuple(key for key, _ in pairs), tuple(row for _, row in pairs)


class ColumnIndex:
    """Equality and range lookups over one column of one table content.

    The structures hold only primitives (row indices, floats, normalised
    strings, date triples, sort-key tuples) — never cells or tables.
    """

    __slots__ = (
        "num_rows",
        "_by_string",
        "_by_date",
        "_eq_numeric_keys",
        "_eq_numeric_rows",
        "_cmp_numeric_keys",
        "_cmp_numeric_rows",
        "_tag_all",
        "_tag_nonnumeric",
    )

    def __init__(self, cells: Sequence[Cell]) -> None:
        self.num_rows = len(cells)
        #: normalised text -> rows holding an equal StringValue.
        by_string: Dict[str, List[int]] = {}
        #: (year, month, day) -> rows holding an equal date (typed or textual).
        by_date: Dict[Tuple, List[int]] = {}
        #: cells with a numeric *equality* view (numbers, bare-year dates,
        #: strings that re-parse to a number), sorted by that number.
        eq_numeric: List[Tuple[float, int]] = []
        #: cells taking the numeric path of ``_compare`` (``is_numeric``
        #: only — strings are excluded there), sorted by ``as_number()``.
        cmp_numeric: List[Tuple[float, int]] = []
        #: every cell by sort key, partitioned by type tag, for the
        #: ``_compare`` fallback with a non-numeric reference.
        tag_all: Dict[int, List[Tuple[Tuple, int]]] = {}
        #: non-numeric cells only, for the fallback with a numeric reference.
        tag_nonnumeric: Dict[int, List[Tuple[Tuple, int]]] = {}

        for row, cell in enumerate(cells):
            value = cell.value
            key = value.sort_key()
            tag_all.setdefault(key[0], []).append((key, row))
            if value.is_numeric:
                number = value.as_number()
                if not math.isnan(number):
                    cmp_numeric.append((number, row))
                    eq_numeric.append((number, row))
            else:
                tag_nonnumeric.setdefault(key[0], []).append((key, row))
            if isinstance(value, StringValue):
                by_string.setdefault(value.normalized, []).append(row)
                reparsed = parse_value(value.text)
                if isinstance(reparsed, NumberValue):
                    if not math.isnan(reparsed.number):
                        eq_numeric.append((reparsed.number, row))
                elif isinstance(reparsed, DateValue):
                    by_date.setdefault(
                        (reparsed.year, reparsed.month, reparsed.day), []
                    ).append(row)
            elif isinstance(value, DateValue):
                by_date.setdefault((value.year, value.month, value.day), []).append(row)

        self._by_string = {text: tuple(rows) for text, rows in by_string.items()}
        self._by_date = {triple: tuple(rows) for triple, rows in by_date.items()}
        self._eq_numeric_keys, self._eq_numeric_rows = _sorted_pairs(eq_numeric)
        self._cmp_numeric_keys, self._cmp_numeric_rows = _sorted_pairs(cmp_numeric)
        self._tag_all = {tag: _sorted_pairs(pairs) for tag, pairs in tag_all.items()}
        self._tag_nonnumeric = {
            tag: _sorted_pairs(pairs) for tag, pairs in tag_nonnumeric.items()
        }

    # -- equality --------------------------------------------------------------
    def equality_candidates(self, value: Value) -> Iterable[int]:
        """Rows that *may* hold a value equal to ``value``.

        A superset of the true match set (callers re-check each candidate
        with ``values_equal``); by construction it can never miss a row
        that ``values_equal`` would accept — every cross-type bridge of
        :func:`~repro.tables.values.values_equal` (string re-parsing,
        bare-year dates as numbers) has a corresponding structure here.
        """
        if isinstance(value, StringValue):
            rows = list(self._by_string.get(value.normalized, ()))
            reparsed = parse_value(value.text)
            if isinstance(reparsed, NumberValue):
                rows.extend(self._numeric_equality_window(reparsed.number))
            elif isinstance(reparsed, DateValue):
                rows.extend(
                    self._by_date.get(
                        (reparsed.year, reparsed.month, reparsed.day), ()
                    )
                )
                if reparsed.is_numeric:
                    rows.extend(self._numeric_equality_window(reparsed.as_number()))
            return rows
        if isinstance(value, NumberValue):
            return self._numeric_equality_window(value.number)
        if isinstance(value, DateValue):
            rows = list(self._by_date.get((value.year, value.month, value.day), ()))
            if value.is_numeric:
                rows.extend(self._numeric_equality_window(value.as_number()))
            return rows
        return range(self.num_rows)  # unknown value type: degrade to a scan

    def _numeric_equality_window(self, number: float) -> Sequence[int]:
        """Rows whose numeric equality key lies within the isclose window."""
        if math.isnan(number):
            return ()
        keys = self._eq_numeric_keys
        if not math.isfinite(number):
            low, high = bisect_left(keys, number), bisect_right(keys, number)
        else:
            radius = _EQ_ABS + _EQ_REL * abs(number)
            low = bisect_left(keys, number - radius)
            high = bisect_right(keys, number + radius)
        return self._eq_numeric_rows[low:high]

    # -- ordered comparisons ---------------------------------------------------
    def ordered_rows(self, op: str, reference: Value) -> List[int]:
        """Rows selected by ``cell <op> reference`` for ``op`` in ``< <= > >=``.

        Exact (no caller-side filtering needed): reproduces the two-path
        semantics of ``repro.dcs.executor._compare`` — the numeric path
        for numeric cell/reference pairs, the same-type-tag sort-key
        fallback otherwise.
        """
        rows: List[int] = []
        tag = reference.sort_key()[0]
        if reference.is_numeric:
            number = reference.as_number()
            if not math.isnan(number):
                rows.extend(
                    self._bisect_range(
                        self._cmp_numeric_keys, self._cmp_numeric_rows, op, number
                    )
                )
            # Non-numeric cells of the same type tag (e.g. full dates
            # compared against a bare-year date) take the sort-key path.
            keys, tagged = self._tag_nonnumeric.get(tag, ((), ()))
            rows.extend(self._bisect_range(keys, tagged, op, reference.sort_key()))
        else:
            keys, tagged = self._tag_all.get(tag, ((), ()))
            rows.extend(self._bisect_range(keys, tagged, op, reference.sort_key()))
        rows.sort()
        return rows

    @staticmethod
    def _bisect_range(keys: Tuple, rows: Tuple[int, ...], op: str, pivot) -> Sequence[int]:
        if op == ">":
            return rows[bisect_right(keys, pivot):]
        if op == ">=":
            return rows[bisect_left(keys, pivot):]
        if op == "<":
            return rows[: bisect_left(keys, pivot)]
        if op == "<=":
            return rows[: bisect_right(keys, pivot)]
        raise ValueError(f"unordered operator {op!r}")  # pragma: no cover


class TableIndex:
    """All column indexes of one table content.

    Built eagerly (every column) from a table and addressed by the
    table's fingerprint via :func:`table_index`; the index itself keeps
    no reference to the table, its records or its cells.
    """

    __slots__ = ("fingerprint", "columns")

    def __init__(self, table: Table) -> None:
        self.fingerprint = table.fingerprint
        self.columns: Dict[str, ColumnIndex] = {
            column: ColumnIndex(table.column_cells(column))
            for column in table.columns
        }

    def column(self, name: str) -> ColumnIndex:
        return self.columns[name]

    @classmethod
    def from_delta(
        cls,
        table: Table,
        old_index: "TableIndex",
        reusable_columns: Iterable[str],
    ) -> "TableIndex":
        """Build ``table``'s index reusing the old version's columns.

        ``reusable_columns`` must name columns whose cells (values *and*
        row set) are unchanged between the old index's table and
        ``table`` — :meth:`TableDiff.unchanged_columns` computes exactly
        that set, including the row-count rule (row indices are embedded
        in :class:`ColumnIndex`, so nothing is reusable across a row
        insertion or deletion).  Because a ``ColumnIndex`` holds only
        primitives derived from its cells, a reused column is bit-
        identical to a freshly built one.
        """
        reusable = {
            column
            for column in reusable_columns
            if column in old_index.columns
        }
        index = object.__new__(cls)
        index.fingerprint = table.fingerprint
        index.columns = {
            column: (
                old_index.columns[column]
                if column in reusable
                else ColumnIndex(table.column_cells(column))
            )
            for column in table.columns
        }
        return index

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"TableIndex({self.fingerprint.short}, {len(self.columns)} columns)"


# ---------------------------------------------------------------------------
# the process-wide registry
# ---------------------------------------------------------------------------

_INDEX_REGISTRY = LRUCache(maxsize=INDEX_REGISTRY_SIZE)


def table_index(table: Table) -> TableIndex:
    """The (cached) :class:`TableIndex` for ``table``'s content.

    Content-addressed: equal-content tables share one index; any change
    to a cell, header or cell type changes the fingerprint and therefore
    builds a fresh index.  The registry is a bounded thread-safe LRU, so
    long-running deployments keep a fixed footprint.
    """
    return _INDEX_REGISTRY.get_or_create(table.fingerprint, lambda: TableIndex(table))


def update_index(old_fingerprint, new_table: Table, diff) -> TableIndex:
    """The delta-maintenance hook: re-index ``new_table`` reusing the old.

    When the old version's :class:`TableIndex` is still cached and the
    diff permits it, only the changed columns are rebuilt; otherwise this
    degrades to a full build.  Either way the new index is published to
    the registry under the new fingerprint and the old entry is evicted
    (the catalog keeps superseded versions resolvable through its
    lineage chain, not through this registry).
    """
    cached = _INDEX_REGISTRY.get(new_table.fingerprint)
    if cached is not None:
        return cached
    old_index = _INDEX_REGISTRY.get(old_fingerprint)
    if old_index is None or diff.row_count_changed:
        index = TableIndex(new_table)
    else:
        index = TableIndex.from_delta(
            new_table, old_index, diff.unchanged_columns(new_table)
        )
    _INDEX_REGISTRY.put(new_table.fingerprint, index)
    return index


def index_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the index registry (for ``cache_stats``)."""
    return _INDEX_REGISTRY.stats()


def clear_index_cache() -> None:
    """Drop every cached index (tests and benchmarks use this for cold runs)."""
    _INDEX_REGISTRY.clear()


def evict_index(fingerprint) -> None:
    """Drop one table content's index (the shard-eviction hook).

    Safe at any time — the registry rebuilds lazily on the next lookup —
    so a catalog can unload a cold shard's index together with its table.
    """
    _INDEX_REGISTRY.pop(fingerprint)
