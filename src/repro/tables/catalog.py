"""A fingerprint-addressed catalog of many tables behind one interface.

The paper's deployment (Section 6) serves hundreds of questions against
many distinct web tables from one long-running process — not one table
per process.  This module is that missing subsystem: a
:class:`TableCatalog` registers tables *by content* (the
:class:`~repro.tables.fingerprint.TableFingerprint` digest is the primary
key; names are aliases), routes ``ask(question, table_ref)`` through the
existing content-addressed parser/index/memo caches, answers corpus-wide
questions with the retrieve-then-parse pipeline of
:meth:`TableCatalog.ask_any` (the :mod:`repro.retrieval` corpus index
prunes the shard set before the parser runs, with a guaranteed broadcast
fallback), and keeps the memory footprint bounded by evicting cold
shards — their candidate lists, execution bundles and the pickled table
itself — to the :class:`~repro.perf.diskcache.DiskCache`.

Because every cache in the repository is keyed by content fingerprint,
routing many tables through one shared :class:`~repro.interface.NLInterface`
needs no per-table plumbing: a question over shard A can never read
shard B's state, and two shards with equal content transparently share
lexicons, grammars, indexes and memoized execution results.

Eviction is loss-free by construction.  Everything dropped from memory
is *derived* state: with a cache directory configured, the execution
bundle and candidate lists are flushed to the content-addressed disk
store and the table is pickled beside them, so a rehydrated shard
answers bit-identically to one that never went cold (locked in by
``tests/test_catalog.py``); without a cache directory the table stays in
memory and only the derived caches are dropped, trading rehydration
speed for the same answers.

The asyncio serving layer over this catalog lives in
:mod:`repro.serving`.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from .diff import TableDiff, diff_tables
from .index import update_index
from .table import Table, TableError

if TYPE_CHECKING:  # pragma: no cover - typing only (runtime imports are lazy)
    from ..compose.answer import ComposedAnswer
    from ..interface.nl_interface import InterfaceResponse, NLInterface
    from ..retrieval.router import RoutingDecision, SetRoutingDecision

#: How a caller may name a table: a :class:`TableRef`, a registered name,
#: a full or abbreviated (>= 8 hex chars, unique) fingerprint digest, or
#: the :class:`~repro.tables.table.Table` object itself.
TableLike = Union["TableRef", Table, str]

#: Shortest digest prefix accepted by :meth:`TableCatalog.resolve`.
_MIN_DIGEST_PREFIX = 8


class CatalogError(TableError):
    """Raised on unknown refs, name collisions and unrehydratable shards."""


class UnknownTableError(CatalogError):
    """The ref resolves to no registered shard (``ErrorCode.UNKNOWN_TABLE``)."""


class AmbiguousTableError(CatalogError):
    """A digest prefix matches several shards (``ErrorCode.AMBIGUOUS_TABLE``)."""


class NameConflictError(CatalogError):
    """``register()`` reused a taken name with different content
    (``ErrorCode.NAME_CONFLICT``) — callers who mean "publish new content
    under this name" want :meth:`TableCatalog.update`."""


@dataclass(frozen=True)
class TableRef:
    """A stable handle to a registered table.

    ``digest`` is the content fingerprint (the primary key — stable
    across processes, sessions and table renames); ``name`` is the
    display alias the table was registered under.  ``version`` and
    ``predecessor`` record the shard's place in its lineage chain:
    freshly registered content is version 1 with no predecessor, and
    every :meth:`TableCatalog.update` produces a ref one version deeper
    whose ``predecessor`` is the superseded content's digest.
    """

    digest: str
    name: str
    num_rows: int
    num_columns: int
    version: int = 1
    predecessor: Optional[str] = None

    @property
    def short(self) -> str:
        """A 12-hex-digit digest abbreviation for listings and logs."""
        return self.digest[:12]

    def __str__(self) -> str:
        return f"{self.name}@{self.short}"


@dataclass
class _Shard:
    """Internal per-table state (not part of the public API).

    ``superseded_by`` is set when an :meth:`TableCatalog.update` replaced
    this shard's content; the shard then no longer appears in
    :meth:`TableCatalog.refs` but stays digest-resolvable until its
    ``pins`` (in-flight queries accepted against it) drain to zero, at
    which point it is retired for good.
    """

    ref: TableRef
    table: Optional[Table]
    order: int
    hot: bool = True
    asks: int = 0
    last_used: int = 0
    superseded_by: Optional[str] = None
    pins: int = 0


@dataclass
class CatalogAnswer:
    """The result of scoring one question across the catalog.

    ``ranked`` pairs every *parsed* shard's ref with its response, best
    first: ordered by the top candidate's model score (descending), ties
    broken by retrieval score (descending) then registration order —
    deterministic for a fixed catalog, index and model.

    With pruning (the default pipeline) only the shards the
    :class:`~repro.retrieval.router.ShardRouter` kept were parsed;
    ``routing`` records the full decision (every shard's retrieval score,
    the pruned set, whether the broadcast fallback fired) and ``pruned``
    says whether the retrieve-then-parse path was active at all.

    ``set_routing`` is the :class:`~repro.retrieval.router.ShardSetRouter`
    decision when set routing ran (its ``single`` is exactly ``routing``);
    ``composed`` carries a cross-table
    :class:`~repro.compose.answer.ComposedAnswer` when one of the
    proposed shard sets planned, validated and executed a join — strictly
    additive, the single-shard ranking above is never affected.
    """

    question: str
    ranked: List[Tuple[TableRef, "InterfaceResponse"]] = field(default_factory=list)
    routing: Optional["RoutingDecision"] = None
    pruned: bool = False
    set_routing: Optional["SetRoutingDecision"] = None
    composed: Optional["ComposedAnswer"] = None

    @property
    def shards_parsed(self) -> int:
        return len(self.ranked)

    @property
    def shards_pruned(self) -> int:
        if not self.pruned or self.routing is None:
            return 0
        return self.routing.num_pruned

    @property
    def best(self) -> Optional[Tuple[TableRef, "InterfaceResponse"]]:
        return self.ranked[0] if self.ranked else None

    def __repr__(self) -> str:
        # Bounded: the generated repr would recurse into every ranked
        # shard's full response graph (see InterfaceResponse.__repr__).
        return (
            f"CatalogAnswer(question={self.question!r}, "
            f"shards_parsed={self.shards_parsed}, answer={self.answer!r})"
        )

    @property
    def best_ref(self) -> Optional[TableRef]:
        return self.ranked[0][0] if self.ranked else None

    @property
    def best_response(self) -> Optional["InterfaceResponse"]:
        return self.ranked[0][1] if self.ranked else None

    @property
    def answer(self) -> Tuple[str, ...]:
        response = self.best_response
        top = response.top if response is not None else None
        return top.answer if top is not None else ()


class TableCatalog:
    """Routes questions across many registered tables.

    Parameters
    ----------
    interface:
        The shared :class:`~repro.interface.NLInterface` to route through.
        Omitted, the catalog builds one whose parser persists candidate
        lists and execution bundles under ``cache_dir`` (when given).
    cache_dir:
        Root of the content-addressed :class:`~repro.perf.diskcache.DiskCache`.
        Enables *full* eviction: cold shards drop their table from memory
        and rehydrate from disk bit-identically.  Without it eviction
        only sheds derived caches and keeps tables resident.
    max_hot_shards:
        When set, the catalog auto-evicts least-recently-used shards so
        at most this many stay hot.  ``None`` leaves eviction manual.
    k:
        Default top-``k`` for a catalog-built interface.
    prune:
        Default routing policy of :meth:`ask_any`: ``True`` (the
        retrieve-then-parse pipeline) parses only the shards the
        :class:`~repro.retrieval.router.ShardRouter` retrieves, falling
        back to the full broadcast when retrieval has no hits; ``False``
        restores the unconditional broadcast.  Per-call ``prune=``
        overrides this default.
    compose:
        Default composition policy of :meth:`ask_any`: ``True`` also
        attempts a cross-table join answer whenever the
        :class:`~repro.retrieval.router.ShardSetRouter` proposes shard
        sets (no single shard covers every anchored question term);
        ``False`` never composes.  Strictly additive either way — the
        single-shard ranking is identical.  Per-call ``compose=``
        overrides this default.
    """

    def __init__(
        self,
        interface: Optional["NLInterface"] = None,
        cache_dir: Optional[str] = None,
        max_hot_shards: Optional[int] = None,
        k: int = 7,
        prune: bool = True,
        compose: bool = True,
    ) -> None:
        if max_hot_shards is not None and max_hot_shards < 1:
            raise CatalogError(
                f"max_hot_shards must be >= 1 (or None), got {max_hot_shards}"
            )
        # Imported lazily: repro.interface (and repro.perf) import
        # repro.tables at package init, so module-level imports here would
        # be circular.
        from ..interface.nl_interface import NLInterface
        from ..parser.candidates import ParserConfig, SemanticParser

        if interface is None:
            config = ParserConfig(
                disk_cache_dir=str(cache_dir) if cache_dir else None
            )
            interface = NLInterface(parser=SemanticParser(config=config), k=k)
        self.interface = interface
        self.max_hot_shards = max_hot_shards
        if cache_dir:
            from ..perf.diskcache import DiskCache

            self._disk: Optional["DiskCache"] = DiskCache(cache_dir)
        else:
            self._disk = None
        # Imported lazily for the same reason as the interface above
        # (repro.retrieval pulls in repro.parser, which imports
        # repro.tables at package init).
        from ..retrieval import CorpusIndex, ShardRouter, ShardSetRouter

        self.prune = prune
        self.compose = compose
        self._index = CorpusIndex()
        self._router = ShardRouter(self._index)
        self._set_router = ShardSetRouter(self._index, self._router)
        self._shards: Dict[str, _Shard] = {}
        self._names: Dict[str, str] = {}
        self._order = itertools.count()
        self._clock = itertools.count(1)
        self._lock = threading.RLock()
        # Digests whose table blob this catalog already wrote to its disk
        # store.  Tables are immutable and content-addressed, so one
        # write per digest suffices — repeat evictions of a hot-again
        # shard must not re-pickle identical bytes (the cache dir is
        # owned by this catalog for its lifetime).
        self._persisted_tables: set = set()
        self.evictions = 0
        self.rehydrations = 0
        # -- live-corpus state (the mutation path) -----------------------
        #: Monotonic corpus version: bumped on every content-new
        #: register and every update.  Results carry the version they
        #: were computed against (the v2 wire's ``corpus_version``).
        self.version = 0
        self.updates = 0
        self.retired = 0
        #: live digest -> its retired ancestors' digests, oldest first
        #: (drives :meth:`prune_lineage` over the disk tables namespace).
        self._history: Dict[str, List[str]] = {}
        #: Called with each retired :class:`TableRef` once its pins drain
        #: — the engine forwards these to worker pools so per-worker
        #: registries drop superseded snapshots instead of leaking.
        self._retire_listeners: List = []

    # -- registration ----------------------------------------------------------
    def register(self, table: Table, name: Optional[str] = None) -> TableRef:
        """Register ``table`` under ``name`` (default: the table's own name).

        Content-addressed and idempotent: re-registering equal content
        returns the existing shard (adding the new name as an alias);
        registering a *different* table under a taken name raises.
        Registration also indexes the shard's content into the corpus
        retrieval index (terms, entities, numbers, header tokens), so
        corpus-wide questions can route to it; the posting is keyed by
        content and survives eviction — routing never needs the table
        back in memory.
        """
        digest = table.fingerprint.digest
        name = name if name is not None else table.name
        with self._lock:
            taken = self._names.get(name)
            if taken is not None and taken != digest:
                raise NameConflictError(
                    f"name {name!r} is already registered for table "
                    f"{taken[:12]}; use update({name!r}, new_table) to "
                    f"publish new content under an existing name"
                )
            # Index only once registration is certain: a rejected table
            # must not leave a posting behind.
            self._index.add(table)
            shard = self._shards.get(digest)
            if shard is None:
                ref = TableRef(
                    digest=digest,
                    name=name,
                    num_rows=table.num_rows,
                    num_columns=table.num_columns,
                )
                shard = _Shard(ref=ref, table=table, order=next(self._order))
                self._shards[digest] = shard
                self.version += 1
            elif shard.table is None:
                # Re-registering an evicted shard rehydrates it for free.
                shard.table = table
                shard.hot = True
            self._names[name] = digest
            self._touch(shard)
            self._enforce_hot_limit(protect=digest)
            return shard.ref

    def register_all(
        self, tables: Sequence[Table], names: Optional[Sequence[str]] = None
    ) -> List[TableRef]:
        """Register a sequence of tables; returns their refs, index-aligned."""
        if names is not None and len(names) != len(tables):
            raise CatalogError(
                f"got {len(names)} names for {len(tables)} tables"
            )
        return [
            self.register(table, name=names[i] if names is not None else None)
            for i, table in enumerate(tables)
        ]

    def register_many(
        self,
        tables: Sequence[Table],
        names: Optional[Sequence[str]] = None,
        *,
        workers: Optional[int] = None,
        extract_backend: str = "auto",
    ) -> List[TableRef]:
        """Bulk-register a corpus: parallel posting extraction, one merge.

        Semantically equivalent to :meth:`register_all` (same refs, same
        final catalog state, same eviction count under a hot limit), but
        built for hundreds-to-thousands of tables: posting extraction —
        the pure, per-table expensive half of registration — runs through
        :func:`~repro.retrieval.corpus_index.extract_shard_postings`
        (batch-memoized, optionally pooled; see ``workers`` /
        ``extract_backend`` there), and the whole batch then merges into
        the corpus index under **one** lock acquisition
        (:meth:`CorpusIndex.add_postings`) instead of one per table.

        One deliberate strengthening over :meth:`register_all`: names are
        validated for the *entire batch* (against the catalog and within
        the batch itself) before any shard or posting is published, so a
        name conflict rejects the whole batch atomically instead of
        stopping halfway.
        """
        if names is not None and len(names) != len(tables):
            raise CatalogError(
                f"got {len(names)} names for {len(tables)} tables"
            )
        from ..retrieval import extract_shard_postings

        tables = list(tables)
        resolved_names = [
            names[i] if names is not None else table.name
            for i, table in enumerate(tables)
        ]
        digests = [table.fingerprint.digest for table in tables]
        with self._lock:
            # Atomic batch validation: every name checked before any
            # mutation, including intra-batch conflicts.
            claimed = dict(self._names)
            for name, digest in zip(resolved_names, digests):
                taken = claimed.get(name)
                if taken is not None and taken != digest:
                    raise NameConflictError(
                        f"name {name!r} is already registered for table "
                        f"{taken[:12]}; use update({name!r}, new_table) to "
                        f"publish new content under an existing name"
                    )
                claimed[name] = digest
            # Extract only content the index does not know yet; the
            # extraction itself is pure, but holding the catalog lock
            # keeps the validated-name snapshot consistent (registration
            # is serialized per catalog either way).
            seen: set = set()
            pending = []
            for table, digest in zip(tables, digests):
                if digest not in seen and digest not in self._index:
                    seen.add(digest)
                    pending.append(table)
            if pending:
                self._index.add_postings(
                    extract_shard_postings(
                        pending, workers=workers, backend=extract_backend
                    )
                )
            refs: List[TableRef] = []
            for table, name, digest in zip(tables, resolved_names, digests):
                shard = self._shards.get(digest)
                if shard is None:
                    ref = TableRef(
                        digest=digest,
                        name=name,
                        num_rows=table.num_rows,
                        num_columns=table.num_columns,
                    )
                    shard = _Shard(
                        ref=ref, table=table, order=next(self._order)
                    )
                    self._shards[digest] = shard
                    self.version += 1
                elif shard.table is None:
                    shard.table = table
                    shard.hot = True
                self._names[name] = digest
                self._touch(shard)
                refs.append(shard.ref)
            # One enforcement pass for the whole batch: recency order is
            # identical to the sequential path's final state, so the
            # same shards end up evicted (just all at once, at the end).
            if digests:
                self._enforce_hot_limit(protect=digests[-1])
            return refs

    # -- mutation (the live-corpus path) ---------------------------------------
    def update(self, ref: TableLike, new_table: Table) -> TableRef:
        """Publish ``new_table`` as the next version of an existing shard.

        The delta path: the old and new contents are diffed
        (:func:`~repro.tables.diff.diff_tables`) and only the affected
        structures are touched — the corpus index migrates just the
        posting keys that changed, the per-column
        :class:`~repro.tables.index.TableIndex` rebuilds only changed
        columns — leaving the system bit-identical to one rebuilt from
        scratch on the final table set (locked in by
        ``tests/test_churn.py``).

        Lineage: the new ref records ``version + 1`` and the old digest
        as ``predecessor``; every name that aliased the old shard now
        resolves to the new one.  The superseded shard disappears from
        :meth:`refs` immediately but stays digest-resolvable until its
        pinned in-flight queries drain (see :meth:`pin`), after which it
        is retired: its derived caches are dropped, retire listeners
        (worker pools) are notified, and its table blob becomes eligible
        for :meth:`prune_lineage`.

        Returns the old ref unchanged when ``new_table`` has equal
        content (a no-op edit).
        """
        with self._lock:
            old_shard = self._shard_for(ref)
            old_ref = old_shard.ref
            if old_shard.superseded_by is not None:
                raise CatalogError(
                    f"shard {old_ref} was already superseded by "
                    f"{old_shard.superseded_by[:12]}; update the current "
                    f"version instead"
                )
            new_digest = new_table.fingerprint.digest
            if new_digest == old_ref.digest:
                return old_ref
            if new_digest in self._shards:
                raise CatalogError(
                    f"content {new_digest[:12]} is already registered as "
                    f"{self._shards[new_digest].ref}; cannot fold two live "
                    f"shards into one lineage"
                )
            old_table = self._materialize(old_shard)
            diff = diff_tables(old_table, new_table)
            # Delta maintenance: postings by changed key, per-column
            # indexes by changed column.
            self._index.update(old_ref.digest, new_table)
            update_index(old_table.fingerprint, new_table, diff)
            new_ref = TableRef(
                digest=new_digest,
                name=old_ref.name,
                num_rows=new_table.num_rows,
                num_columns=new_table.num_columns,
                version=old_ref.version + 1,
                predecessor=old_ref.digest,
            )
            # The successor inherits the registration order so corpus
            # ranking tie-breaks exactly as a fresh catalog built on the
            # final table set would.
            new_shard = _Shard(
                ref=new_ref, table=new_table, order=old_shard.order
            )
            self._shards[new_digest] = new_shard
            old_shard.superseded_by = new_digest
            for alias, digest in list(self._names.items()):
                if digest == old_ref.digest:
                    self._names[alias] = new_digest
            self._history[new_digest] = self._history.pop(
                old_ref.digest, []
            ) + [old_ref.digest]
            self.version += 1
            self.updates += 1
            self._touch(new_shard)
            self._maybe_retire(old_shard)
            self._enforce_hot_limit(protect=new_digest)
            return new_ref

    def pin(self, ref: TableLike) -> TableRef:
        """Resolve ``ref`` and pin its shard against retirement.

        The serving layer pins every accepted request's shard at
        acceptance, so an :meth:`update` racing with in-flight work keeps
        the superseded snapshot resolvable until :meth:`unpin` drains it.
        """
        with self._lock:
            shard = self._shard_for(ref)
            shard.pins += 1
            return shard.ref

    def unpin(self, ref: TableLike) -> None:
        """Release one :meth:`pin`; retires the shard when drained."""
        with self._lock:
            try:
                shard = self._shard_for(ref)
            except CatalogError:
                return  # already retired through another path
            if shard.pins > 0:
                shard.pins -= 1
            self._maybe_retire(shard)

    def on_retire(self, listener) -> None:
        """Register a callable invoked with each retired :class:`TableRef`."""
        with self._lock:
            self._retire_listeners.append(listener)

    def _maybe_retire(self, shard: _Shard) -> None:
        """Drop a superseded shard once its last pin drains (lock held)."""
        if shard.superseded_by is None or shard.pins > 0:
            return
        digest = shard.ref.digest
        if digest not in self._shards:
            return  # already retired
        table = shard.table
        if table is not None:
            # Drop the in-memory derived state for exactly this
            # fingerprint — no disk flush: persisting a superseded
            # version's bundles would only grow the lineage garbage
            # prune_lineage exists to collect.
            self.interface.retire_table(table)
        del self._shards[digest]
        self.retired += 1
        for listener in list(self._retire_listeners):
            listener(shard.ref)

    def prune_lineage(self, keep: int = 1) -> List[str]:
        """Unlink retired ancestors' table blobs from the disk store.

        Every update leaves the superseded version's pickled table in the
        disk cache's tables namespace (when it was ever evicted there) —
        primary storage for a version nothing can resolve any more.  This
        keeps the newest ``keep`` versions of each lineage (the live
        version counts as one) and unlinks the rest, returning the pruned
        digests.  Digests still resolvable (a pinned snapshot not yet
        retired) are never pruned.
        """
        if keep < 1:
            raise CatalogError(f"prune_lineage keep must be >= 1, got {keep}")
        pruned: List[str] = []
        with self._lock:
            if self._disk is None:
                return pruned
            for digest, ancestors in list(self._history.items()):
                cutoff = max(0, len(ancestors) - (keep - 1))
                kept: List[str] = []
                for position, old in enumerate(ancestors):
                    if position >= cutoff or old in self._shards:
                        kept.append(old)
                        continue
                    self._disk.remove_table(old)
                    self._persisted_tables.discard(old)
                    pruned.append(old)
                self._history[digest] = kept
        return pruned

    # -- resolution ------------------------------------------------------------
    def resolve(self, ref: TableLike) -> TableRef:
        """Resolve a name / digest / digest prefix / table / ref to its ref."""
        return self._shard_for(ref).ref

    def _shard_for(self, ref: TableLike) -> _Shard:
        with self._lock:
            if isinstance(ref, TableRef):
                shard = self._shards.get(ref.digest)
                if shard is None:
                    raise UnknownTableError(f"unknown table ref {ref}")
                return shard
            if isinstance(ref, Table):
                shard = self._shards.get(ref.fingerprint.digest)
                if shard is None:
                    raise UnknownTableError(
                        f"table {ref.name!r} ({ref.fingerprint.short}) is not registered"
                    )
                return shard
            if isinstance(ref, str):
                digest = self._names.get(ref)
                if digest is not None:
                    return self._shards[digest]
                if ref in self._shards:
                    return self._shards[ref]
                if len(ref) >= _MIN_DIGEST_PREFIX:
                    matches = [
                        shard
                        for digest, shard in self._shards.items()
                        if digest.startswith(ref)
                    ]
                    if len(matches) == 1:
                        return matches[0]
                    if len(matches) > 1:
                        raise AmbiguousTableError(f"ambiguous digest prefix {ref!r}")
                raise UnknownTableError(f"unknown table {ref!r}")
            raise UnknownTableError(
                f"cannot resolve {type(ref).__name__} as a table ref"
            )

    def table(self, ref: TableLike) -> Table:
        """The live table for ``ref``, rehydrating an evicted shard."""
        shard = self._shard_for(ref)
        return self._materialize(shard)

    def _materialize(self, shard: _Shard) -> Table:
        with self._lock:
            if shard.table is not None:
                return shard.table
            if self._disk is None:
                raise CatalogError(
                    f"shard {shard.ref} was evicted and no cache_dir is configured"
                )
            table = self._disk.get_table(shard.ref.digest)
            if table is None:
                raise CatalogError(
                    f"shard {shard.ref} has no persisted table in the disk cache"
                )
            shard.table = table
            shard.hot = True
            self.rehydrations += 1
            return table

    # -- introspection ---------------------------------------------------------
    def refs(self) -> List[TableRef]:
        """Every live ref, in registration order.

        A shard superseded by :meth:`update` is excluded — new work must
        land on the current version — but stays digest-resolvable through
        :meth:`resolve`/:meth:`table` until its pinned in-flight queries
        drain.
        """
        with self._lock:
            return [
                shard.ref
                for shard in sorted(self._shards.values(), key=lambda s: s.order)
                if shard.superseded_by is None
            ]

    def is_hot(self, ref: TableLike) -> bool:
        return self._shard_for(ref).hot

    def __len__(self) -> int:
        with self._lock:
            return len(self._shards)

    def __contains__(self, ref: TableLike) -> bool:
        try:
            self._shard_for(ref)
            return True
        except CatalogError:
            return False

    def stats(self) -> Dict[str, object]:
        """Counters for serving dashboards and the bench harness."""
        with self._lock:
            live = [
                shard
                for shard in self._shards.values()
                if shard.superseded_by is None
            ]
            hot = sum(1 for shard in live if shard.hot)
            return {
                "shards": len(live),
                "hot": hot,
                "cold": len(live) - hot,
                "asks": sum(shard.asks for shard in self._shards.values()),
                "evictions": self.evictions,
                "rehydrations": self.rehydrations,
                "version": self.version,
                "updates": self.updates,
                "retired": self.retired,
                "superseded": len(self._shards) - len(live),
                "pins": sum(shard.pins for shard in self._shards.values()),
                "retrieval": self._index.stats(),
                "parser": self.interface.parser.cache_stats(),
            }

    # -- question routing ------------------------------------------------------
    def ask(
        self, question: str, ref: TableLike, k: Optional[int] = None
    ) -> "InterfaceResponse":
        """Answer ``question`` against one registered table.

        Bit-identical to calling :meth:`NLInterface.ask` on the same
        table directly — the catalog adds routing, recency bookkeeping
        and (optional) hot-set enforcement, never different answers.
        """
        shard = self._shard_for(ref)
        table = self._materialize(shard)
        response = self.interface.ask(question, table, k=k)
        with self._lock:
            self._touch(shard)
            self._enforce_hot_limit(protect=shard.ref.digest)
        return response

    def ask_many(
        self,
        items: Sequence[Tuple[str, TableLike]],
        k: Optional[int] = None,
        workers: int = 4,
        backend: str = "thread",
        pool=None,
        deadlines: Optional[Sequence[Optional[float]]] = None,
    ) -> List["InterfaceResponse"]:
        """Answer a batch of ``(question, ref)`` pairs, index-aligned.

        Routing resolves every ref up front, then the batch rides
        :meth:`NLInterface.ask_many` — thread pool by default,
        ``backend="process"`` for the GIL-free process pool, or a
        persistent :class:`~repro.perf.pool.WorkerPool` (``pool``)
        reused across batches.  ``deadlines`` (index-aligned absolute
        monotonic instants) bounds each item — see
        :meth:`NLInterface.ask_many`.
        """
        shards = [self._shard_for(ref) for _, ref in items]
        pairs = [
            (question, self._materialize(shard))
            for (question, _), shard in zip(items, shards)
        ]
        responses = self.interface.ask_many(
            pairs, k=k, workers=workers, backend=backend, pool=pool,
            deadlines=deadlines,
        )
        with self._lock:
            protect = {shard.ref.digest for shard in shards}
            for shard in shards:
                self._touch(shard)
            self._enforce_hot_limit(protect=protect)
        return responses

    def routing(
        self, question: str, max_candidates: Optional[int] = None
    ) -> "RoutingDecision":
        """The router's decision for ``question`` — without parsing anything.

        Scores every registered shard against the corpus index and
        reports which shards :meth:`ask_any` would parse (``candidates``)
        versus prune, and whether the broadcast fallback would fire.
        ``max_candidates`` caps the survivors at the top N of the ranking
        through the router's heap path (``None`` defers to the router
        default).  Pure inspection: no shard is materialized, no caches
        change.  ``repro route`` is the CLI face of this method.
        """
        return self._router.route(
            question, self.refs(), max_candidates=max_candidates
        )

    def routing_sets(
        self,
        question: str,
        max_candidates: Optional[int] = None,
        max_proposals: Optional[int] = None,
    ) -> "SetRoutingDecision":
        """The set router's decision for ``question`` — pure inspection.

        The single-shard half (``decision.single``) is byte-identical to
        :meth:`routing`; on top of it the
        :class:`~repro.retrieval.router.ShardSetRouter` reports the
        question's coverable terms, whether one candidate covers them
        all, and the ranked 2–3-shard sets proposed when none does.
        ``max_proposals`` widens (or narrows) the proposal list past the
        serving default — the join bench scores recall@5 and needs more
        than the default four.
        """
        from ..retrieval import ShardSetRouter

        router = self._set_router
        if max_proposals is not None and max_proposals != router.max_proposals:
            router = ShardSetRouter(
                self._index,
                self._router,
                max_set_size=router.max_set_size,
                max_proposals=max_proposals,
                pool_size=router.pool_size,
            )
        return router.route_sets(
            question, self.refs(), max_candidates=max_candidates
        )

    def _compose_from_proposals(
        self,
        question: str,
        decision: "SetRoutingDecision",
        max_attempts: int = 4,
    ) -> Optional["ComposedAnswer"]:
        """Try the proposed shard sets as join pairs; first success wins.

        Proposals arrive ranked; each is tried pair-wise (a 3-shard set
        yields its three pairs) with :func:`~repro.compose.compose_answer`,
        which itself tries both orientations.  ``max_attempts`` bounds
        the total pairs tried so a pathological question cannot turn one
        request into a quadratic composition search.  Any failure just
        moves on — composition never raises out of ``ask_any``.
        """
        from ..compose import compose_answer

        attempts = 0
        for proposal in decision.proposals:
            for first, second in itertools.combinations(proposal.refs, 2):
                if attempts >= max_attempts:
                    return None
                attempts += 1
                try:
                    primary = self.table(first)
                    secondary = self.table(second)
                except CatalogError:
                    continue  # unrehydratable shard: skip this pair
                answer = compose_answer(
                    question,
                    primary,
                    secondary,
                    retrieval_score=proposal.score,
                )
                if answer is not None:
                    return answer
        return None

    def ask_any(
        self,
        question: str,
        k: Optional[int] = None,
        workers: int = 4,
        backend: str = "thread",
        prune: Optional[bool] = None,
        pool=None,
        max_candidates: Optional[int] = None,
        compose: Optional[bool] = None,
    ) -> CatalogAnswer:
        """Answer ``question`` corpus-wide: retrieve, parse survivors, rank.

        The retrieve-then-parse pipeline (default): the
        :class:`~repro.retrieval.router.ShardRouter` scores every shard
        against the corpus index and only the shards with retrieval hits
        are parsed — evicted shards that are pruned out stay on disk.
        When retrieval yields *no* candidate the router falls back to the
        full broadcast, so an answer is never lost to pruning.
        ``prune=False`` (or a catalog built with ``prune=False``) forces
        the broadcast: every registered table is asked and evicted shards
        rehydrate first.  ``max_candidates`` additionally caps the parsed
        shards at the top N of the retrieval ranking (the router's heap
        path); answers stay bit-identical to the broadcast whenever the
        broadcast's top shard survives the cap — the pruning property
        below, unchanged.

        Parsed shards are ranked by their top candidate's model score,
        ties broken by retrieval score then registration order — all
        deterministic, and unchanged by pruning: removing shards never
        reorders the survivors, so the pruned top answer equals the
        broadcast top answer whenever the broadcast's top shard is
        retrievable (property-tested in ``tests/test_retrieval.py``).
        Shards that produce no executable candidate rank last.

        When ``compose`` (default: the catalog's ``compose`` policy) is
        active and the set router proposes shard sets — no single
        candidate covers every anchored question term — a cross-table
        join answer is additionally attempted over the proposed pairs
        (:meth:`_compose_from_proposals`) and attached as
        ``CatalogAnswer.composed``.  Strictly additive: the single-shard
        ranking is computed exactly as before.
        """
        refs = self.refs()
        set_decision = self._set_router.route_sets(
            question, refs, max_candidates=max_candidates
        )
        decision = set_decision.single
        apply_prune = self.prune if prune is None else prune
        targets = list(decision.candidates) if apply_prune else list(refs)
        responses = self.ask_many(
            [(question, ref) for ref in targets],
            k=k,
            workers=workers,
            backend=backend,
            pool=pool,
        )
        order = {ref.digest: position for position, ref in enumerate(refs)}
        retrieval = {scored.ref.digest: scored.score for scored in decision.scored}
        ranked = sorted(
            zip(targets, responses),
            key=lambda pair: (
                -(
                    pair[1].top.candidate.score
                    if pair[1].top is not None
                    else float("-inf")
                ),
                -retrieval.get(pair[0].digest, 0.0),
                order[pair[0].digest],
            ),
        )
        apply_compose = self.compose if compose is None else compose
        composed = (
            self._compose_from_proposals(question, set_decision)
            if apply_compose and set_decision.proposed
            else None
        )
        return CatalogAnswer(
            question=question,
            ranked=list(ranked),
            routing=decision,
            pruned=apply_prune,
            set_routing=set_decision,
            composed=composed,
        )

    # -- eviction --------------------------------------------------------------
    def evict(self, ref: TableLike) -> TableRef:
        """Unload one shard's in-memory state, persisting it first.

        With a ``cache_dir``: the execution bundle is flushed and the
        table pickled to the disk store, then the table and every derived
        cache entry are dropped — the shard survives as a cold stub that
        rehydrates on its next question.  Without one: only derived
        caches are dropped (the table stays resident), since dropping the
        sole copy would lose data.

        The shard's corpus-index posting is deliberately *kept*: routing
        a question must work without the table in memory — that is what
        lets :meth:`ask_any` leave pruned-out cold shards on disk instead
        of rehydrating them just to rank them last.
        """
        shard = self._shard_for(ref)
        with self._lock:
            table = shard.table
            if table is not None:
                if (
                    self._disk is not None
                    and shard.ref.digest not in self._persisted_tables
                ):
                    self._disk.put_table(shard.ref.digest, table)
                    self._persisted_tables.add(shard.ref.digest)
                self.interface.evict_table(table)
                if self._disk is not None:
                    shard.table = None
            shard.hot = False
            self.evictions += 1
            return shard.ref

    def evict_cold(self, keep: int = 0) -> List[TableRef]:
        """Evict all but the ``keep`` most recently used shards."""
        with self._lock:
            by_recency = sorted(
                (shard for shard in self._shards.values() if shard.hot),
                key=lambda shard: shard.last_used,
                reverse=True,
            )
            victims = by_recency[keep:]
        return [self.evict(shard.ref) for shard in victims]

    def _touch(self, shard: _Shard) -> None:
        shard.asks += 1
        shard.last_used = next(self._clock)
        shard.hot = True

    def _enforce_hot_limit(self, protect) -> None:
        """Auto-evict LRU hot shards beyond ``max_hot_shards``.

        ``protect`` (a digest or set of digests) names shards that must
        stay hot — the ones serving the current request.
        """
        if self.max_hot_shards is None:
            return
        protected = {protect} if isinstance(protect, str) else set(protect)
        while True:
            hot = [shard for shard in self._shards.values() if shard.hot]
            if len(hot) <= self.max_hot_shards:
                return
            victims = [s for s in hot if s.ref.digest not in protected]
            if not victims:
                return
            victim = min(victims, key=lambda shard: shard.last_used)
            self.evict(victim.ref)
