"""Training on user feedback (paper Sections 6.2 and 7.3).

The pipeline reproduced here is the one behind the paper's Table 9:

1. start from a baseline parser (trained with weak, answer-only supervision),
2. run the explanation interface on *training* questions and collect
   question-query annotations from (simulated) workers — three workers per
   question, majority vote,
3. retrain the parser with the Equation 8 objective that treats annotated
   examples specially,
4. compare correctness and MRR on a held-out development set against a
   parser trained without the annotations.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataset.dataset import Dataset, DatasetExample
from ..parser.candidates import SemanticParser
from ..parser.evaluation import EvaluationExample, EvaluationReport, evaluate_parser
from ..parser.model import LogLinearModel
from ..parser.training import Trainer, TrainerConfig, TrainingExample
from ..perf.batch import BatchParser
from ..users.feedback import FeedbackCollector, FeedbackConfig, FeedbackResult


@dataclass
class RetrainingComparison:
    """The with-annotations vs. without-annotations comparison of Table 9."""

    train_examples: int
    annotations: int
    with_annotations: EvaluationReport
    without_annotations: EvaluationReport

    @property
    def correctness_gain(self) -> float:
        return (
            self.with_annotations.correctness - self.without_annotations.correctness
        )

    @property
    def mrr_gain(self) -> float:
        return self.with_annotations.mrr - self.without_annotations.mrr

    def summary(self) -> Dict[str, float]:
        return {
            "train_examples": float(self.train_examples),
            "annotations": float(self.annotations),
            "correctness_with": self.with_annotations.correctness,
            "correctness_without": self.without_annotations.correctness,
            "mrr_with": self.with_annotations.mrr,
            "mrr_without": self.without_annotations.mrr,
            "correctness_gain": self.correctness_gain,
            "mrr_gain": self.mrr_gain,
        }


@dataclass
class RetrainingConfig:
    """Knobs of the feedback-retraining pipeline.

    ``prefetch_workers > 1`` warms the baseline parser's content-addressed
    caches concurrently before feedback collection: candidate generation
    is weight-independent, so the sequential worker-in-the-loop pass then
    runs on cache hits.
    """

    epochs: int = 4
    k: int = 7
    seed: int = 53
    feedback: FeedbackConfig = field(default_factory=FeedbackConfig)
    prefetch_workers: int = 0


class RetrainingPipeline:
    """Collect feedback with a baseline parser and retrain on it."""

    def __init__(
        self, baseline: SemanticParser, config: Optional[RetrainingConfig] = None
    ) -> None:
        self.baseline = baseline
        self.config = config or RetrainingConfig()

    # -- feedback collection -------------------------------------------------------
    def collect_feedback(self, examples: Sequence[DatasetExample]) -> FeedbackResult:
        """Run the explanation interface over training questions (step 2)."""
        if (
            self.config.prefetch_workers > 1
            and self.baseline.config.cache_candidates
        ):
            BatchParser(
                self.baseline, max_workers=self.config.prefetch_workers
            ).prewarm([(example.question, example.table) for example in examples])
        collector = FeedbackCollector(self.baseline, self.config.feedback)
        return collector.collect(examples)

    # -- retraining ------------------------------------------------------------------
    def train_parser(
        self,
        training_examples: Sequence[TrainingExample],
        use_annotations: bool,
        fresh: bool = True,
    ) -> SemanticParser:
        """Train a parser on the given examples, with or without annotations."""
        parser = SemanticParser() if fresh else self.baseline
        trainer = Trainer(
            parser,
            TrainerConfig(
                epochs=self.config.epochs,
                use_annotations=use_annotations,
                seed=self.config.seed,
            ),
        )
        trainer.train(list(training_examples))
        return parser

    def compare(
        self,
        annotated_training: Sequence[TrainingExample],
        unannotated_training: Sequence[TrainingExample],
        dev_examples: Sequence[EvaluationExample],
    ) -> RetrainingComparison:
        """Train the two parsers of one Table 9 row and evaluate both on dev."""
        with_annotations = self.train_parser(
            list(annotated_training) + list(unannotated_training), use_annotations=True
        )
        stripped = [
            TrainingExample(
                question=example.question,
                table=example.table,
                answer=example.answer,
                annotated_queries=(),
            )
            for example in annotated_training
        ]
        without_annotations = self.train_parser(
            stripped + list(unannotated_training), use_annotations=False
        )
        report_with = evaluate_parser(with_annotations, dev_examples, k=self.config.k)
        report_without = evaluate_parser(without_annotations, dev_examples, k=self.config.k)
        annotations = sum(1 for example in annotated_training if example.annotated_queries)
        return RetrainingComparison(
            train_examples=len(annotated_training) + len(unannotated_training),
            annotations=annotations,
            with_annotations=report_with,
            without_annotations=report_without,
        )
