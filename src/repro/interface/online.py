"""Online learning from user interactions (the paper's Future Work, Section 9).

The paper retrains the parser *offline* on collected annotations and names
run-time (online) learning as future work: instead of batching feedback,
the parser should update its parameters after every interaction, so that
later questions already benefit from earlier corrections.

:class:`OnlineLearner` implements that loop on top of the existing pieces:

1. parse the incoming question and show the top-k explained candidates,
2. obtain the user's choice (a simulated worker, or any callback),
3. answer with the hybrid policy (user's pick, else the parser's top),
4. immediately apply one AdaGrad update treating the picked query as a
   question-query annotation (Equation 7 with ``|A| = 1``),
5. record the running correctness so learning curves can be plotted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..dcs.executor import answers_match
from ..parser.candidates import SemanticParser
from ..parser.evaluation import EvaluationExample, find_correct_indices
from ..perf.batch import BatchParser
from ..users.worker import SimulatedWorker
from .nl_interface import NLInterface


@dataclass
class OnlineInteraction:
    """One question answered during the online session."""

    index: int
    example: EvaluationExample
    parser_correct: bool
    user_picked: bool
    hybrid_correct: bool
    updated: bool

    @property
    def improved_over_parser(self) -> bool:
        return self.hybrid_correct and not self.parser_correct


@dataclass
class OnlineReport:
    """The outcome of an online-learning session."""

    interactions: List[OnlineInteraction] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.interactions)

    @property
    def updates_applied(self) -> int:
        return sum(1 for interaction in self.interactions if interaction.updated)

    def parser_correctness(self) -> float:
        if not self.interactions:
            return 0.0
        return sum(i.parser_correct for i in self.interactions) / self.total

    def hybrid_correctness(self) -> float:
        if not self.interactions:
            return 0.0
        return sum(i.hybrid_correct for i in self.interactions) / self.total

    def learning_curve(self, window: int = 10) -> List[float]:
        """Moving-average parser correctness over the interaction stream."""
        curve = []
        values = [float(i.parser_correct) for i in self.interactions]
        for end in range(window, len(values) + 1):
            curve.append(sum(values[end - window:end]) / window)
        return curve

    def halves(self) -> tuple:
        """Parser correctness in the first and second half of the stream."""
        middle = self.total // 2
        first = self.interactions[:middle]
        second = self.interactions[middle:]
        rate = lambda chunk: (
            sum(i.parser_correct for i in chunk) / len(chunk) if chunk else 0.0
        )
        return rate(first), rate(second)


class OnlineLearner:
    """Runs the interface and updates the parser after every interaction."""

    def __init__(
        self,
        parser: SemanticParser,
        k: int = 7,
        perturbations: int = 2,
        learn: bool = True,
        prefetch_workers: int = 0,
    ) -> None:
        self.parser = parser
        self.k = k
        self.perturbations = perturbations
        self.learn = learn
        #: With ``prefetch_workers > 1`` the whole question stream is
        #: candidate-generated concurrently up front.  This is sound even
        #: though the model learns between steps: generation is
        #: weight-independent (only ranking reads the weights), so the
        #: per-step interaction below just re-ranks cached candidates.
        self.prefetch_workers = prefetch_workers

    def run(
        self,
        examples: Sequence[EvaluationExample],
        worker: SimulatedWorker,
    ) -> OnlineReport:
        """Process a stream of questions with one simulated worker in the loop."""
        if self.prefetch_workers > 1 and self.parser.config.cache_candidates:
            BatchParser(self.parser, max_workers=self.prefetch_workers).prewarm(
                [(example.question, example.table) for example in examples]
            )
        report = OnlineReport()
        for index, example in enumerate(examples):
            report.interactions.append(self._step(index, example, worker))
        return report

    # -- internals ----------------------------------------------------------------
    def _step(
        self, index: int, example: EvaluationExample, worker: SimulatedWorker
    ) -> OnlineInteraction:
        candidates, _analysis = self.parser.generate_candidates(
            example.question, example.table
        )
        ranked = self.parser.rank(candidates)
        top_k = ranked[: self.k]
        correct = set(
            find_correct_indices(top_k, example, perturbations=self.perturbations)
        )
        displayed_correctness = [i in correct for i in range(len(top_k))]
        decision = worker.review_question(displayed_correctness)

        picked = decision.selected_index
        parser_correct = 0 in correct
        hybrid_correct = (
            displayed_correctness[picked] if picked is not None else parser_correct
        )

        updated = False
        if self.learn and picked is not None:
            updated = self._update_from_choice(example, ranked, top_k[picked])
        return OnlineInteraction(
            index=index,
            example=example,
            parser_correct=parser_correct,
            user_picked=picked is not None,
            hybrid_correct=hybrid_correct,
            updated=updated,
        )

    def _update_from_choice(self, example, ranked, chosen) -> bool:
        """One Equation-7 update: the chosen candidate is the annotation."""
        feature_vectors = [candidate.features for candidate in ranked]
        chosen_indices = [
            index
            for index, candidate in enumerate(ranked)
            if candidate.sexpr == chosen.sexpr
            or (
                candidate.result.values
                and chosen.result.values
                and answers_match(candidate.result.answer_values(), chosen.result.answer_values())
                and type(candidate.query) is type(chosen.query)
            )
        ]
        if not chosen_indices:
            return False
        self.parser.model.update(feature_vectors, chosen_indices)
        return True
