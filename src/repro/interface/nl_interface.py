"""The NL interface: question → explained candidate queries (Sections 2 and 6).

:class:`NLInterface` glues the semantic parser to the explanation
generator: given a question over a table it returns the top-k candidate
queries, each paired with its NL utterance and provenance-based highlight.
This is the object both the deployment loop and the example scripts build
on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..tables.fingerprint import LRUCache
from ..tables.table import Table
from ..core.explanation import ExplanationGenerator, QueryExplanation
from ..parser.candidates import Candidate, ParseOutput, SemanticParser
from ..perf.batch import BatchItem, BatchParser


@dataclass(frozen=True)
class ExplainedCandidate:
    """One candidate query together with its explanation."""

    rank: int
    candidate: Candidate
    explanation: QueryExplanation

    @property
    def utterance(self) -> str:
        return self.explanation.utterance

    @property
    def answer(self) -> Tuple[str, ...]:
        return self.candidate.answer

    def __repr__(self) -> str:
        # Bounded: skips the explanation/provenance graph.
        return (
            f"ExplainedCandidate(rank={self.rank}, answer={self.answer!r}, "
            f"utterance={self.utterance!r})"
        )


@dataclass
class InterfaceResponse:
    """What the interface returns for one question.

    On the batch path a single question can fail — its deadline expired,
    or its pool worker died past every retry — while the rest of the
    batch completes.  Such a response carries the failure in ``error``
    with ``parse=None`` and no explanations; callers that route
    responses onto the wire classify ``error`` into the coded taxonomy.
    """

    question: str
    table: Table
    parse: Optional[ParseOutput]
    explained: List[ExplainedCandidate]
    parse_seconds: float
    explain_seconds: float
    error: Optional[Exception] = None

    @property
    def top(self) -> Optional[ExplainedCandidate]:
        return self.explained[0] if self.explained else None

    def utterances(self) -> List[str]:
        return [item.utterance for item in self.explained]

    def __repr__(self) -> str:
        # Bounded: the generated repr would recurse through the parse
        # output and every explanation — any accidental repr of a served
        # answer (asyncio task formatting, logging) pays the whole graph.
        top = self.top
        return (
            f"InterfaceResponse(question={self.question!r}, "
            f"table={self.table.name!r}, explained=<{len(self.explained)}>, "
            f"top_answer={top.answer if top else ()!r})"
        )

    def as_text(self, ansi: bool = False) -> str:
        """Render the whole candidate list for a terminal."""
        blocks = [f"question: {self.question}", f"table: {self.table.name}", ""]
        for item in self.explained:
            blocks.append(f"--- candidate {item.rank + 1} (answer: {', '.join(item.answer)}) ---")
            blocks.append(item.explanation.as_text(ansi=ansi))
            blocks.append("")
        return "\n".join(blocks)


class NLInterface:
    """A natural-language interface over web tables with query explanations."""

    def __init__(
        self,
        parser: Optional[SemanticParser] = None,
        k: int = 7,
        table_cache_size: int = 64,
    ) -> None:
        self.parser = parser or SemanticParser()
        self.k = k
        self._generators: LRUCache = LRUCache(maxsize=table_cache_size)

    def _generator(self, table: Table) -> ExplanationGenerator:
        # Content-addressed (never id-keyed: ids are recycled) and bounded,
        # mirroring the parser's own per-table caches.
        return self._generators.get_or_create(
            table.fingerprint, lambda: ExplanationGenerator(table)
        )

    def evict_table(self, table: Table) -> None:
        """Unload every in-memory artifact of ``table``'s content.

        The interface-level shard-eviction hook used by
        :class:`~repro.tables.catalog.TableCatalog`: flushes the parser's
        execution bundle to the disk store (when configured), then drops
        the parser caches, the explanation generator and the process-wide
        index/schema entries for this content.  Results after eviction are
        bit-identical — everything dropped is derived state.
        """
        from ..tables.index import evict_index
        from ..tables.schema import evict_schema

        self.parser.flush_table(table)
        self.parser.evict_table(table)
        self._generators.pop(table.fingerprint)
        evict_index(table.fingerprint)
        evict_schema(table.fingerprint)

    def retire_table(self, table: Table) -> None:
        """Drop a *superseded* table version's in-memory derived state.

        Same scope as :meth:`evict_table` minus the disk flush: a retired
        version can never be asked again, so persisting its execution
        bundle would only grow the lineage garbage
        :meth:`~repro.tables.catalog.TableCatalog.prune_lineage` collects.
        Entries of every other fingerprint are untouched.
        """
        from ..tables.index import evict_index
        from ..tables.schema import evict_schema

        self.parser.retire_table(table)
        self._generators.pop(table.fingerprint)
        evict_index(table.fingerprint)
        evict_schema(table.fingerprint)

    def ask(self, question: str, table: Table, k: Optional[int] = None) -> InterfaceResponse:
        """Parse a question and explain the top-k candidates."""
        limit = k if k is not None else self.k
        started = time.perf_counter()
        parse = self.parser.parse(question, table)
        parse_seconds = time.perf_counter() - started

        generator = self._generator(table)
        explained: List[ExplainedCandidate] = []
        started = time.perf_counter()
        for rank, candidate in enumerate(parse.top_k(limit)):
            explanation = generator.explain(candidate.query)
            explained.append(
                ExplainedCandidate(rank=rank, candidate=candidate, explanation=explanation)
            )
        explain_seconds = time.perf_counter() - started
        return InterfaceResponse(
            question=question,
            table=table,
            parse=parse,
            explained=explained,
            parse_seconds=parse_seconds,
            explain_seconds=explain_seconds,
        )

    def ask_many(
        self,
        items: Sequence[Tuple[str, Table]],
        k: Optional[int] = None,
        workers: int = 4,
        backend: str = "thread",
        pool=None,
        deadlines: Optional[Sequence[Optional[float]]] = None,
    ) -> List[InterfaceResponse]:
        """Answer a batch of (question, table) pairs concurrently.

        Parsing fans out over a :class:`~repro.perf.batch.BatchParser`
        worker pool (order-stable, identical to asking sequentially);
        ``backend="process"`` swaps in the GIL-free process pool, and a
        persistent :class:`~repro.perf.pool.WorkerPool` passed as
        ``pool`` is reused across calls instead of building executors
        per batch.  Explanation stays sequential per response since it
        is cheap relative to parsing.  Returns one
        :class:`InterfaceResponse` per input pair, index-aligned.

        ``deadlines`` (index-aligned absolute ``time.monotonic()``
        instants, ``None`` entries wait forever) bounds each item; an
        expired item comes back as an error response while the rest of
        the batch completes — see :class:`InterfaceResponse`.
        """
        limit = k if k is not None else self.k
        batch = BatchParser(
            self.parser, max_workers=workers, backend=backend, pool=pool
        )
        if deadlines is not None:
            inputs = [
                BatchItem(question=question, table=table, deadline=deadline)
                for (question, table), deadline in zip(items, deadlines)
            ]
        else:
            inputs = list(items)
        report = batch.parse_all(inputs)
        warm_explanations = pool.explanations if pool is not None else None
        responses: List[InterfaceResponse] = []
        for result in report:
            if isinstance(result.parse, Exception):
                responses.append(
                    InterfaceResponse(
                        question=result.question,
                        table=result.table,
                        parse=None,
                        explained=[],
                        parse_seconds=result.seconds,
                        explain_seconds=0.0,
                        error=result.parse,
                    )
                )
                continue
            # The generator is built lazily: on a fully warm batch every
            # explanation comes out of the pool registry and an evicted
            # generator is never rebuilt at all.
            generator: Optional[ExplanationGenerator] = None
            started = time.perf_counter()
            explained: List[ExplainedCandidate] = []
            for rank, candidate in enumerate(result.parse.top_k(limit)):
                explanation = None
                key = None
                if warm_explanations is not None:
                    key = (result.table.fingerprint, candidate.sexpr)
                    explanation = warm_explanations.get(key)
                if explanation is None:
                    if generator is None:
                        generator = self._generator(result.table)
                    explanation = generator.explain(candidate.query)
                    if key is not None:
                        warm_explanations.put(key, explanation)
                explained.append(
                    ExplainedCandidate(
                        rank=rank, candidate=candidate, explanation=explanation
                    )
                )
            explain_seconds = time.perf_counter() - started
            responses.append(
                InterfaceResponse(
                    question=result.question,
                    table=result.table,
                    parse=result.parse,
                    explained=explained,
                    parse_seconds=result.seconds,
                    explain_seconds=explain_seconds,
                )
            )
        return responses
