"""The deployed NL interface: explanations, interactive deployment, retraining."""

from .nl_interface import ExplainedCandidate, InterfaceResponse, NLInterface
from .deployment import (
    ChoiceFunction,
    DeploymentOutcome,
    DeploymentReport,
    InteractiveDeployment,
)
from .retraining import RetrainingComparison, RetrainingConfig, RetrainingPipeline
from .session import InterfaceSession, SessionTurn
from .online import OnlineInteraction, OnlineLearner, OnlineReport

__all__ = [
    "OnlineLearner",
    "OnlineReport",
    "OnlineInteraction",
    "NLInterface",
    "InterfaceResponse",
    "ExplainedCandidate",
    "InteractiveDeployment",
    "DeploymentOutcome",
    "DeploymentReport",
    "ChoiceFunction",
    "RetrainingPipeline",
    "RetrainingConfig",
    "RetrainingComparison",
    "InterfaceSession",
    "SessionTurn",
]
