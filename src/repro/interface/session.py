"""A minimal interactive session around the NL interface.

The paper's deployment is a web interface; the reproduction ships a
terminal equivalent that the example scripts (and curious users) can drive:
ask a question, look at the explained candidates, choose one (or none), and
optionally record the choice as feedback for later retraining.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from ..tables.table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.engine import ReproEngine
    from ..tables.catalog import TableCatalog
from ..dcs.ast import Query
from ..parser.training import TrainingExample
from .nl_interface import ExplainedCandidate, InterfaceResponse, NLInterface

#: Reads the user's choice given the rendered candidate list; returns the
#: 0-based index or None.  Defaults to a non-interactive "always top".
ChoicePrompt = Callable[[InterfaceResponse], Optional[int]]


@dataclass
class SessionTurn:
    """One question asked during a session."""

    question: str
    table: Table
    response: InterfaceResponse
    chosen_index: Optional[int]

    @property
    def chosen(self) -> Optional[ExplainedCandidate]:
        if self.chosen_index is None:
            return None
        if 0 <= self.chosen_index < len(self.response.explained):
            return self.response.explained[self.chosen_index]
        return None

    @property
    def executed_query(self) -> Optional[Query]:
        """The query the session executes: the choice, or the parser's top."""
        chosen = self.chosen
        if chosen is not None:
            return chosen.candidate.query
        top = self.response.top
        return top.candidate.query if top else None

    @property
    def answer(self) -> Tuple[str, ...]:
        chosen = self.chosen or self.response.top
        return chosen.answer if chosen else ()


class InterfaceSession:
    """Drives the NL interface over a sequence of questions and tables.

    A session may run over a single shared interface (the seed
    behaviour), over a :class:`~repro.tables.catalog.TableCatalog`, or —
    the unified path — over a :class:`~repro.api.ReproEngine`: with a
    catalog or engine attached, ``ask`` also accepts table *names*,
    fingerprint digests and :class:`~repro.tables.catalog.TableRef`
    handles, routes through the engine's ``query`` façade (so
    recency/eviction bookkeeping sees the session and the answer is the
    same typed result every other surface gets), and auto-registers
    plain :class:`Table` objects it has not seen before.
    """

    def __init__(
        self,
        interface: Optional[NLInterface] = None,
        k: int = 7,
        catalog: Optional["TableCatalog"] = None,
        engine: Optional["ReproEngine"] = None,
    ) -> None:
        if engine is not None and catalog is None:
            catalog = engine.catalog
        if interface is None and catalog is not None:
            interface = catalog.interface
        self.interface = interface or NLInterface(k=k)
        self.catalog = catalog
        self.engine = engine
        self.k = k
        self.turns: List[SessionTurn] = []

    def _engine(self) -> "ReproEngine":
        if self.engine is None:
            from ..api.engine import ReproEngine

            self.engine = ReproEngine(self.catalog)
        return self.engine

    def ask(
        self,
        question: str,
        table,
        choose: Optional[ChoicePrompt] = None,
    ) -> SessionTurn:
        """Ask one question; ``choose`` decides which candidate to accept.

        ``table`` is a :class:`Table`, or — with a catalog/engine
        attached — any ref the catalog resolves (name, digest, digest
        prefix, ref).
        """
        if self.catalog is not None:
            if isinstance(table, Table) and table not in self.catalog:
                self.catalog.register(table)
            ref = self.catalog.resolve(table)
            result = self._engine().query(
                question, target=ref, k=self.k
            )
            if result.error is not None and result.raw is None:
                result.raise_for_error()
            response = result.raw
            table = response.table
        elif not isinstance(table, Table):
            raise TypeError(
                f"a session without a catalog needs a Table, got {type(table).__name__}"
            )
        else:
            response = self.interface.ask(question, table, k=self.k)
        chosen_index = choose(response) if choose is not None else None
        turn = SessionTurn(
            question=question, table=table, response=response, chosen_index=chosen_index
        )
        self.turns.append(turn)
        return turn

    def feedback_examples(self) -> List[TrainingExample]:
        """Question-query pairs from the turns where the user picked a candidate."""
        examples = []
        for turn in self.turns:
            chosen = turn.chosen
            if chosen is None:
                continue
            examples.append(
                TrainingExample(
                    question=turn.question,
                    table=turn.table,
                    answer=tuple(chosen.candidate.result.answer_values()),
                    annotated_queries=(chosen.candidate.query,),
                )
            )
        return examples
