"""Interactive deployment (paper Section 6.3).

At deployment time the interface shows the top-k explained candidates and
lets a user pick the one matching their intention (or *None*).  The system
then answers with the user's pick when there is one, falling back to the
parser's top candidate otherwise — the *hybrid* policy whose correctness
the paper reports in Table 6.

The "user" is pluggable: a :class:`~repro.users.worker.SimulatedWorker`,
a callback (for the interactive example script), or the built-in oracle /
parser-only policies used as upper and lower references.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dcs.ast import Query
from ..parser.candidates import SemanticParser
from ..parser.evaluation import EvaluationExample, find_correct_indices
from ..users.worker import SimulatedWorker
from .nl_interface import ExplainedCandidate, InterfaceResponse, NLInterface

#: A user choice function: receives the explained candidates (in display
#: order) and returns the index of the chosen candidate, or None.
ChoiceFunction = Callable[[Sequence[ExplainedCandidate]], Optional[int]]


@dataclass
class DeploymentOutcome:
    """The result of answering one question interactively."""

    example: EvaluationExample
    response: InterfaceResponse
    display_order: List[int]
    chosen_display_index: Optional[int]
    correct_indices: List[int]

    @property
    def chosen_rank(self) -> Optional[int]:
        """The parser rank of the user's choice (None when the user chose None)."""
        if self.chosen_display_index is None:
            return None
        return self.display_order[self.chosen_display_index]

    @property
    def parser_correct(self) -> bool:
        return 0 in self.correct_indices

    @property
    def user_correct(self) -> bool:
        rank = self.chosen_rank
        return rank is not None and rank in self.correct_indices

    @property
    def hybrid_correct(self) -> bool:
        if self.chosen_rank is not None:
            return self.user_correct
        return self.parser_correct

    @property
    def bound(self) -> bool:
        return bool(self.correct_indices)

    @property
    def returned_query(self) -> Optional[Query]:
        """The query the hybrid policy executes for this question."""
        rank = self.chosen_rank if self.chosen_rank is not None else 0
        candidates = self.response.parse.candidates
        if rank < len(candidates):
            return candidates[rank].query
        return None


@dataclass
class DeploymentReport:
    """Aggregate deployment metrics (the Table 6 scenarios)."""

    outcomes: List[DeploymentOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    def _rate(self, predicate) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for outcome in self.outcomes if predicate(outcome)) / self.total

    @property
    def parser_correctness(self) -> float:
        return self._rate(lambda outcome: outcome.parser_correct)

    @property
    def user_correctness(self) -> float:
        return self._rate(lambda outcome: outcome.user_correct)

    @property
    def hybrid_correctness(self) -> float:
        return self._rate(lambda outcome: outcome.hybrid_correct)

    @property
    def correctness_bound(self) -> float:
        return self._rate(lambda outcome: outcome.bound)

    def summary(self) -> Dict[str, float]:
        return {
            "examples": float(self.total),
            "parser": self.parser_correctness,
            "users": self.user_correctness,
            "hybrid": self.hybrid_correctness,
            "bound": self.correctness_bound,
        }


class InteractiveDeployment:
    """Runs the deployed interface with a pluggable user."""

    def __init__(
        self,
        interface: Optional[NLInterface] = None,
        parser: Optional[SemanticParser] = None,
        k: int = 7,
        shuffle_candidates: bool = True,
        seed: int = 11,
        perturbations: int = 2,
    ) -> None:
        if interface is None:
            interface = NLInterface(parser=parser, k=k)
        self.interface = interface
        self.k = k
        self.shuffle_candidates = shuffle_candidates
        self.perturbations = perturbations
        self._random = random.Random(seed)

    # -- single question -----------------------------------------------------------
    def answer_question(
        self,
        example: EvaluationExample,
        choose: ChoiceFunction,
    ) -> DeploymentOutcome:
        response = self.interface.ask(example.question, example.table, k=self.k)
        correct = find_correct_indices(
            response.parse.top_k(self.k), example, perturbations=self.perturbations
        )
        order = list(range(len(response.explained)))
        if self.shuffle_candidates:
            self._random.shuffle(order)
        displayed = [response.explained[i] for i in order]
        chosen = choose(displayed)
        if chosen is not None and not 0 <= chosen < len(displayed):
            chosen = None
        return DeploymentOutcome(
            example=example,
            response=response,
            display_order=order,
            chosen_display_index=chosen,
            correct_indices=correct,
        )

    # -- batch policies ----------------------------------------------------------------
    def run_with_worker(
        self, examples: Sequence[EvaluationExample], worker: SimulatedWorker
    ) -> DeploymentReport:
        """Answer every question with one simulated worker in the loop."""
        report = DeploymentReport()
        for example in examples:
            outcome = self._answer_with_worker(example, worker)
            report.outcomes.append(outcome)
        return report

    def _answer_with_worker(
        self, example: EvaluationExample, worker: SimulatedWorker
    ) -> DeploymentOutcome:
        response = self.interface.ask(example.question, example.table, k=self.k)
        correct = find_correct_indices(
            response.parse.top_k(self.k), example, perturbations=self.perturbations
        )
        order = list(range(len(response.explained)))
        if self.shuffle_candidates:
            self._random.shuffle(order)
        displayed_correctness = [index in set(correct) for index in order]
        decision = worker.review_question(displayed_correctness)
        return DeploymentOutcome(
            example=example,
            response=response,
            display_order=order,
            chosen_display_index=decision.selected_index,
            correct_indices=correct,
        )

    def run_with_oracle(self, examples: Sequence[EvaluationExample]) -> DeploymentReport:
        """An oracle user who always picks a correct candidate when one exists.

        Its user-correctness equals the correctness bound; used by tests and
        the k-sensitivity bench.
        """
        report = DeploymentReport()
        for example in examples:
            response = self.interface.ask(example.question, example.table, k=self.k)
            correct = find_correct_indices(
                response.parse.top_k(self.k), example, perturbations=self.perturbations
            )
            order = list(range(len(response.explained)))
            chosen = None
            if correct:
                chosen = order.index(correct[0])
            report.outcomes.append(
                DeploymentOutcome(
                    example=example,
                    response=response,
                    display_order=order,
                    chosen_display_index=chosen,
                    correct_indices=correct,
                )
            )
        return report
