"""Lambda DCS → SQL translation (paper Table 10) and a sqlite oracle."""

from .translate import (
    INDEX_COLUMN,
    SECONDARY_TABLE_NAME,
    TABLE_NAME,
    SQLQuery,
    SQLTranslationError,
    literal,
    quote_identifier,
    to_sql,
)
from .sqlite_backend import JoinSQLiteBackend, SQLResult, SQLiteBackend
from .equivalence import (
    EquivalenceReport,
    check_composed_equivalence,
    check_equivalence,
    check_many,
)

__all__ = [
    "to_sql",
    "SQLQuery",
    "SQLTranslationError",
    "literal",
    "quote_identifier",
    "TABLE_NAME",
    "SECONDARY_TABLE_NAME",
    "INDEX_COLUMN",
    "SQLiteBackend",
    "JoinSQLiteBackend",
    "SQLResult",
    "check_equivalence",
    "check_composed_equivalence",
    "check_many",
    "EquivalenceReport",
]
