"""Execution of translated SQL on an in-memory sqlite database.

The paper uses the SQL mapping only to *position* lambda DCS with respect
to relational provenance work; this reproduction goes one step further and
actually runs the translated SQL, which gives an independent oracle for the
lambda DCS executor (see :mod:`repro.sql.equivalence`).
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..tables.schema import infer_schema
from ..tables.table import Table
from ..tables.values import DateValue, NumberValue, StringValue, Value
from ..dcs.ast import Query, ResultKind
from .translate import (
    INDEX_COLUMN,
    SECONDARY_TABLE_NAME,
    TABLE_NAME,
    SQLQuery,
    quote_identifier,
    to_sql,
)

SQLValue = Union[None, int, float, str]


def _storage_value(value: Value, numeric_column: bool) -> SQLValue:
    """How a typed cell value is stored in sqlite.

    Numeric columns store floats (so SQL MAX/SUM behave), date columns store
    ISO strings (which sort correctly), text columns store the display text.
    """
    if isinstance(value, NumberValue):
        return value.number
    if isinstance(value, DateValue):
        if numeric_column and value.is_numeric:
            return value.as_number()
        return value.display()
    if numeric_column:
        # A stray textual value in a numeric column: keep the text.
        return value.display()
    return value.display()


class SQLiteBackend:
    """Materialise one :class:`Table` into sqlite and run translated queries."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.schema = infer_schema(table)
        self.connection = sqlite3.connect(":memory:")
        self._create_and_fill(table, self.schema, TABLE_NAME)

    # -- setup ---------------------------------------------------------------
    def _create_and_fill(self, table: Table, schema, sql_name: str) -> None:
        column_defs = [f"{quote_identifier(INDEX_COLUMN)} INTEGER PRIMARY KEY"]
        for column in table.columns:
            profile = schema.column(column)
            if profile.is_numeric:
                column_defs.append(f"{quote_identifier(column)} REAL")
            else:
                column_defs.append(f"{quote_identifier(column)} TEXT COLLATE NOCASE")
        create = f"CREATE TABLE {sql_name} ({', '.join(column_defs)})"
        self.connection.execute(create)

        placeholders = ", ".join("?" for _ in range(len(table.columns) + 1))
        insert = f"INSERT INTO {sql_name} VALUES ({placeholders})"
        rows = []
        for record in table.records:
            row: List[SQLValue] = [record.index]
            for cell in record.cells:
                numeric = schema.column(cell.column).is_numeric
                row.append(_storage_value(cell.value, numeric))
            rows.append(tuple(row))
        self.connection.executemany(insert, rows)
        self.connection.commit()

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution -------------------------------------------------------------
    def run_sql(self, sql: str) -> List[Tuple[SQLValue, ...]]:
        """Run raw SQL and return all rows."""
        cursor = self.connection.execute(sql)
        return cursor.fetchall()

    def run_query(self, query: Query) -> "SQLResult":
        """Translate a lambda DCS query and execute it."""
        translated = to_sql(query)
        rows = self.run_sql(translated.sql)
        return SQLResult(kind=translated.kind, rows=rows, sql=translated.sql)


class JoinSQLiteBackend(SQLiteBackend):
    """Materialise a (primary, secondary) pair as ``T`` and ``T2``.

    One in-memory connection holds both tables, so a translated
    ``join-records`` query — which references ``T`` and ``T2`` in the
    same statement — runs as a genuine two-table sqlite JOIN.  Single
    -table queries over the primary run unchanged (``T`` is identical
    to the plain backend's).
    """

    def __init__(self, primary: Table, secondary: Table) -> None:
        super().__init__(primary)
        self.secondary = secondary
        self.secondary_schema = infer_schema(secondary)
        self._create_and_fill(
            secondary, self.secondary_schema, SECONDARY_TABLE_NAME
        )


class SQLResult:
    """The rows returned by a translated query, with typed accessors."""

    def __init__(self, kind: ResultKind, rows: Sequence[Tuple[SQLValue, ...]], sql: str) -> None:
        self.kind = kind
        self.rows = list(rows)
        self.sql = sql

    def record_indices(self) -> frozenset:
        if self.kind != ResultKind.RECORDS:
            raise ValueError("not a records result")
        return frozenset(int(row[0]) for row in self.rows if row[0] is not None)

    def scalar(self) -> Optional[float]:
        if self.kind != ResultKind.SCALAR:
            raise ValueError("not a scalar result")
        if not self.rows or self.rows[0][0] is None:
            return None
        return float(self.rows[0][0])

    def values(self) -> List[SQLValue]:
        if self.kind == ResultKind.RECORDS:
            raise ValueError("a records result has no value list")
        return [row[0] for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"SQLResult({self.kind.value}, {self.rows!r})"
