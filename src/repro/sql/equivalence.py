"""Cross-checking the lambda DCS executor against the SQL translation.

For a query ``Q`` and table ``T`` this module runs both the native executor
(:mod:`repro.dcs.executor`) and the translated SQL on sqlite
(:mod:`repro.sql.sqlite_backend`) and compares the results.  It is used by
the test suite as an oracle and exposed in the public API because it is a
useful debugging tool when adding new operators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..tables.table import Table
from ..tables.values import DateValue, NumberValue, StringValue, Value
from ..dcs.ast import Query, ResultKind
from ..dcs.executor import ExecutionResult, execute
from .sqlite_backend import JoinSQLiteBackend, SQLResult, SQLiteBackend, SQLValue


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of comparing the DCS executor with the SQL translation."""

    query: Query
    equivalent: bool
    detail: str
    dcs_result: ExecutionResult
    sql_result: SQLResult

    def __bool__(self) -> bool:
        return self.equivalent


def _normalise_sql_value(value: SQLValue) -> object:
    if value is None:
        return None
    if isinstance(value, (int, float)):
        return round(float(value), 6)
    text = str(value).strip()
    try:
        return round(float(text), 6)
    except ValueError:
        return text.lower()


def _normalise_dcs_value(value: Value) -> object:
    if isinstance(value, NumberValue):
        return round(value.number, 6)
    if isinstance(value, DateValue):
        if value.is_numeric:
            return round(value.as_number(), 6)
        return value.display().lower()
    text = value.display().strip()
    try:
        return round(float(text.replace(",", "")), 6)
    except ValueError:
        return text.lower()


def _multiset(items: Sequence[object]) -> dict:
    counts: dict = {}
    for item in items:
        counts[item] = counts.get(item, 0) + 1
    return counts


def check_equivalence(query: Query, table: Table, backend: Optional[SQLiteBackend] = None) -> EquivalenceReport:
    """Execute ``query`` both natively and through SQL and compare the results.

    * RECORDS queries compare the selected index sets,
    * VALUES queries compare the value multisets (normalised),
    * SCALAR queries compare the numbers up to a small tolerance.
    """
    dcs_result = execute(query, table)
    own_backend = backend is None
    backend = backend or SQLiteBackend(table)
    try:
        sql_result = backend.run_query(query)
    finally:
        if own_backend:
            backend.close()
    equivalent, detail = _compare_results(query, dcs_result, sql_result)
    return EquivalenceReport(
        query=query,
        equivalent=equivalent,
        detail=detail,
        dcs_result=dcs_result,
        sql_result=sql_result,
    )


def check_composed_equivalence(
    query: Query,
    primary: Table,
    secondary: Table,
    backend: Optional[JoinSQLiteBackend] = None,
) -> EquivalenceReport:
    """The two-table oracle: composed execution vs translated JOIN SQL.

    Runs ``query`` (a tree containing one
    :class:`~repro.dcs.ast.JoinRecords` bridge) natively with the
    :class:`~repro.compose.ComposedExecutor` and through the translated
    SQL over a :class:`JoinSQLiteBackend` materialising both tables,
    then compares with the same normalisation rules as the single-table
    check.  This is the gate ``repro bench-join`` enforces on every
    composed answer.
    """
    from ..compose.executor import ComposedExecutor

    dcs_result = ComposedExecutor(primary, secondary).execute(query)
    own_backend = backend is None
    backend = backend or JoinSQLiteBackend(primary, secondary)
    try:
        sql_result = backend.run_query(query)
    finally:
        if own_backend:
            backend.close()
    equivalent, detail = _compare_results(query, dcs_result, sql_result)
    return EquivalenceReport(
        query=query,
        equivalent=equivalent,
        detail=detail,
        dcs_result=dcs_result,
        sql_result=sql_result,
    )


def _compare_results(
    query: Query, dcs_result: ExecutionResult, sql_result: SQLResult
):
    if query.result_kind == ResultKind.RECORDS:
        dcs_indices = dcs_result.record_indices
        sql_indices = sql_result.record_indices()
        equivalent = dcs_indices == sql_indices
        detail = f"dcs indices {sorted(dcs_indices)} vs sql indices {sorted(sql_indices)}"
    elif query.result_kind == ResultKind.VALUES:
        dcs_values = [_normalise_dcs_value(v) for v in dcs_result.values]
        sql_values = [_normalise_sql_value(v) for v in sql_result.values()]
        # The SQL translation of unions and most-common dedupes values, so
        # compare distinct sets rather than multisets.
        equivalent = set(dcs_values) == set(sql_values)
        detail = f"dcs values {sorted(map(str, set(dcs_values)))} vs sql values {sorted(map(str, set(sql_values)))}"
    else:
        sql_scalar = sql_result.scalar()
        if dcs_result.is_empty:
            equivalent = sql_scalar is None or sql_scalar == 0
            detail = f"dcs empty vs sql {sql_scalar}"
        else:
            dcs_scalar = _normalise_dcs_value(dcs_result.scalar())
            if sql_scalar is None or not isinstance(dcs_scalar, float):
                equivalent = False
                detail = f"dcs {dcs_scalar} vs sql {sql_scalar}"
            else:
                equivalent = math.isclose(dcs_scalar, sql_scalar, rel_tol=1e-6, abs_tol=1e-6)
                detail = f"dcs {dcs_scalar} vs sql {sql_scalar}"

    return equivalent, detail


def check_many(queries: Sequence[Query], table: Table) -> List[EquivalenceReport]:
    """Check a batch of queries against one table, reusing a single backend."""
    reports = []
    with SQLiteBackend(table) as backend:
        for query in queries:
            reports.append(check_equivalence(query, table, backend=backend))
    return reports
