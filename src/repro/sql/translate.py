"""Translation of lambda DCS queries into SQL (the paper's Table 10).

The paper positions lambda DCS as an expressive fragment of SQL by giving a
translation of every operator into a SQL query over a single table ``T``
with an explicit ``Index`` attribute.  This module reproduces that mapping.

The generated SQL follows three conventions so that arbitrary compositions
of operators remain valid SQL:

* a RECORDS sub-query always selects the record indices:
  ``SELECT "Index" FROM T WHERE ...``,
* a VALUES sub-query always selects a single column aliased ``val``:
  ``SELECT "City" AS val FROM T WHERE ...``,
* a SCALAR sub-query always selects a single scalar expression.

The sqlite backend (:mod:`repro.sql.sqlite_backend`) executes the generated
SQL and :mod:`repro.sql.equivalence` checks it against the native lambda DCS
executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..tables.values import DateValue, NumberValue, StringValue, Value
from ..dcs import ast
from ..dcs.ast import AggregateFunction, ComparisonOperator, Query, ResultKind, SuperlativeKind
from ..dcs.errors import DCSError

#: Name of the materialised table in the generated SQL.
TABLE_NAME = "T"
#: Name of the record-index attribute (paper Section 3.1).
INDEX_COLUMN = "Index"


class SQLTranslationError(DCSError):
    """Raised when a query cannot be expressed in the Table 10 SQL fragment."""


@dataclass(frozen=True)
class SQLQuery:
    """A translated query: the SQL text plus what it returns."""

    sql: str
    kind: ResultKind

    def __str__(self) -> str:
        return self.sql


def quote_identifier(name: str) -> str:
    """Quote a column name for SQL (double-quote style)."""
    return '"' + name.replace('"', '""') + '"'


def literal(value: Value) -> str:
    """Render a typed value as a SQL literal."""
    if isinstance(value, NumberValue):
        return value.display()
    if isinstance(value, DateValue):
        if value.is_numeric:
            return str(int(value.as_number()))
        return "'" + value.display() + "'"
    text = value.display() if not isinstance(value, StringValue) else value.text
    return "'" + text.replace("'", "''") + "'"


def to_sql(query: Query, pretty: bool = False) -> SQLQuery:
    """Translate a lambda DCS query to SQL.

    Parameters
    ----------
    query:
        The lambda DCS query to translate.
    pretty:
        When True the SQL is re-indented for display (used by the Table 10
        reference bench); otherwise a compact single-line query is produced.
    """
    sql = _translate(query)
    if pretty:
        sql = _prettify(sql)
    return SQLQuery(sql=sql, kind=query.result_kind)


# ---------------------------------------------------------------------------
# recursive translation
# ---------------------------------------------------------------------------


def _translate(query: Query) -> str:
    handler = _HANDLERS.get(type(query))
    if handler is None:
        raise SQLTranslationError(f"no SQL translation for {type(query).__name__}")
    return handler(query)


def _records_sql(query: Query) -> str:
    if query.result_kind != ResultKind.RECORDS:
        raise SQLTranslationError("expected a records sub-query")
    return _translate(query)


def _values_sql(query: Query) -> str:
    if query.result_kind != ResultKind.VALUES:
        raise SQLTranslationError("expected a values sub-query")
    return _translate(query)


def _scalar_or_values_sql(query: Query) -> str:
    if query.result_kind == ResultKind.RECORDS:
        raise SQLTranslationError("difference operands cannot be record sets")
    return _translate(query)


def _index(column: str = INDEX_COLUMN) -> str:
    return quote_identifier(column)


def _column(column: str) -> str:
    return quote_identifier(column)


def _t_all_records(query: ast.AllRecords) -> str:
    return f"SELECT {_index()} FROM {TABLE_NAME}"


def _t_value_literal(query: ast.ValueLiteral) -> str:
    return f"SELECT {literal(query.value)} AS val"


def _t_column_records(query: ast.ColumnRecords) -> str:
    values = _values_sql(query.value)
    return (
        f"SELECT {_index()} FROM {TABLE_NAME} "
        f"WHERE {_column(query.column)} IN ({values})"
    )


def _t_comparison_records(query: ast.ComparisonRecords) -> str:
    values = _values_sql(query.value)
    op = {"!=": "<>"}.get(query.op.value, query.op.value)
    return (
        f"SELECT {_index()} FROM {TABLE_NAME} "
        f"WHERE {_column(query.column)} {op} ({values})"
    )


def _t_prev_records(query: ast.PrevRecords) -> str:
    records = _records_sql(query.records)
    return (
        f"SELECT {_index()} FROM {TABLE_NAME} "
        f"WHERE {_index()} IN (SELECT {_index()} - 1 FROM ({records}))"
    )


def _t_next_records(query: ast.NextRecords) -> str:
    records = _records_sql(query.records)
    return (
        f"SELECT {_index()} FROM {TABLE_NAME} "
        f"WHERE {_index()} IN (SELECT {_index()} + 1 FROM ({records}))"
    )


def _t_intersection(query: ast.Intersection) -> str:
    left = _records_sql(query.left)
    right = _records_sql(query.right)
    return (
        f"SELECT {_index()} FROM {TABLE_NAME} "
        f"WHERE {_index()} IN ({left}) AND {_index()} IN ({right})"
    )


def _t_union(query: ast.Union) -> str:
    if query.result_kind == ResultKind.RECORDS:
        left = _records_sql(query.left)
        right = _records_sql(query.right)
        return (
            f"SELECT {_index()} FROM {TABLE_NAME} "
            f"WHERE {_index()} IN ({left}) OR {_index()} IN ({right})"
        )
    left = _values_sql(query.left)
    right = _values_sql(query.right)
    return f"SELECT val FROM ({left}) UNION SELECT val FROM ({right})"


def _t_superlative_records(query: ast.SuperlativeRecords) -> str:
    records = _records_sql(query.records)
    aggr = "MAX" if query.kind == SuperlativeKind.ARGMAX else "MIN"
    column = _column(query.column)
    return (
        f"SELECT {_index()} FROM {TABLE_NAME} "
        f"WHERE {_index()} IN ({records}) AND {column} = ("
        f"SELECT {aggr}({column}) FROM {TABLE_NAME} WHERE {_index()} IN ({records}))"
    )


def _t_first_last_records(query: ast.FirstLastRecords) -> str:
    records = _records_sql(query.records)
    aggr = "MAX" if query.kind == SuperlativeKind.ARGMAX else "MIN"
    return (
        f"SELECT {_index()} FROM {TABLE_NAME} "
        f"WHERE {_index()} = (SELECT {aggr}({_index()}) FROM ({records}))"
    )


def _t_column_values(query: ast.ColumnValues) -> str:
    records = _records_sql(query.records)
    return (
        f"SELECT {_column(query.column)} AS val FROM {TABLE_NAME} "
        f"WHERE {_index()} IN ({records})"
    )


def _t_index_superlative(query: ast.IndexSuperlative) -> str:
    records = _records_sql(query.records)
    aggr = "MAX" if query.kind == SuperlativeKind.ARGMAX else "MIN"
    return (
        f"SELECT {_column(query.column)} AS val FROM {TABLE_NAME} "
        f"WHERE {_index()} = (SELECT {aggr}({_index()}) FROM ({records}))"
    )


def _t_most_common(query: ast.MostCommonValue) -> str:
    values = _values_sql(query.values)
    column = _column(query.column)
    extreme = "MAX" if query.kind == SuperlativeKind.ARGMAX else "MIN"
    counts = (
        f"SELECT COUNT(*) AS cnt FROM {TABLE_NAME} "
        f"WHERE {column} IN ({values}) GROUP BY {column}"
    )
    return (
        f"SELECT {column} AS val FROM {TABLE_NAME} "
        f"WHERE {column} IN ({values}) GROUP BY {column} "
        f"HAVING COUNT(*) = (SELECT {extreme}(cnt) FROM ({counts}))"
    )


def _t_compare_values(query: ast.CompareValues) -> str:
    values = _values_sql(query.values)
    key = _column(query.key_column)
    value = _column(query.value_column)
    aggr = "MAX" if query.kind == SuperlativeKind.ARGMAX else "MIN"
    return (
        f"SELECT DISTINCT {value} AS val FROM {TABLE_NAME} "
        f"WHERE {value} IN ({values}) AND {key} = ("
        f"SELECT {aggr}({key}) FROM {TABLE_NAME} WHERE {value} IN ({values}))"
    )


def _t_aggregate(query: ast.Aggregate) -> str:
    function = query.function
    if function == AggregateFunction.COUNT:
        operand = _translate(query.operand)
        return f"SELECT COUNT(*) AS val FROM ({operand})"
    values = _values_sql(query.operand)
    sql_function = {"max": "MAX", "min": "MIN", "sum": "SUM", "avg": "AVG"}[function.value]
    return f"SELECT {sql_function}(val) AS val FROM ({values})"


def _t_difference(query: ast.Difference) -> str:
    left = _scalar_or_values_sql(query.left)
    right = _scalar_or_values_sql(query.right)
    return f"SELECT ABS(({left}) - ({right})) AS val"


_HANDLERS = {
    ast.AllRecords: _t_all_records,
    ast.ValueLiteral: _t_value_literal,
    ast.ColumnRecords: _t_column_records,
    ast.ComparisonRecords: _t_comparison_records,
    ast.PrevRecords: _t_prev_records,
    ast.NextRecords: _t_next_records,
    ast.Intersection: _t_intersection,
    ast.Union: _t_union,
    ast.SuperlativeRecords: _t_superlative_records,
    ast.FirstLastRecords: _t_first_last_records,
    ast.ColumnValues: _t_column_values,
    ast.IndexSuperlative: _t_index_superlative,
    ast.MostCommonValue: _t_most_common,
    ast.CompareValues: _t_compare_values,
    ast.Aggregate: _t_aggregate,
    ast.Difference: _t_difference,
}


# ---------------------------------------------------------------------------
# pretty-printing
# ---------------------------------------------------------------------------


def _prettify(sql: str) -> str:
    """Very small formatter: break before top-level keywords, indent by nesting."""
    output = []
    depth = 0
    i = 0
    while i < len(sql):
        char = sql[i]
        if char == "(":
            depth += 1
            output.append(char)
        elif char == ")":
            depth -= 1
            output.append(char)
        elif sql.startswith(" WHERE ", i) or sql.startswith(" FROM (SELECT", i):
            output.append("\n" + "  " * (depth + 1) + sql[i + 1 :].split(" ", 1)[0] + " ")
            i += 1 + len(sql[i + 1 :].split(" ", 1)[0])
            continue
        else:
            output.append(char)
        i += 1
    return "".join(output)
