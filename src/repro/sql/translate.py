"""Translation of lambda DCS queries into SQL (the paper's Table 10).

The paper positions lambda DCS as an expressive fragment of SQL by giving a
translation of every operator into a SQL query over a single table ``T``
with an explicit ``Index`` attribute.  This module reproduces that mapping.

The generated SQL follows three conventions so that arbitrary compositions
of operators remain valid SQL:

* a RECORDS sub-query always selects the record indices:
  ``SELECT "Index" FROM T WHERE ...``,
* a VALUES sub-query always selects a single column aliased ``val``:
  ``SELECT "City" AS val FROM T WHERE ...``,
* a SCALAR sub-query always selects a single scalar expression.

The sqlite backend (:mod:`repro.sql.sqlite_backend`) executes the generated
SQL and :mod:`repro.sql.equivalence` checks it against the native lambda DCS
executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..tables.values import DateValue, NumberValue, StringValue, Value
from ..dcs import ast
from ..dcs.ast import AggregateFunction, ComparisonOperator, Query, ResultKind, SuperlativeKind
from ..dcs.errors import DCSError

#: Name of the materialised (primary) table in the generated SQL.
TABLE_NAME = "T"
#: Name of the secondary table a join-records bridge reads from.
SECONDARY_TABLE_NAME = "T2"
#: Name of the record-index attribute (paper Section 3.1).
INDEX_COLUMN = "Index"


class SQLTranslationError(DCSError):
    """Raised when a query cannot be expressed in the Table 10 SQL fragment."""


@dataclass(frozen=True)
class SQLQuery:
    """A translated query: the SQL text plus what it returns."""

    sql: str
    kind: ResultKind

    def __str__(self) -> str:
        return self.sql


def quote_identifier(name: str) -> str:
    """Quote a column name for SQL (double-quote style)."""
    return '"' + name.replace('"', '""') + '"'


def literal(value: Value) -> str:
    """Render a typed value as a SQL literal."""
    if isinstance(value, NumberValue):
        return value.display()
    if isinstance(value, DateValue):
        if value.is_numeric:
            return str(int(value.as_number()))
        return "'" + value.display() + "'"
    text = value.display() if not isinstance(value, StringValue) else value.text
    return "'" + text.replace("'", "''") + "'"


def to_sql(query: Query, pretty: bool = False) -> SQLQuery:
    """Translate a lambda DCS query to SQL.

    Parameters
    ----------
    query:
        The lambda DCS query to translate.
    pretty:
        When True the SQL is re-indented for display (used by the Table 10
        reference bench); otherwise a compact single-line query is produced.
    """
    sql = _translate(query)
    if pretty:
        sql = _prettify(sql)
    return SQLQuery(sql=sql, kind=query.result_kind)


# ---------------------------------------------------------------------------
# recursive translation
# ---------------------------------------------------------------------------


def _translate(query: Query, table: str = TABLE_NAME) -> str:
    handler = _HANDLERS.get(type(query))
    if handler is None:
        raise SQLTranslationError(f"no SQL translation for {type(query).__name__}")
    return handler(query, table)


def _records_sql(query: Query, table: str) -> str:
    if query.result_kind != ResultKind.RECORDS:
        raise SQLTranslationError("expected a records sub-query")
    return _translate(query, table)


def _values_sql(query: Query, table: str) -> str:
    if query.result_kind != ResultKind.VALUES:
        raise SQLTranslationError("expected a values sub-query")
    return _translate(query, table)


def _scalar_or_values_sql(query: Query, table: str) -> str:
    if query.result_kind == ResultKind.RECORDS:
        raise SQLTranslationError("difference operands cannot be record sets")
    return _translate(query, table)


def _index(column: str = INDEX_COLUMN) -> str:
    return quote_identifier(column)


def _column(column: str) -> str:
    return quote_identifier(column)


def _t_all_records(query: ast.AllRecords, table: str) -> str:
    return f"SELECT {_index()} FROM {table}"


def _t_value_literal(query: ast.ValueLiteral, table: str) -> str:
    return f"SELECT {literal(query.value)} AS val"


def _t_column_records(query: ast.ColumnRecords, table: str) -> str:
    values = _values_sql(query.value, table)
    return (
        f"SELECT {_index()} FROM {table} "
        f"WHERE {_column(query.column)} IN ({values})"
    )


def _t_comparison_records(query: ast.ComparisonRecords, table: str) -> str:
    values = _values_sql(query.value, table)
    op = {"!=": "<>"}.get(query.op.value, query.op.value)
    return (
        f"SELECT {_index()} FROM {table} "
        f"WHERE {_column(query.column)} {op} ({values})"
    )


def _t_prev_records(query: ast.PrevRecords, table: str) -> str:
    records = _records_sql(query.records, table)
    return (
        f"SELECT {_index()} FROM {table} "
        f"WHERE {_index()} IN (SELECT {_index()} - 1 FROM ({records}))"
    )


def _t_next_records(query: ast.NextRecords, table: str) -> str:
    records = _records_sql(query.records, table)
    return (
        f"SELECT {_index()} FROM {table} "
        f"WHERE {_index()} IN (SELECT {_index()} + 1 FROM ({records}))"
    )


def _t_intersection(query: ast.Intersection, table: str) -> str:
    left = _records_sql(query.left, table)
    right = _records_sql(query.right, table)
    return (
        f"SELECT {_index()} FROM {table} "
        f"WHERE {_index()} IN ({left}) AND {_index()} IN ({right})"
    )


def _t_join_records(query: ast.JoinRecords, table: str) -> str:
    """The cross-table bridge: a real two-table JOIN.

    The right sub-query is translated against the secondary table
    (``T2``); the JOIN keeps primary rows whose ``left_column`` equals
    the ``right_column`` of a selected secondary row.  ``DISTINCT``
    mirrors the semi-join semantics — duplicate secondary matches fan
    out in provenance, not in the record set.
    """
    records = _records_sql(query.records, SECONDARY_TABLE_NAME)
    secondary = SECONDARY_TABLE_NAME
    return (
        f"SELECT DISTINCT {table}.{_index()} FROM {table} "
        f"JOIN {secondary} ON "
        f"{table}.{_column(query.left_column)} = "
        f"{secondary}.{_column(query.right_column)} "
        f"WHERE {secondary}.{_index()} IN ({records})"
    )


def _t_union(query: ast.Union, table: str) -> str:
    if query.result_kind == ResultKind.RECORDS:
        left = _records_sql(query.left, table)
        right = _records_sql(query.right, table)
        return (
            f"SELECT {_index()} FROM {table} "
            f"WHERE {_index()} IN ({left}) OR {_index()} IN ({right})"
        )
    left = _values_sql(query.left, table)
    right = _values_sql(query.right, table)
    return f"SELECT val FROM ({left}) UNION SELECT val FROM ({right})"


def _t_superlative_records(query: ast.SuperlativeRecords, table: str) -> str:
    records = _records_sql(query.records, table)
    aggr = "MAX" if query.kind == SuperlativeKind.ARGMAX else "MIN"
    column = _column(query.column)
    return (
        f"SELECT {_index()} FROM {table} "
        f"WHERE {_index()} IN ({records}) AND {column} = ("
        f"SELECT {aggr}({column}) FROM {table} WHERE {_index()} IN ({records}))"
    )


def _t_first_last_records(query: ast.FirstLastRecords, table: str) -> str:
    records = _records_sql(query.records, table)
    aggr = "MAX" if query.kind == SuperlativeKind.ARGMAX else "MIN"
    return (
        f"SELECT {_index()} FROM {table} "
        f"WHERE {_index()} = (SELECT {aggr}({_index()}) FROM ({records}))"
    )


def _t_column_values(query: ast.ColumnValues, table: str) -> str:
    records = _records_sql(query.records, table)
    return (
        f"SELECT {_column(query.column)} AS val FROM {table} "
        f"WHERE {_index()} IN ({records})"
    )


def _t_index_superlative(query: ast.IndexSuperlative, table: str) -> str:
    records = _records_sql(query.records, table)
    aggr = "MAX" if query.kind == SuperlativeKind.ARGMAX else "MIN"
    return (
        f"SELECT {_column(query.column)} AS val FROM {table} "
        f"WHERE {_index()} = (SELECT {aggr}({_index()}) FROM ({records}))"
    )


def _t_most_common(query: ast.MostCommonValue, table: str) -> str:
    values = _values_sql(query.values, table)
    column = _column(query.column)
    extreme = "MAX" if query.kind == SuperlativeKind.ARGMAX else "MIN"
    counts = (
        f"SELECT COUNT(*) AS cnt FROM {table} "
        f"WHERE {column} IN ({values}) GROUP BY {column}"
    )
    return (
        f"SELECT {column} AS val FROM {table} "
        f"WHERE {column} IN ({values}) GROUP BY {column} "
        f"HAVING COUNT(*) = (SELECT {extreme}(cnt) FROM ({counts}))"
    )


def _t_compare_values(query: ast.CompareValues, table: str) -> str:
    values = _values_sql(query.values, table)
    key = _column(query.key_column)
    value = _column(query.value_column)
    aggr = "MAX" if query.kind == SuperlativeKind.ARGMAX else "MIN"
    return (
        f"SELECT DISTINCT {value} AS val FROM {table} "
        f"WHERE {value} IN ({values}) AND {key} = ("
        f"SELECT {aggr}({key}) FROM {table} WHERE {value} IN ({values}))"
    )


def _t_aggregate(query: ast.Aggregate, table: str) -> str:
    function = query.function
    if function == AggregateFunction.COUNT:
        operand = _translate(query.operand, table)
        return f"SELECT COUNT(*) AS val FROM ({operand})"
    values = _values_sql(query.operand, table)
    sql_function = {"max": "MAX", "min": "MIN", "sum": "SUM", "avg": "AVG"}[function.value]
    return f"SELECT {sql_function}(val) AS val FROM ({values})"


def _t_difference(query: ast.Difference, table: str) -> str:
    left = _scalar_or_values_sql(query.left, table)
    right = _scalar_or_values_sql(query.right, table)
    return f"SELECT ABS(({left}) - ({right})) AS val"


_HANDLERS = {
    ast.AllRecords: _t_all_records,
    ast.ValueLiteral: _t_value_literal,
    ast.ColumnRecords: _t_column_records,
    ast.ComparisonRecords: _t_comparison_records,
    ast.PrevRecords: _t_prev_records,
    ast.NextRecords: _t_next_records,
    ast.Intersection: _t_intersection,
    ast.JoinRecords: _t_join_records,
    ast.Union: _t_union,
    ast.SuperlativeRecords: _t_superlative_records,
    ast.FirstLastRecords: _t_first_last_records,
    ast.ColumnValues: _t_column_values,
    ast.IndexSuperlative: _t_index_superlative,
    ast.MostCommonValue: _t_most_common,
    ast.CompareValues: _t_compare_values,
    ast.Aggregate: _t_aggregate,
    ast.Difference: _t_difference,
}


# ---------------------------------------------------------------------------
# pretty-printing
# ---------------------------------------------------------------------------


def _prettify(sql: str) -> str:
    """Very small formatter: break before top-level keywords, indent by nesting."""
    output = []
    depth = 0
    i = 0
    while i < len(sql):
        char = sql[i]
        if char == "(":
            depth += 1
            output.append(char)
        elif char == ")":
            depth -= 1
            output.append(char)
        elif sql.startswith(" WHERE ", i) or sql.startswith(" FROM (SELECT", i):
            output.append("\n" + "  " * (depth + 1) + sql[i + 1 :].split(" ", 1)[0] + " ")
            i += 1 + len(sql[i + 1 :].split(" ", 1)[0])
            continue
        else:
            output.append(char)
        i += 1
    return "".join(output)
