"""The content-addressed corpus index: normalized terms → shard digests.

One :class:`ShardPosting` summarises everything retrieval may match a
shard through; the :class:`CorpusIndex` holds the postings of a whole
catalog as inverted maps so a question is scored against *terms*, never
against shards — O(question terms), not O(shards).

The recall-superset contract
----------------------------
Term extraction is built from the exact normalization functions of
:mod:`repro.parser.lexicon` (:func:`~repro.parser.lexicon.normalize_value_key`,
:func:`~repro.parser.lexicon.column_matchable_tokens`,
:func:`~repro.parser.lexicon.question_phrases`,
:func:`~repro.parser.lexicon.tokenize`), which makes the following hold
by construction, not by tuning:

* a shard where the lexicon could produce an :class:`EntityMatch` has
  the matched phrase in its posting's ``entity_keys`` — and the question
  probes every span phrase, so the shard scores a hit;
* a shard where the lexicon could produce a :class:`ColumnMatch` shares
  a header token with the question (column matching requires at least
  one common token), so the shard scores a hit;
* number mentions are probed through the same
  :func:`~repro.tables.values.parse_number` the lexicon uses and matched
  against quantized numeric cell values (:class:`NumberValue` equality,
  the 1e-9 grid), so the string ``"33.0"`` in a question reaches the
  cell ``33``.

What pruning can drop, therefore, is only derivations with *no lexical
anchor in the question*: floating candidates (whole-column projections,
most-common-value, comparisons against columns never mentioned) that the
grammar emits for every table regardless of the question.  Those score
identically poorly everywhere, and the router's broadcast fallback
(:mod:`repro.retrieval.router`) covers the corpora where they are all
there is.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..parser.lexicon import (
    STOP_WORDS,
    column_matchable_tokens,
    normalize_value_key,
    question_phrases,
    tokenize,
)
from ..tables.table import Table
from ..tables.values import DateValue, NumberValue, parse_number

#: Channel weights of the deterministic retrieval score.  A full entity
#: phrase is the strongest signal (it is what entity linking anchors
#: on); numbers and header tokens rank next; a lone entity *token*
#: (partial phrase overlap) is the weakest.  Values are exact binary
#: floats so summation order can never perturb a score.
ENTITY_PHRASE_WEIGHT = 4.0
NUMBER_WEIGHT = 2.0
HEADER_TOKEN_WEIGHT = 1.0
ENTITY_TOKEN_WEIGHT = 0.5


@dataclass(frozen=True)
class ShardPosting:
    """Everything retrieval may match one shard (table content) through.

    Content-addressed: a posting depends only on the table's headers and
    cells, never on its name or registration state, so equal-content
    shards share one posting and a posting outlives eviction (the whole
    point — routing decisions must not require the table in memory).
    """

    digest: str
    entity_keys: FrozenSet[str]
    entity_tokens: FrozenSet[str]
    header_tokens: FrozenSet[str]
    numbers: FrozenSet[NumberValue]

    @property
    def num_terms(self) -> int:
        return (
            len(self.entity_keys)
            + len(self.entity_tokens)
            + len(self.header_tokens)
            + len(self.numbers)
        )

    @property
    def nbytes(self) -> int:
        """Approximate retained size of this posting's term payload.

        Interpreter-level ``sys.getsizeof`` over the digest, every term
        string and every quantized number — the per-shard unit behind
        the index's ``postings_bytes`` counter.  An approximation (set
        and dict overhead of the inverted maps is excluded), but a
        *consistent* one: maintained incrementally on add/update/discard,
        it answers "how much index memory does this corpus cost" without
        an O(shards) walk.
        """
        total = sys.getsizeof(self.digest)
        for terms in (self.entity_keys, self.entity_tokens, self.header_tokens):
            total += sum(sys.getsizeof(term) for term in terms)
        total += sum(sys.getsizeof(number) for number in self.numbers)
        return total


@dataclass(frozen=True)
class QuestionTerms:
    """The retrieval-probe view of one question (mirrors the lexicon)."""

    question: str
    tokens: Tuple[str, ...]
    phrases: FrozenSet[str]
    numbers: FrozenSet[NumberValue]


@dataclass(frozen=True)
class RetrievalHit:
    """One shard's accumulated score with the terms that produced it."""

    digest: str
    score: float
    matched: Tuple[str, ...]


def extract_shard_posting(table: Table) -> ShardPosting:
    """Build the :class:`ShardPosting` of one table's content.

    Entity keys are the lexicon's value-index keys (every distinct cell
    value, display-normalized); entity tokens are their individual
    tokens; header tokens come from
    :func:`~repro.parser.lexicon.column_matchable_tokens`; numbers are
    every numeric cell plus every date cell's year (a bare-year question
    mention parses to a number, and ``values_equal`` bridges it to the
    date — retrieval must bridge it too).
    """
    entity_keys: Set[str] = set()
    entity_tokens: Set[str] = set()
    header_tokens: Set[str] = set()
    numbers: Set[NumberValue] = set()
    for column in table.columns:
        header_tokens |= column_matchable_tokens(column)
        for cell in table.column_cells(column):
            value = cell.value
            key = normalize_value_key(value)
            if key:
                entity_keys.add(key)
                entity_tokens.update(key.split(" "))
            if value.is_numeric:
                numbers.add(NumberValue(value.as_number()))
            elif isinstance(value, DateValue) and value.year is not None:
                numbers.add(NumberValue(value.year))
    return ShardPosting(
        digest=table.fingerprint.digest,
        entity_keys=frozenset(entity_keys),
        entity_tokens=frozenset(entity_tokens),
        header_tokens=frozenset(header_tokens),
        numbers=frozenset(numbers),
    )


#: Below this many tables the pool start-up cost outweighs the win; the
#: bulk path stays in-process (still batch-memoized).
_PARALLEL_MIN_TABLES = 64


def _extract_postings_batch(tables: Sequence[Table]) -> List[ShardPosting]:
    """Extract postings for a batch, amortizing normalization across it.

    Per-table extraction re-normalizes every cell display string from
    scratch; a corpus of near-duplicate tables drawn from shared
    vocabulary pools repeats the same strings thousands of times.  This
    batch path memoizes :func:`~repro.parser.lexicon.normalize_value_key`
    by display form and :func:`~repro.parser.lexicon.column_matchable_tokens`
    by header — exact keys for both functions, so the output is
    bit-identical to mapping :func:`extract_shard_posting` over the batch
    (property-tested in ``tests/test_retrieval.py``).  The memos live for
    one batch only: the per-table path stays allocation-free and the
    process-pool workers each amortize their own chunk.
    """
    key_memo: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
    header_memo: Dict[str, FrozenSet[str]] = {}
    postings: List[ShardPosting] = []
    for table in tables:
        entity_keys: Set[str] = set()
        entity_tokens: Set[str] = set()
        header_tokens: Set[str] = set()
        numbers: Set[NumberValue] = set()
        for column in table.columns:
            tokens = header_memo.get(column)
            if tokens is None:
                tokens = frozenset(column_matchable_tokens(column))
                header_memo[column] = tokens
            header_tokens |= tokens
            for cell in table.column_cells(column):
                value = cell.value
                display = value.display()
                cached = key_memo.get(display)
                if cached is None:
                    key = normalize_value_key(value)
                    cached = (key, tuple(key.split(" ")) if key else ())
                    key_memo[display] = cached
                key, key_tokens = cached
                if key:
                    entity_keys.add(key)
                    entity_tokens.update(key_tokens)
                if value.is_numeric:
                    numbers.add(NumberValue(value.as_number()))
                elif isinstance(value, DateValue) and value.year is not None:
                    numbers.add(NumberValue(value.year))
        postings.append(
            ShardPosting(
                digest=table.fingerprint.digest,
                entity_keys=frozenset(entity_keys),
                entity_tokens=frozenset(entity_tokens),
                header_tokens=frozenset(header_tokens),
                numbers=frozenset(numbers),
            )
        )
    return postings


def extract_shard_postings(
    tables: Sequence[Table],
    workers: Optional[int] = None,
    backend: str = "auto",
) -> List[ShardPosting]:
    """Extract many tables' postings at once, index-aligned.

    Extraction is pure per-table work, so it parallelizes without any
    lock: the batch is split into one contiguous chunk per worker and
    mapped over a pool, each chunk running the batch-memoized
    :func:`_extract_postings_batch`.  ``backend`` selects the pool:

    * ``"auto"`` (default) — fork-based process pool when more than one
      CPU and at least :data:`_PARALLEL_MIN_TABLES` tables warrant it,
      else in-process;
    * ``"process"`` / ``"thread"`` — force that pool (process degrades
      to threads where fork is unavailable);
    * ``"inline"`` — force the in-process batch path (the sequential
      reference the discovery bench compares against).

    ``workers`` defaults to the CPU count.  Output order always matches
    input order, whatever the backend.
    """
    tables = list(tables)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    parallel = workers > 1 and len(tables) >= _PARALLEL_MIN_TABLES
    if backend == "inline" or (backend == "auto" and not parallel):
        return _extract_postings_batch(tables)
    import concurrent.futures

    chunk_size = -(-len(tables) // workers)  # ceil: one chunk per worker
    chunks = [
        tables[start : start + chunk_size]
        for start in range(0, len(tables), chunk_size)
    ]
    if backend in ("auto", "process"):
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(chunks)), mp_context=context
            ) as executor:
                return [
                    posting
                    for batch in executor.map(_extract_postings_batch, chunks)
                    for posting in batch
                ]
        except (ValueError, OSError):
            pass  # no fork start method (or spawn failed): degrade to threads
    with concurrent.futures.ThreadPoolExecutor(
        max_workers=min(workers, len(chunks))
    ) as executor:
        return [
            posting
            for batch in executor.map(_extract_postings_batch, chunks)
            for posting in batch
        ]


def extract_question_terms(question: str, max_span_length: int = 5) -> QuestionTerms:
    """Tokenize a question into the terms the index is probed with.

    Phrases cover every span the lexicon's entity matcher could anchor
    (lone stop-word tokens excluded, exactly as the lexicon excludes
    them); numbers are parsed with the lexicon's own
    :func:`~repro.tables.values.parse_number`.
    """
    tokens = tuple(tokenize(question))
    phrases = {
        phrase
        for phrase in question_phrases(tokens, max_span_length=max_span_length)
        if " " in phrase or phrase not in STOP_WORDS
    }
    numbers = {
        NumberValue(number)
        for number in (parse_number(token) for token in tokens)
        if number is not None
    }
    return QuestionTerms(
        question=question,
        tokens=tokens,
        phrases=frozenset(phrases),
        numbers=frozenset(numbers),
    )


@lru_cache(maxsize=4096)
def question_terms(question: str, max_span_length: int = 5) -> QuestionTerms:
    """Memoized :func:`extract_question_terms` — the routing hot path.

    Span enumeration plus number parsing is pure per-``(question,
    max_span_length)`` work, and serving workloads re-route the same
    question across retries, sessions and bench repeats.  The result is a
    frozen dataclass of frozensets, so sharing one instance across
    threads is safe.
    """
    return extract_question_terms(question, max_span_length=max_span_length)


class CorpusIndex:
    """Inverted maps from normalized terms to shard fingerprint digests.

    Thread-safe and content-addressed: adding the same content twice is
    a no-op, postings are kept per digest so :meth:`discard` can remove a
    shard exactly.  Postings survive shard eviction by design — scoring a
    question never touches a table, which is what lets a catalog route
    around cold shards without rehydrating them.
    """

    def __init__(self, max_span_length: int = 5) -> None:
        self.max_span_length = max_span_length
        self._postings: Dict[str, ShardPosting] = {}
        self._entities: Dict[str, Set[str]] = {}
        self._entity_tokens: Dict[str, Set[str]] = {}
        self._headers: Dict[str, Set[str]] = {}
        self._numbers: Dict[NumberValue, Set[str]] = {}
        self._lock = threading.RLock()
        # Scale counters, maintained incrementally so stats() stays O(1)
        # in the corpus size: total term references across live postings
        # and their approximate retained bytes (ShardPosting.nbytes).
        self._postings_terms = 0
        self._postings_bytes = 0

    # -- maintenance -----------------------------------------------------------
    def add(self, table: Table) -> ShardPosting:
        """Index ``table``'s content (idempotent per fingerprint)."""
        digest = table.fingerprint.digest
        with self._lock:
            existing = self._postings.get(digest)
            if existing is not None:
                return existing
        # Extraction is pure and lock-free; only publication locks.
        return self.add_posting(extract_shard_posting(table))

    def add_posting(self, posting: ShardPosting) -> ShardPosting:
        """Publish a pre-extracted posting (idempotent per digest)."""
        with self._lock:
            return self._add_posting_locked(posting)

    def add_postings(
        self, postings: Iterable[ShardPosting]
    ) -> List[ShardPosting]:
        """Publish many pre-extracted postings under one lock acquisition.

        The merge half of the bulk build: extraction
        (:func:`extract_shard_postings`) runs lock-free and in parallel,
        then the whole batch lands here — one acquisition instead of one
        per table, which is what keeps a thousand-shard registration from
        serializing on the index lock.  Idempotent per digest exactly
        like :meth:`add_posting`; returns the published postings,
        index-aligned.
        """
        with self._lock:
            return [self._add_posting_locked(posting) for posting in postings]

    def _add_posting_locked(self, posting: ShardPosting) -> ShardPosting:
        existing = self._postings.get(posting.digest)
        if existing is not None:
            return existing
        self._postings[posting.digest] = posting
        self._postings_terms += posting.num_terms
        self._postings_bytes += posting.nbytes
        for key in posting.entity_keys:
            self._entities.setdefault(key, set()).add(posting.digest)
        for token in posting.entity_tokens:
            self._entity_tokens.setdefault(token, set()).add(posting.digest)
        for token in posting.header_tokens:
            self._headers.setdefault(token, set()).add(posting.digest)
        for number in posting.numbers:
            self._numbers.setdefault(number, set()).add(posting.digest)
        return posting

    def update(self, old_digest: str, new_table: Table) -> ShardPosting:
        """Replace one shard's posting with ``new_table``'s, by key delta.

        Only the inverted-map entries whose keys actually changed are
        touched: removed keys drop the old digest (pruning the key when
        its digest set empties, exactly as :meth:`discard` does), added
        keys insert the new digest, and keys present in both versions are
        re-pointed in place.  The result is byte-identical to
        ``discard(old_digest)`` + ``add(new_table)`` — locked in by the
        hypothesis interleaving property in ``tests/test_churn.py`` —
        but touches O(changed keys) instead of O(all keys).
        """
        new_posting = extract_shard_posting(new_table)
        with self._lock:
            old_posting = self._postings.get(old_digest)
            if old_posting is None:
                # Nothing to migrate (never indexed, or already retired):
                # degrade to a plain add.
                return self._add_posting_locked(new_posting)
            if old_digest == new_posting.digest:
                return old_posting  # content unchanged: nothing to do
            existing = self._postings.get(new_posting.digest)
            if existing is not None:
                # The new content is already indexed under another shard;
                # just drop the old posting.
                self._discard_locked(old_digest, old_posting)
                return existing
            del self._postings[old_digest]
            self._postings[new_posting.digest] = new_posting
            self._postings_terms += new_posting.num_terms - old_posting.num_terms
            self._postings_bytes += new_posting.nbytes - old_posting.nbytes
            for mapping, old_keys, new_keys in (
                (self._entities, old_posting.entity_keys, new_posting.entity_keys),
                (
                    self._entity_tokens,
                    old_posting.entity_tokens,
                    new_posting.entity_tokens,
                ),
                (self._headers, old_posting.header_tokens, new_posting.header_tokens),
                (self._numbers, old_posting.numbers, new_posting.numbers),
            ):
                for key in old_keys - new_keys:
                    digests = mapping.get(key)
                    if digests is not None:
                        digests.discard(old_digest)
                        if not digests:
                            del mapping[key]
                for key in new_keys - old_keys:
                    mapping.setdefault(key, set()).add(new_posting.digest)
                for key in old_keys & new_keys:
                    digests = mapping[key]
                    digests.discard(old_digest)
                    digests.add(new_posting.digest)
            return new_posting

    def discard(self, digest: str) -> bool:
        """Remove one shard's posting; returns whether it was indexed."""
        with self._lock:
            posting = self._postings.get(digest)
            if posting is None:
                return False
            self._discard_locked(digest, posting)
            return True

    def _discard_locked(self, digest: str, posting: ShardPosting) -> None:
        del self._postings[digest]
        self._postings_terms -= posting.num_terms
        self._postings_bytes -= posting.nbytes
        for mapping, keys in (
            (self._entities, posting.entity_keys),
            (self._entity_tokens, posting.entity_tokens),
            (self._headers, posting.header_tokens),
            (self._numbers, posting.numbers),
        ):
            for key in keys:
                digests = mapping.get(key)
                if digests is not None:
                    digests.discard(digest)
                    if not digests:
                        del mapping[key]

    def posting(self, digest: str) -> Optional[ShardPosting]:
        with self._lock:
            return self._postings.get(digest)

    def digests(self) -> List[str]:
        with self._lock:
            return sorted(self._postings)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._postings

    def __len__(self) -> int:
        with self._lock:
            return len(self._postings)

    def stats(self) -> Dict[str, int]:
        """Corpus-scale counters, O(1) in the number of shards.

        ``postings_terms`` / ``postings_bytes`` are maintained
        incrementally by add/update/discard (see
        :attr:`ShardPosting.nbytes`), so a thousand-shard catalog can
        expose its index footprint on every stats call without walking
        the postings.
        """
        with self._lock:
            return {
                "shards": len(self._postings),
                "entity_keys": len(self._entities),
                "entity_tokens": len(self._entity_tokens),
                "header_tokens": len(self._headers),
                "numbers": len(self._numbers),
                "postings_terms": self._postings_terms,
                "postings_bytes": self._postings_bytes,
            }

    def snapshot(self) -> Tuple:
        """A canonical deep copy of every internal structure.

        Two indexes are interchangeable iff their snapshots are equal —
        this is what the churn property tests compare to prove that the
        delta path (:meth:`update`) leaves the index byte-identical to a
        fresh build, *including* the absence of empty posting keys.
        """
        with self._lock:
            return (
                dict(self._postings),
                {key: frozenset(v) for key, v in self._entities.items()},
                {key: frozenset(v) for key, v in self._entity_tokens.items()},
                {key: frozenset(v) for key, v in self._headers.items()},
                {key: frozenset(v) for key, v in self._numbers.items()},
            )

    # -- scoring ---------------------------------------------------------------
    def score_question(self, question: str) -> Dict[str, RetrievalHit]:
        """Score every indexed shard against ``question``.

        Returns only shards with at least one hit, each with its score
        and the sorted list of matched terms (for ``repro route`` and the
        router's explanations).  Deterministic: terms are probed in
        sorted order and weights are exact binary floats, so equal
        (index, question) pairs always produce identical scores.
        """
        terms = question_terms(question, self.max_span_length)
        scores: Dict[str, float] = {}
        matched: Dict[str, List[str]] = {}

        def accumulate(
            probe_keys: Iterable[str],
            mapping: Dict,
            weight: float,
            label: str,
        ) -> None:
            for key in probe_keys:
                for digest in mapping.get(key, ()):
                    scores[digest] = scores.get(digest, 0.0) + weight
                    matched.setdefault(digest, []).append(f"{label}:{key}")

        with self._lock:
            accumulate(
                sorted(terms.phrases), self._entities, ENTITY_PHRASE_WEIGHT, "entity"
            )
            content = {
                token
                for token in terms.tokens
                if token not in STOP_WORDS and token.isalnum()
            }
            accumulate(
                sorted(content), self._entity_tokens, ENTITY_TOKEN_WEIGHT, "token"
            )
            # Header matching uses ALL question tokens (the lexicon's
            # column matcher does not drop stop words on the question
            # side), so stop-word-only headers stay reachable.
            accumulate(
                sorted(set(terms.tokens)), self._headers, HEADER_TOKEN_WEIGHT, "header"
            )
            number_keys = sorted(terms.numbers, key=lambda value: value.number)
            for number in number_keys:
                for digest in self._numbers.get(number, ()):
                    scores[digest] = scores.get(digest, 0.0) + NUMBER_WEIGHT
                    matched.setdefault(digest, []).append(
                        f"number:{number.display()}"
                    )
        return {
            digest: RetrievalHit(
                digest=digest,
                score=score,
                matched=tuple(sorted(matched.get(digest, ()))),
            )
            for digest, score in scores.items()
        }

    def score_digests(self, question: str) -> Dict[str, float]:
        """Score every indexed shard: digest → score, no match labels.

        The lean twin of :meth:`score_question` for the top-N routing hot
        path: at a thousand shards, building and sorting per-shard
        matched-term lists dominates routing time, yet a capped route
        only ever explains the handful of survivors.  Scores here are
        guaranteed equal to :meth:`score_question`'s — the weights are
        exact binary floats, so accumulation order cannot perturb a sum
        and the probes need no sorting (locked in by a property test in
        ``tests/test_retrieval.py``).  Labels for the survivors come from
        :meth:`matched_terms` afterwards.
        """
        terms = question_terms(question, self.max_span_length)
        scores: Dict[str, float] = {}
        with self._lock:
            for phrase in terms.phrases:
                for digest in self._entities.get(phrase, ()):
                    scores[digest] = scores.get(digest, 0.0) + ENTITY_PHRASE_WEIGHT
            for token in set(terms.tokens):
                if token not in STOP_WORDS and token.isalnum():
                    for digest in self._entity_tokens.get(token, ()):
                        scores[digest] = (
                            scores.get(digest, 0.0) + ENTITY_TOKEN_WEIGHT
                        )
            # Header matching uses ALL question tokens (the lexicon's
            # column matcher does not drop stop words on the question
            # side), so stop-word-only headers stay reachable.
            for token in set(terms.tokens):
                for digest in self._headers.get(token, ()):
                    scores[digest] = scores.get(digest, 0.0) + HEADER_TOKEN_WEIGHT
            for number in terms.numbers:
                for digest in self._numbers.get(number, ()):
                    scores[digest] = scores.get(digest, 0.0) + NUMBER_WEIGHT
        return scores

    def term_coverage(self, question: str) -> Dict[str, FrozenSet[str]]:
        """Per anchored question term → the digests of the shards covering it.

        The set-cover view of a question: only terms that at least one
        indexed shard covers appear (a term no shard holds cannot
        constrain routing), each mapped to the frozen set of covering
        digests.  Labels use the exact ``label:key`` format of
        :meth:`score_question`'s ``matched`` tuples, so a coverage key is
        directly comparable with a hit explanation.  This is what the
        :class:`~repro.retrieval.router.ShardSetRouter` consumes to
        decide whether a *single* shard can cover the whole question or
        a 2–3-shard set is needed.
        """
        terms = question_terms(question, self.max_span_length)
        coverage: Dict[str, FrozenSet[str]] = {}
        with self._lock:
            for phrase in sorted(terms.phrases):
                digests = self._entities.get(phrase)
                if digests:
                    coverage[f"entity:{phrase}"] = frozenset(digests)
            content = {
                token
                for token in terms.tokens
                if token not in STOP_WORDS and token.isalnum()
            }
            for token in sorted(content):
                digests = self._entity_tokens.get(token)
                if digests:
                    coverage[f"token:{token}"] = frozenset(digests)
            # Header coverage uses ALL question tokens, mirroring
            # score_question (the lexicon's column matcher keeps stop
            # words on the question side).
            for token in sorted(set(terms.tokens)):
                digests = self._headers.get(token)
                if digests:
                    coverage[f"header:{token}"] = frozenset(digests)
            for number in sorted(terms.numbers, key=lambda value: value.number):
                digests = self._numbers.get(number)
                if digests:
                    coverage[f"number:{number.display()}"] = frozenset(digests)
        return coverage

    def matched_terms(
        self, question: str, digests: Iterable[str]
    ) -> Dict[str, Tuple[str, ...]]:
        """Explain ``question``'s hits for the requested shards only.

        The labels are byte-identical to :meth:`score_question`'s
        ``matched`` tuples (same ``label:key`` format, same final sort);
        only shards in ``digests`` that match at least one term appear.
        Pairs with :meth:`score_digests`: score everything cheaply, then
        explain just the top-N survivors.
        """
        wanted = set(digests)
        if not wanted:
            return {}
        terms = question_terms(question, self.max_span_length)
        matched: Dict[str, List[str]] = {}

        def accumulate(
            probe_keys: Iterable[str],
            mapping: Dict,
            label_of,
        ) -> None:
            for key in probe_keys:
                for digest in mapping.get(key, ()):
                    if digest in wanted:
                        matched.setdefault(digest, []).append(label_of(key))

        with self._lock:
            accumulate(terms.phrases, self._entities, lambda key: f"entity:{key}")
            content = {
                token
                for token in terms.tokens
                if token not in STOP_WORDS and token.isalnum()
            }
            accumulate(content, self._entity_tokens, lambda key: f"token:{key}")
            accumulate(
                set(terms.tokens), self._headers, lambda key: f"header:{key}"
            )
            accumulate(
                terms.numbers,
                self._numbers,
                lambda number: f"number:{number.display()}",
            )
        return {
            digest: tuple(sorted(labels)) for digest, labels in matched.items()
        }
