"""The shard router: deterministic scoring, pruning and the fallback contract.

The router turns the :class:`~repro.retrieval.corpus_index.CorpusIndex`'s
per-shard hits into a :class:`RoutingDecision`: which shards to parse,
in what order, and why.  Two guarantees the rest of the system builds
on:

* **Determinism** — shards are ranked by ``(retrieval score desc,
  registration order asc)``; the score itself is deterministic (see the
  index), so a fixed (catalog, question) pair always routes the same.
* **Guaranteed fallback** — when no shard scores a hit (an empty index,
  a question with no lexical anchor anywhere), the decision degrades to
  the full broadcast: every shard is a candidate, nothing is pruned, and
  answers are exactly what the pre-retrieval pipeline produced.  Pruning
  can therefore *narrow* work but never lose an answer that only a
  broadcast would have found ranked first — unless a trained model ranks
  a zero-hit shard's floating candidate above every anchored one, the
  case the property test in ``tests/test_retrieval.py`` carves out
  ("pruned top == broadcast top whenever the broadcast top shard is
  retrievable").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..tables.catalog import TableRef
from .corpus_index import CorpusIndex, RetrievalHit


@dataclass(frozen=True)
class ShardScore:
    """One shard's retrieval outcome for one question."""

    ref: TableRef
    score: float
    matched: Tuple[str, ...]

    @property
    def hit(self) -> bool:
        return self.score > 0.0


@dataclass(frozen=True)
class RoutingDecision:
    """Which shards a question will be parsed on, and why.

    ``scored`` ranks shards by (score desc, registration order asc):
    *every* registered shard on an uncapped or fallback route, or — when
    a ``max_candidates`` cap selected the top-N through the heap path —
    just the surviving candidates (a thousand-shard corpus must not pay
    for a thousand-entry explanation of a ten-shard decision).
    ``candidates`` are the shards that will actually parse — the hits,
    or on ``fallback`` every shard.  ``pruned`` is the complement:
    shards retrieval pruned, which stay untouched (evicted ones stay on
    disk).
    """

    question: str
    scored: Tuple[ShardScore, ...]
    candidates: Tuple[TableRef, ...]
    pruned: Tuple[TableRef, ...]
    fallback: bool

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    @property
    def num_pruned(self) -> int:
        return len(self.pruned)

    def score_of(self, digest: str) -> float:
        for scored in self.scored:
            if scored.ref.digest == digest:
                return scored.score
        return 0.0

    def is_candidate(self, digest: str) -> bool:
        return any(ref.digest == digest for ref in self.candidates)


class ShardRouter:
    """Routes questions to catalog shards through a :class:`CorpusIndex`.

    Parameters
    ----------
    index:
        The corpus index to score against (owned by the catalog, which
        maintains it on register).
    max_candidates:
        Optional cap on how many (highest-scoring) hit shards survive
        pruning.  ``None`` — the default, and what the fallback contract
        is stated for — keeps every hit: capping trades recall for work
        and can drop the broadcast winner, so it is strictly opt-in.
    """

    def __init__(
        self, index: CorpusIndex, max_candidates: Optional[int] = None
    ) -> None:
        if max_candidates is not None and max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1 (or None), got {max_candidates}"
            )
        self.index = index
        self.max_candidates = max_candidates

    def route(
        self,
        question: str,
        refs: Sequence[TableRef],
        max_candidates: Optional[int] = None,
    ) -> RoutingDecision:
        """The :class:`RoutingDecision` for ``question`` over ``refs``.

        ``refs`` must be in registration order (the deterministic
        tie-break); :meth:`TableCatalog.refs` provides exactly that.
        A per-call ``max_candidates`` overrides the router default
        (``None`` defers to it); any cap takes the heap-selection path,
        whose candidates are exactly the first N of the full ranking
        (property-tested in ``tests/test_retrieval.py``).
        """
        cap = self.max_candidates if max_candidates is None else max_candidates
        if cap is not None:
            if cap < 1:
                raise ValueError(f"max_candidates must be >= 1, got {cap}")
            return self._route_top(question, refs, cap)
        hits: Dict[str, RetrievalHit] = self.index.score_question(question)
        scored = [
            ShardScore(
                ref=ref,
                score=hits[ref.digest].score if ref.digest in hits else 0.0,
                matched=hits[ref.digest].matched if ref.digest in hits else (),
            )
            for ref in refs
        ]
        # Stable sort: equal scores keep registration order.
        ranked = sorted(scored, key=lambda shard: -shard.score)
        candidates: List[TableRef] = [
            shard.ref for shard in ranked if shard.hit
        ]
        fallback = not candidates
        if fallback:
            candidates = [ref for ref in refs]
        kept = {ref.digest for ref in candidates}
        pruned = [ref for ref in refs if ref.digest not in kept]
        return RoutingDecision(
            question=question,
            scored=tuple(ranked),
            candidates=tuple(candidates),
            pruned=tuple(pruned),
            fallback=fallback,
        )

    def _route_top(
        self, question: str, refs: Sequence[TableRef], cap: int
    ) -> RoutingDecision:
        """Capped routing: heap-select the top ``cap`` hits, skip the rest.

        The uncapped path scores, labels and fully sorts every shard —
        O(shards log shards) with per-shard matched-term lists — only to
        keep N of them.  Here scoring is label-free
        (:meth:`CorpusIndex.score_digests`), selection is
        ``heapq.nlargest`` over ``(score, -registration_position)`` keys
        — the exact ranking order of the full sort, so the survivors are
        precisely ``full_ranking[:cap]`` — and matched-term explanations
        are computed for the survivors alone.  Zero hits degrades to the
        identical full-broadcast decision the uncapped path produces.
        """
        scores = self.index.score_digests(question)
        entries = [
            (scores[ref.digest], -position, ref)
            for position, ref in enumerate(refs)
            if scores.get(ref.digest, 0.0) > 0.0
        ]
        if not entries:
            # Guaranteed fallback, byte-identical to the uncapped one:
            # every shard scored zero, ranked in registration order.
            scored = tuple(
                ShardScore(ref=ref, score=0.0, matched=()) for ref in refs
            )
            return RoutingDecision(
                question=question,
                scored=scored,
                candidates=tuple(refs),
                pruned=(),
                fallback=True,
            )
        # (score, -position) never ties across shards (positions are
        # unique), so the ref is never compared and nlargest's order is
        # exactly (score desc, registration order asc).
        top = heapq.nlargest(cap, entries, key=lambda entry: entry[:2])
        matched = self.index.matched_terms(
            question, [entry[2].digest for entry in top]
        )
        ranked = tuple(
            ShardScore(
                ref=ref, score=score, matched=matched.get(ref.digest, ())
            )
            for score, _neg_position, ref in top
        )
        kept = {shard.ref.digest for shard in ranked}
        return RoutingDecision(
            question=question,
            scored=ranked,
            candidates=tuple(shard.ref for shard in ranked),
            pruned=tuple(ref for ref in refs if ref.digest not in kept),
            fallback=False,
        )


@dataclass(frozen=True)
class ShardSetProposal:
    """One candidate shard *set*: jointly covers more than any member.

    ``covered`` / ``missing`` partition the question's coverable terms
    (the :meth:`CorpusIndex.term_coverage` keys); ``score`` is the sum
    of the members' individual retrieval scores — a tie-break, never a
    coverage substitute.
    """

    refs: Tuple[TableRef, ...]
    covered: Tuple[str, ...]
    missing: Tuple[str, ...]
    score: float

    @property
    def digests(self) -> Tuple[str, ...]:
        return tuple(ref.digest for ref in self.refs)

    @property
    def complete(self) -> bool:
        return not self.missing


@dataclass(frozen=True)
class SetRoutingDecision:
    """A single-shard :class:`RoutingDecision` plus shard-set proposals.

    ``single`` is the unchanged decision of the wrapped
    :class:`ShardRouter` — the single-shard path and the broadcast
    fallback are exactly what they were without set routing.
    ``proposals`` is non-empty only when the question has coverable
    terms, the route is not a fallback, and *no* candidate shard covers
    every coverable term on its own (``single_covered`` records that
    check): the situation where an answer may need two tables.
    """

    question: str
    single: RoutingDecision
    coverable: Tuple[str, ...]
    single_covered: bool
    proposals: Tuple[ShardSetProposal, ...]

    @property
    def proposed(self) -> bool:
        return bool(self.proposals)


class ShardSetRouter:
    """Proposes 2–3-shard candidate sets when no single shard suffices.

    A thin layer over a :class:`ShardRouter`: the wrapped router's
    decision is computed first and returned untouched (determinism and
    the fallback contract are inherited wholesale).  Only when that
    decision's candidates each leave some coverable question term
    uncovered does the set router enumerate small combinations of the
    top-``pool_size`` candidates, keep the non-redundant ones that cover
    strictly more terms than any single pool shard, and rank them by
    ``(fewest missing terms, smallest set, highest summed score,
    registration-rank order)`` — all deterministic, so a fixed (catalog,
    question) pair always proposes the same sets.

    Parameters
    ----------
    index:
        The corpus index (shared with the wrapped router).
    router:
        The single-shard router to delegate to; a default
        :class:`ShardRouter` over ``index`` when omitted.
    max_set_size:
        Largest proposed set (default 3, minimum 2).
    max_proposals:
        How many ranked proposals to keep (default 4).
    pool_size:
        How many top-ranked candidates combinations are drawn from
        (default 8) — bounds enumeration at C(8,2)+C(8,3) = 84 sets.
    """

    def __init__(
        self,
        index: CorpusIndex,
        router: Optional[ShardRouter] = None,
        max_set_size: int = 3,
        max_proposals: int = 4,
        pool_size: int = 8,
    ) -> None:
        if max_set_size < 2:
            raise ValueError(f"max_set_size must be >= 2, got {max_set_size}")
        if max_proposals < 1:
            raise ValueError(f"max_proposals must be >= 1, got {max_proposals}")
        if pool_size < 2:
            raise ValueError(f"pool_size must be >= 2, got {pool_size}")
        self.index = index
        self.router = router if router is not None else ShardRouter(index)
        self.max_set_size = max_set_size
        self.max_proposals = max_proposals
        self.pool_size = pool_size

    def route_sets(
        self,
        question: str,
        refs: Sequence[TableRef],
        max_candidates: Optional[int] = None,
    ) -> SetRoutingDecision:
        """The :class:`SetRoutingDecision` for ``question`` over ``refs``."""
        single = self.router.route(question, refs, max_candidates=max_candidates)
        coverage = self.index.term_coverage(question)
        coverable = tuple(sorted(coverage))
        if single.fallback or not coverable:
            return SetRoutingDecision(
                question=question,
                single=single,
                coverable=coverable,
                single_covered=False,
                proposals=(),
            )
        complete_digests = set(coverage[coverable[0]])
        for term in coverable[1:]:
            complete_digests &= coverage[term]
        if any(ref.digest in complete_digests for ref in single.candidates):
            # Some candidate covers the whole question alone: the
            # single-shard path handles it, no sets proposed.
            return SetRoutingDecision(
                question=question,
                single=single,
                coverable=coverable,
                single_covered=True,
                proposals=(),
            )
        pool = single.candidates[: self.pool_size]
        covered_by: Dict[str, FrozenSet[str]] = {
            ref.digest: frozenset(
                term for term in coverable if ref.digest in coverage[term]
            )
            for ref in pool
        }
        best_single = max(
            (len(covered) for covered in covered_by.values()), default=0
        )
        scores = {shard.ref.digest: shard.score for shard in single.scored}
        full = frozenset(coverable)
        ranked: List[Tuple[Tuple[int, int, float, Tuple[int, ...]], ShardSetProposal]] = []
        for size in range(2, min(self.max_set_size, len(pool)) + 1):
            for positions in combinations(range(len(pool)), size):
                members = tuple(pool[position] for position in positions)
                unions = [covered_by[member.digest] for member in members]
                union = frozenset().union(*unions)
                if len(union) <= best_single:
                    continue  # no better than the best shard alone
                redundant = any(
                    unions[i]
                    <= frozenset().union(
                        *(other for j, other in enumerate(unions) if j != i)
                    )
                    for i in range(len(unions))
                )
                if redundant:
                    continue  # a strict subset covers the same terms
                score = sum(scores.get(member.digest, 0.0) for member in members)
                ranked.append(
                    (
                        (len(full - union), len(members), -score, positions),
                        ShardSetProposal(
                            refs=members,
                            covered=tuple(sorted(union)),
                            missing=tuple(sorted(full - union)),
                            score=score,
                        ),
                    )
                )
        ranked.sort(key=lambda entry: entry[0])
        return SetRoutingDecision(
            question=question,
            single=single,
            coverable=coverable,
            single_covered=False,
            proposals=tuple(
                proposal for _key, proposal in ranked[: self.max_proposals]
            ),
        )
