"""The shard router: deterministic scoring, pruning and the fallback contract.

The router turns the :class:`~repro.retrieval.corpus_index.CorpusIndex`'s
per-shard hits into a :class:`RoutingDecision`: which shards to parse,
in what order, and why.  Two guarantees the rest of the system builds
on:

* **Determinism** — shards are ranked by ``(retrieval score desc,
  registration order asc)``; the score itself is deterministic (see the
  index), so a fixed (catalog, question) pair always routes the same.
* **Guaranteed fallback** — when no shard scores a hit (an empty index,
  a question with no lexical anchor anywhere), the decision degrades to
  the full broadcast: every shard is a candidate, nothing is pruned, and
  answers are exactly what the pre-retrieval pipeline produced.  Pruning
  can therefore *narrow* work but never lose an answer that only a
  broadcast would have found ranked first — unless a trained model ranks
  a zero-hit shard's floating candidate above every anchored one, the
  case the property test in ``tests/test_retrieval.py`` carves out
  ("pruned top == broadcast top whenever the broadcast top shard is
  retrievable").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..tables.catalog import TableRef
from .corpus_index import CorpusIndex, RetrievalHit


@dataclass(frozen=True)
class ShardScore:
    """One shard's retrieval outcome for one question."""

    ref: TableRef
    score: float
    matched: Tuple[str, ...]

    @property
    def hit(self) -> bool:
        return self.score > 0.0


@dataclass(frozen=True)
class RoutingDecision:
    """Which shards a question will be parsed on, and why.

    ``scored`` ranks *every* registered shard (score desc, registration
    order asc); ``candidates`` are the shards that will actually parse —
    the hits, or on ``fallback`` every shard.  ``pruned`` is the
    complement: shards retrieval proved unanchorable, which stay
    untouched (evicted ones stay on disk).
    """

    question: str
    scored: Tuple[ShardScore, ...]
    candidates: Tuple[TableRef, ...]
    pruned: Tuple[TableRef, ...]
    fallback: bool

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    @property
    def num_pruned(self) -> int:
        return len(self.pruned)

    def score_of(self, digest: str) -> float:
        for scored in self.scored:
            if scored.ref.digest == digest:
                return scored.score
        return 0.0

    def is_candidate(self, digest: str) -> bool:
        return any(ref.digest == digest for ref in self.candidates)


class ShardRouter:
    """Routes questions to catalog shards through a :class:`CorpusIndex`.

    Parameters
    ----------
    index:
        The corpus index to score against (owned by the catalog, which
        maintains it on register).
    max_candidates:
        Optional cap on how many (highest-scoring) hit shards survive
        pruning.  ``None`` — the default, and what the fallback contract
        is stated for — keeps every hit: capping trades recall for work
        and can drop the broadcast winner, so it is strictly opt-in.
    """

    def __init__(
        self, index: CorpusIndex, max_candidates: Optional[int] = None
    ) -> None:
        if max_candidates is not None and max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1 (or None), got {max_candidates}"
            )
        self.index = index
        self.max_candidates = max_candidates

    def route(self, question: str, refs: Sequence[TableRef]) -> RoutingDecision:
        """The :class:`RoutingDecision` for ``question`` over ``refs``.

        ``refs`` must be in registration order (the deterministic
        tie-break); :meth:`TableCatalog.refs` provides exactly that.
        """
        hits: Dict[str, RetrievalHit] = self.index.score_question(question)
        scored = [
            ShardScore(
                ref=ref,
                score=hits[ref.digest].score if ref.digest in hits else 0.0,
                matched=hits[ref.digest].matched if ref.digest in hits else (),
            )
            for ref in refs
        ]
        # Stable sort: equal scores keep registration order.
        ranked = sorted(scored, key=lambda shard: -shard.score)
        candidates: List[TableRef] = [
            shard.ref for shard in ranked if shard.hit
        ]
        if self.max_candidates is not None:
            candidates = candidates[: self.max_candidates]
        fallback = not candidates
        if fallback:
            candidates = [ref for ref in refs]
        kept = {ref.digest for ref in candidates}
        pruned = [ref for ref in refs if ref.digest not in kept]
        return RoutingDecision(
            question=question,
            scored=tuple(ranked),
            candidates=tuple(candidates),
            pruned=tuple(pruned),
            fallback=fallback,
        )
