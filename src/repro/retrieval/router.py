"""The shard router: deterministic scoring, pruning and the fallback contract.

The router turns the :class:`~repro.retrieval.corpus_index.CorpusIndex`'s
per-shard hits into a :class:`RoutingDecision`: which shards to parse,
in what order, and why.  Two guarantees the rest of the system builds
on:

* **Determinism** — shards are ranked by ``(retrieval score desc,
  registration order asc)``; the score itself is deterministic (see the
  index), so a fixed (catalog, question) pair always routes the same.
* **Guaranteed fallback** — when no shard scores a hit (an empty index,
  a question with no lexical anchor anywhere), the decision degrades to
  the full broadcast: every shard is a candidate, nothing is pruned, and
  answers are exactly what the pre-retrieval pipeline produced.  Pruning
  can therefore *narrow* work but never lose an answer that only a
  broadcast would have found ranked first — unless a trained model ranks
  a zero-hit shard's floating candidate above every anchored one, the
  case the property test in ``tests/test_retrieval.py`` carves out
  ("pruned top == broadcast top whenever the broadcast top shard is
  retrievable").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..tables.catalog import TableRef
from .corpus_index import CorpusIndex, RetrievalHit


@dataclass(frozen=True)
class ShardScore:
    """One shard's retrieval outcome for one question."""

    ref: TableRef
    score: float
    matched: Tuple[str, ...]

    @property
    def hit(self) -> bool:
        return self.score > 0.0


@dataclass(frozen=True)
class RoutingDecision:
    """Which shards a question will be parsed on, and why.

    ``scored`` ranks shards by (score desc, registration order asc):
    *every* registered shard on an uncapped or fallback route, or — when
    a ``max_candidates`` cap selected the top-N through the heap path —
    just the surviving candidates (a thousand-shard corpus must not pay
    for a thousand-entry explanation of a ten-shard decision).
    ``candidates`` are the shards that will actually parse — the hits,
    or on ``fallback`` every shard.  ``pruned`` is the complement:
    shards retrieval pruned, which stay untouched (evicted ones stay on
    disk).
    """

    question: str
    scored: Tuple[ShardScore, ...]
    candidates: Tuple[TableRef, ...]
    pruned: Tuple[TableRef, ...]
    fallback: bool

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    @property
    def num_pruned(self) -> int:
        return len(self.pruned)

    def score_of(self, digest: str) -> float:
        for scored in self.scored:
            if scored.ref.digest == digest:
                return scored.score
        return 0.0

    def is_candidate(self, digest: str) -> bool:
        return any(ref.digest == digest for ref in self.candidates)


class ShardRouter:
    """Routes questions to catalog shards through a :class:`CorpusIndex`.

    Parameters
    ----------
    index:
        The corpus index to score against (owned by the catalog, which
        maintains it on register).
    max_candidates:
        Optional cap on how many (highest-scoring) hit shards survive
        pruning.  ``None`` — the default, and what the fallback contract
        is stated for — keeps every hit: capping trades recall for work
        and can drop the broadcast winner, so it is strictly opt-in.
    """

    def __init__(
        self, index: CorpusIndex, max_candidates: Optional[int] = None
    ) -> None:
        if max_candidates is not None and max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1 (or None), got {max_candidates}"
            )
        self.index = index
        self.max_candidates = max_candidates

    def route(
        self,
        question: str,
        refs: Sequence[TableRef],
        max_candidates: Optional[int] = None,
    ) -> RoutingDecision:
        """The :class:`RoutingDecision` for ``question`` over ``refs``.

        ``refs`` must be in registration order (the deterministic
        tie-break); :meth:`TableCatalog.refs` provides exactly that.
        A per-call ``max_candidates`` overrides the router default
        (``None`` defers to it); any cap takes the heap-selection path,
        whose candidates are exactly the first N of the full ranking
        (property-tested in ``tests/test_retrieval.py``).
        """
        cap = self.max_candidates if max_candidates is None else max_candidates
        if cap is not None:
            if cap < 1:
                raise ValueError(f"max_candidates must be >= 1, got {cap}")
            return self._route_top(question, refs, cap)
        hits: Dict[str, RetrievalHit] = self.index.score_question(question)
        scored = [
            ShardScore(
                ref=ref,
                score=hits[ref.digest].score if ref.digest in hits else 0.0,
                matched=hits[ref.digest].matched if ref.digest in hits else (),
            )
            for ref in refs
        ]
        # Stable sort: equal scores keep registration order.
        ranked = sorted(scored, key=lambda shard: -shard.score)
        candidates: List[TableRef] = [
            shard.ref for shard in ranked if shard.hit
        ]
        fallback = not candidates
        if fallback:
            candidates = [ref for ref in refs]
        kept = {ref.digest for ref in candidates}
        pruned = [ref for ref in refs if ref.digest not in kept]
        return RoutingDecision(
            question=question,
            scored=tuple(ranked),
            candidates=tuple(candidates),
            pruned=tuple(pruned),
            fallback=fallback,
        )

    def _route_top(
        self, question: str, refs: Sequence[TableRef], cap: int
    ) -> RoutingDecision:
        """Capped routing: heap-select the top ``cap`` hits, skip the rest.

        The uncapped path scores, labels and fully sorts every shard —
        O(shards log shards) with per-shard matched-term lists — only to
        keep N of them.  Here scoring is label-free
        (:meth:`CorpusIndex.score_digests`), selection is
        ``heapq.nlargest`` over ``(score, -registration_position)`` keys
        — the exact ranking order of the full sort, so the survivors are
        precisely ``full_ranking[:cap]`` — and matched-term explanations
        are computed for the survivors alone.  Zero hits degrades to the
        identical full-broadcast decision the uncapped path produces.
        """
        scores = self.index.score_digests(question)
        entries = [
            (scores[ref.digest], -position, ref)
            for position, ref in enumerate(refs)
            if scores.get(ref.digest, 0.0) > 0.0
        ]
        if not entries:
            # Guaranteed fallback, byte-identical to the uncapped one:
            # every shard scored zero, ranked in registration order.
            scored = tuple(
                ShardScore(ref=ref, score=0.0, matched=()) for ref in refs
            )
            return RoutingDecision(
                question=question,
                scored=scored,
                candidates=tuple(refs),
                pruned=(),
                fallback=True,
            )
        # (score, -position) never ties across shards (positions are
        # unique), so the ref is never compared and nlargest's order is
        # exactly (score desc, registration order asc).
        top = heapq.nlargest(cap, entries, key=lambda entry: entry[:2])
        matched = self.index.matched_terms(
            question, [entry[2].digest for entry in top]
        )
        ranked = tuple(
            ShardScore(
                ref=ref, score=score, matched=matched.get(ref.digest, ())
            )
            for score, _neg_position, ref in top
        )
        kept = {shard.ref.digest for shard in ranked}
        return RoutingDecision(
            question=question,
            scored=ranked,
            candidates=tuple(shard.ref for shard in ranked),
            pruned=tuple(ref for ref in refs if ref.digest not in kept),
            fallback=False,
        )
