"""Corpus-level retrieval: prune shards *before* the parser runs.

The serving path used to be O(shards) per corpus-wide question — every
registered table parsed every question, and evicted shards were
rehydrated from disk just to be ranked last.  This package is the
standard retrieve-then-parse refactor (compare the table-to-passage
retrieval stage of open table discovery systems): a cheap lexical
:class:`~repro.retrieval.corpus_index.CorpusIndex` narrows the corpus,
and the expensive semantic parser runs only on the survivors.

Two pieces:

* :class:`~repro.retrieval.corpus_index.CorpusIndex` — content-addressed
  inverted maps from normalized entity phrases, entity/header tokens and
  quantized numbers to shard fingerprints.  Term extraction reuses the
  parser lexicon's own normalization (:mod:`repro.parser.lexicon`), so a
  shard the lexicon could anchor an entity or column match on is
  *guaranteed* to be retrieved (the recall-superset contract, locked in
  by ``tests/test_retrieval.py``).
* :class:`~repro.retrieval.router.ShardRouter` — deterministic scoring
  and pruning with a guaranteed fallback: when retrieval yields no
  candidate shards the router degrades to the full broadcast, so answers
  are never lost to pruning.

:class:`~repro.tables.catalog.TableCatalog` owns one index+router pair
and maintains it on register/evict/rehydrate; ``repro route`` inspects
routing decisions from the command line.
"""

from .corpus_index import (
    CorpusIndex,
    QuestionTerms,
    ShardPosting,
    extract_question_terms,
    extract_shard_posting,
    extract_shard_postings,
    question_terms,
)
from .router import (
    RoutingDecision,
    SetRoutingDecision,
    ShardRouter,
    ShardScore,
    ShardSetProposal,
    ShardSetRouter,
)

__all__ = [
    "CorpusIndex",
    "QuestionTerms",
    "ShardPosting",
    "extract_question_terms",
    "extract_shard_posting",
    "extract_shard_postings",
    "question_terms",
    "RoutingDecision",
    "SetRoutingDecision",
    "ShardRouter",
    "ShardScore",
    "ShardSetProposal",
    "ShardSetRouter",
]
