"""The semantic parser: candidate generation + log-linear ranking.

This is the reproduction's stand-in for the Zhang et al. 2017 parser that
the paper uses as a black box (Section 2): given an NL question and a
table it produces a ranked list of candidate lambda DCS queries.  The
deployment interface (:mod:`repro.interface`) consumes the ranked list, and
the trainer (:mod:`repro.parser.training`) updates the underlying model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..tables.fingerprint import LRUCache
from ..tables.table import Table
from ..dcs.ast import Query
from ..dcs.errors import DCSError
from ..dcs.executor import ExecutionResult, Executor
from ..dcs.memo import DEFAULT_EXECUTION_CACHE_SIZE, ExecutionCache, MemoizedExecutor
from ..dcs.sexpr import to_sexpr
from ..dcs.typing import validate
from .features import FeatureVector, extract_features
from .grammar import CandidateGrammar, GenerationConfig
from .lexicon import LexicalAnalysis, Lexicon
from .model import LogLinearModel


@dataclass(frozen=True)
class Candidate:
    """One candidate query with everything the ranker and the UI need."""

    query: Query
    features: FeatureVector
    result: ExecutionResult
    score: float = 0.0
    probability: float = 0.0

    @property
    def answer(self) -> Tuple[str, ...]:
        return self.result.answer_strings()

    @property
    def sexpr(self) -> str:
        return to_sexpr(self.query)


@dataclass
class ParseOutput:
    """The ranked candidate list ``Z_x`` for one question."""

    question: str
    table: Table
    candidates: List[Candidate]
    analysis: LexicalAnalysis
    generation_seconds: float = 0.0

    @property
    def top(self) -> Optional[Candidate]:
        return self.candidates[0] if self.candidates else None

    def top_k(self, k: int) -> List[Candidate]:
        return self.candidates[:k]

    def queries(self) -> List[Query]:
        return [candidate.query for candidate in self.candidates]

    def __len__(self) -> int:
        return len(self.candidates)


@dataclass
class ParserConfig:
    """Behavioural knobs of the parser.

    The caching knobs control the content-addressed caches that make the
    deployment hot path fast.  All caches are keyed by
    :class:`~repro.tables.fingerprint.TableFingerprint` (never by object
    id) and bounded by an LRU, so long-running deployments neither leak
    nor alias recycled tables:

    * ``memoize_execution`` — execute candidate sub-queries through a
      shared :class:`~repro.dcs.memo.MemoizedExecutor`, so the ~600
      candidates of one question stop re-walking the table for shared
      sub-trees.
    * ``cache_candidates`` — memoize the full (weight-independent)
      candidate list per ``(table, question)``; re-parsing the same
      question only re-*ranks* with the current model weights.
    * ``table_cache_size`` / ``execution_cache_size`` /
      ``candidate_cache_size`` — LRU bounds of the per-table
      lexicon+grammar caches, the sub-query execution cache and the
      candidate-list cache.
    """

    generation: GenerationConfig = field(default_factory=GenerationConfig)
    drop_empty_answers: bool = True
    drop_failing_candidates: bool = True
    max_candidates: int = 600
    memoize_execution: bool = True
    cache_candidates: bool = True
    table_cache_size: int = 64
    execution_cache_size: int = DEFAULT_EXECUTION_CACHE_SIZE
    candidate_cache_size: int = 256


class SemanticParser:
    """Maps NL questions over tables to ranked lambda DCS candidates."""

    def __init__(
        self,
        model: Optional[LogLinearModel] = None,
        config: Optional[ParserConfig] = None,
    ) -> None:
        self.model = model or LogLinearModel()
        self.config = config or ParserConfig()
        self._lexicons: LRUCache = LRUCache(maxsize=self.config.table_cache_size)
        self._grammars: LRUCache = LRUCache(maxsize=self.config.table_cache_size)
        self._execution_cache = ExecutionCache(maxsize=self.config.execution_cache_size)
        self._candidate_cache: LRUCache = LRUCache(maxsize=self.config.candidate_cache_size)

    # -- per-table caches ---------------------------------------------------------
    # Keyed by content fingerprint, NOT id(table): CPython recycles object
    # ids after garbage collection, so id-keyed caches can serve a stale
    # lexicon/grammar for a brand-new table (and grow without bound).
    def _lexicon(self, table: Table) -> Lexicon:
        return self._lexicons.get_or_create(table.fingerprint, lambda: Lexicon(table))

    def _grammar(self, table: Table) -> CandidateGrammar:
        return self._grammars.get_or_create(
            table.fingerprint,
            lambda: CandidateGrammar(table, self.config.generation),
        )

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/size counters of every parser cache (for bench reports)."""
        return {
            "lexicons": self._lexicons.stats(),
            "grammars": self._grammars.stats(),
            "execution": self._execution_cache.stats(),
            "candidates": self._candidate_cache.stats(),
        }

    def clear_caches(self) -> None:
        """Drop every cached lexicon, grammar, execution and candidate entry."""
        self._lexicons.clear()
        self._grammars.clear()
        self._execution_cache.clear()
        self._candidate_cache.clear()

    # -- candidate generation -------------------------------------------------------
    def generate_candidates(self, question: str, table: Table) -> Tuple[List[Candidate], LexicalAnalysis]:
        """Generate (unranked) executable candidates with their features.

        Generation is independent of the model weights (only ranking uses
        them), so with ``config.cache_candidates`` the whole candidate
        list is memoized per ``(table content, question)``: a warm parse
        skips lexical analysis, grammar generation and execution entirely.
        """
        cache_key = (table.fingerprint, question)
        if self.config.cache_candidates:
            cached = self._candidate_cache.get(cache_key)
            if cached is not None:
                candidates, analysis = cached
                return list(candidates), analysis
        analysis = self._lexicon(table).analyze(question)
        raw_queries = self._grammar(table).generate(analysis)
        executor: Executor
        if self.config.memoize_execution:
            executor = MemoizedExecutor(table, cache=self._execution_cache)
        else:
            executor = Executor(table)
        candidates: List[Candidate] = []
        for query in raw_queries:
            if not validate(query, table):
                if self.config.drop_failing_candidates:
                    continue
            try:
                result = executor.execute(query)
            except DCSError:
                if self.config.drop_failing_candidates:
                    continue
                result = ExecutionResult(kind=query.result_kind)
            if self.config.drop_empty_answers and result.is_empty:
                continue
            features = extract_features(
                question, table, query, analysis=analysis, result=result
            )
            candidates.append(Candidate(query=query, features=features, result=result))
        if self.config.cache_candidates:
            self._candidate_cache.put(cache_key, (tuple(candidates), analysis))
        return candidates, analysis

    # -- parsing -----------------------------------------------------------------------
    def parse(self, question: str, table: Table, k: Optional[int] = None) -> ParseOutput:
        """Parse a question into a ranked candidate list (top-``k`` if given)."""
        started = time.perf_counter()
        candidates, analysis = self.generate_candidates(question, table)
        ranked = self.rank(candidates)
        limit = k if k is not None else self.config.max_candidates
        elapsed = time.perf_counter() - started
        return ParseOutput(
            question=question,
            table=table,
            candidates=ranked[:limit],
            analysis=analysis,
            generation_seconds=elapsed,
        )

    def rank(self, candidates: Sequence[Candidate]) -> List[Candidate]:
        """Order candidates by model probability (Equation 4)."""
        if not candidates:
            return []
        feature_vectors = [candidate.features for candidate in candidates]
        probabilities = self.model.probabilities(feature_vectors)
        scores = self.model.scores(feature_vectors)
        rescored = [
            Candidate(
                query=candidate.query,
                features=candidate.features,
                result=candidate.result,
                score=score,
                probability=probability,
            )
            for candidate, score, probability in zip(candidates, scores, probabilities)
        ]
        return sorted(rescored, key=lambda candidate: -candidate.score)
