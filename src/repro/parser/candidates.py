"""The semantic parser: candidate generation + log-linear ranking.

This is the reproduction's stand-in for the Zhang et al. 2017 parser that
the paper uses as a black box (Section 2): given an NL question and a
table it produces a ranked list of candidate lambda DCS queries.  The
deployment interface (:mod:`repro.interface`) consumes the ranked list, and
the trainer (:mod:`repro.parser.training`) updates the underlying model.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..tables.fingerprint import LRUCache
from ..tables.index import index_cache_stats
from ..tables.schema import table_schema
from ..tables.table import Table
from ..dcs.ast import Query
from ..dcs.errors import DCSError
from ..dcs.executor import ExecutionResult, Executor
from ..dcs.memo import DEFAULT_EXECUTION_CACHE_SIZE, ExecutionCache, MemoizedExecutor
from ..dcs.sexpr import to_sexpr
from ..dcs.typing import validate
from .features import FeatureVector, extract_features
from .grammar import CandidateGrammar, GenerationConfig
from .lexicon import LexicalAnalysis, Lexicon
from .model import LogLinearModel


@dataclass(frozen=True)
class Candidate:
    """One candidate query with everything the ranker and the UI need."""

    query: Query
    features: FeatureVector
    result: ExecutionResult
    score: float = 0.0
    probability: float = 0.0

    @property
    def answer(self) -> Tuple[str, ...]:
        return self.result.answer_strings()

    @property
    def sexpr(self) -> str:
        return to_sexpr(self.query)

    def __repr__(self) -> str:
        # Bounded on purpose: the generated dataclass repr recurses into
        # the query AST, the feature vector and the execution result —
        # any accidental repr (a log line, an assertion message, asyncio
        # formatting a task result) pays the whole graph.
        return (
            f"Candidate(sexpr={self.sexpr!r}, score={self.score:.4f}, "
            f"answer={self.answer!r})"
        )


@dataclass
class ParseOutput:
    """The ranked candidate list ``Z_x`` for one question."""

    question: str
    table: Table
    candidates: List[Candidate]
    analysis: LexicalAnalysis
    generation_seconds: float = 0.0

    @property
    def top(self) -> Optional[Candidate]:
        return self.candidates[0] if self.candidates else None

    def top_k(self, k: int) -> List[Candidate]:
        return self.candidates[:k]

    def queries(self) -> List[Query]:
        return [candidate.query for candidate in self.candidates]

    def __len__(self) -> int:
        return len(self.candidates)

    def __repr__(self) -> str:
        # Bounded: a full repr would recurse into every candidate (up to
        # max_candidates of them) — see Candidate.__repr__.
        table = self.table.name if self.table is not None else None
        return (
            f"ParseOutput(question={self.question!r}, table={table!r}, "
            f"candidates=<{len(self.candidates)}>)"
        )


@dataclass
class ParserConfig:
    """Behavioural knobs of the parser.

    The caching knobs control the content-addressed caches that make the
    deployment hot path fast.  All caches are keyed by
    :class:`~repro.tables.fingerprint.TableFingerprint` (never by object
    id) and bounded by an LRU, so long-running deployments neither leak
    nor alias recycled tables:

    * ``memoize_execution`` — execute candidate sub-queries through a
      shared :class:`~repro.dcs.memo.MemoizedExecutor`, so the ~600
      candidates of one question stop re-walking the table for shared
      sub-trees.
    * ``cache_candidates`` — memoize the full (weight-independent)
      candidate list per ``(table, question)``; re-parsing the same
      question only re-*ranks* with the current model weights.
    * ``index_tables`` — answer executor cache misses from the
      content-addressed :class:`~repro.tables.index.TableIndex` (hash and
      bisect lookups) instead of row scans; ``False`` keeps the seed's
      scan path.
    * ``disk_cache_dir`` — when set, candidate lists and execution memo
      bundles are persisted to a content-addressed on-disk store
      (:class:`~repro.perf.diskcache.DiskCache`) shared across processes,
      so a warm-start process skips cold parsing entirely.
    * ``table_cache_size`` / ``execution_cache_size`` /
      ``candidate_cache_size`` — LRU bounds of the per-table
      lexicon+grammar caches, the sub-query execution cache and the
      candidate-list cache.
    """

    generation: GenerationConfig = field(default_factory=GenerationConfig)
    drop_empty_answers: bool = True
    drop_failing_candidates: bool = True
    max_candidates: int = 600
    memoize_execution: bool = True
    cache_candidates: bool = True
    index_tables: bool = True
    disk_cache_dir: Optional[str] = None
    table_cache_size: int = 64
    execution_cache_size: int = DEFAULT_EXECUTION_CACHE_SIZE
    candidate_cache_size: int = 256

    def generation_signature(self) -> str:
        """A stable digest of every knob that affects *generation* output.

        Disk-cache keys include it so a store shared between differently
        configured parsers can never serve a candidate list generated
        under other generation rules.  Ranking knobs (model weights,
        ``max_candidates``) are deliberately excluded — candidates are
        weight-independent.
        """
        payload = (
            dataclasses.asdict(self.generation),
            self.drop_empty_answers,
            self.drop_failing_candidates,
        )
        return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:16]


class SemanticParser:
    """Maps NL questions over tables to ranked lambda DCS candidates."""

    def __init__(
        self,
        model: Optional[LogLinearModel] = None,
        config: Optional[ParserConfig] = None,
    ) -> None:
        self.model = model or LogLinearModel()
        self.config = config or ParserConfig()
        self._lexicons: LRUCache = LRUCache(maxsize=self.config.table_cache_size)
        self._grammars: LRUCache = LRUCache(maxsize=self.config.table_cache_size)
        self._execution_cache = ExecutionCache(maxsize=self.config.execution_cache_size)
        self._candidate_cache: LRUCache = LRUCache(maxsize=self.config.candidate_cache_size)
        if self.config.disk_cache_dir:
            # Imported lazily: repro.perf imports this module at package
            # init, so a module-level import would be circular.
            from ..perf.diskcache import DiskCache

            self._disk_cache: Optional["DiskCache"] = DiskCache(self.config.disk_cache_dir)
            # The config is immutable in practice; hash its generation
            # knobs once instead of per cache-missing parse.
            self._generation_signature = self.config.generation_signature()
        else:
            self._disk_cache = None
            self._generation_signature = ""
        #: Fingerprint digests whose on-disk execution bundle was already
        #: merged into the in-memory cache (one load per table content).
        self._loaded_execution_bundles: Set[str] = set()
        #: Per-digest size of the last persisted execution bundle and the
        #: global execution-cache miss counter at that moment; both gate
        #: :meth:`_store_execution_bundle` so cold parses neither rescan
        #: nor rewrite bundles that cannot have grown enough.
        self._stored_bundle_sizes: Dict[str, int] = {}
        self._stored_bundle_misses: Dict[str, int] = {}

    # -- per-table caches ---------------------------------------------------------
    # Keyed by content fingerprint, NOT id(table): CPython recycles object
    # ids after garbage collection, so id-keyed caches can serve a stale
    # lexicon/grammar for a brand-new table (and grow without bound).
    def _lexicon(self, table: Table) -> Lexicon:
        return self._lexicons.get_or_create(table.fingerprint, lambda: Lexicon(table))

    def _grammar(self, table: Table) -> CandidateGrammar:
        return self._grammars.get_or_create(
            table.fingerprint,
            lambda: CandidateGrammar(table, self.config.generation),
        )

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/size counters of every parser cache (for bench reports).

        ``indexes`` reports the process-wide table-index registry (shared
        by every parser in the process); ``disk`` reports this parser's
        on-disk store, all-zero when none is configured.
        """
        from ..perf.diskcache import DiskCache  # lazy: avoids an import cycle

        return {
            "lexicons": self._lexicons.stats(),
            "grammars": self._grammars.stats(),
            "execution": self._execution_cache.stats(),
            "candidates": self._candidate_cache.stats(),
            "indexes": index_cache_stats(),
            "disk": (
                self._disk_cache.stats() if self._disk_cache else DiskCache.empty_stats()
            ),
        }

    def clear_caches(self) -> None:
        """Drop every cached lexicon, grammar, execution and candidate entry.

        In-memory only: the on-disk store (if any) and the process-wide
        index registry are deliberately left intact — both are
        content-addressed and can never serve stale entries.
        """
        self._lexicons.clear()
        self._grammars.clear()
        self._execution_cache.clear()
        self._candidate_cache.clear()
        self._loaded_execution_bundles.clear()

    # -- candidate generation -------------------------------------------------------
    def generate_candidates(self, question: str, table: Table) -> Tuple[List[Candidate], LexicalAnalysis]:
        """Generate (unranked) executable candidates with their features.

        Generation is independent of the model weights (only ranking uses
        them), so with ``config.cache_candidates`` the whole candidate
        list is memoized per ``(table content, question)``: a warm parse
        skips lexical analysis, grammar generation and execution entirely.
        """
        cache_key = (table.fingerprint, question)
        if self.config.cache_candidates:
            cached = self._candidate_cache.get(cache_key)
            if cached is not None:
                candidates, analysis = cached
                return list(candidates), analysis
        signature = self._generation_signature
        if self._disk_cache is not None:
            stored = self._disk_cache.get_candidates(
                table.fingerprint.digest, question, signature
            )
            if stored is not None:
                candidates, analysis = stored
                if self.config.cache_candidates:
                    self._candidate_cache.put(cache_key, (tuple(candidates), analysis))
                return list(candidates), analysis
            self._load_execution_bundle(table)
        analysis = self._lexicon(table).analyze(question)
        raw_queries = self._grammar(table).generate(analysis)
        # With indexing on, validation reuses one content-addressed schema
        # per question; off, it re-profiles per candidate (the seed path).
        schema = table_schema(table) if self.config.index_tables else None
        executor: Executor
        if self.config.memoize_execution:
            executor = MemoizedExecutor(
                table,
                cache=self._execution_cache,
                use_index=self.config.index_tables,
            )
        else:
            executor = Executor(table, use_index=self.config.index_tables)
        candidates: List[Candidate] = []
        for query in raw_queries:
            if not validate(query, table, schema=schema):
                if self.config.drop_failing_candidates:
                    continue
            try:
                result = executor.execute(query)
            except DCSError:
                if self.config.drop_failing_candidates:
                    continue
                result = ExecutionResult(kind=query.result_kind)
            if self.config.drop_empty_answers and result.is_empty:
                continue
            features = extract_features(
                question, table, query, analysis=analysis, result=result
            )
            candidates.append(Candidate(query=query, features=features, result=result))
        if self.config.cache_candidates:
            self._candidate_cache.put(cache_key, (tuple(candidates), analysis))
        if self._disk_cache is not None:
            self._disk_cache.put_candidates(
                table.fingerprint.digest, question, signature, (tuple(candidates), analysis)
            )
            self._store_execution_bundle(table)
        return candidates, analysis

    # -- disk persistence ------------------------------------------------------
    def _load_execution_bundle(self, table: Table) -> None:
        """Warm-start the execution cache from disk, once per table content.

        Only reached on a candidate-list disk miss: a *new* question over
        a *known* table still reuses every memoized sub-query result a
        previous process persisted.
        """
        digest = table.fingerprint.digest
        if not self.config.memoize_execution or digest in self._loaded_execution_bundles:
            return
        self._loaded_execution_bundles.add(digest)
        bundle = self._disk_cache.get_execution_bundle(digest)
        if bundle:
            self._execution_cache.load_entries(table.fingerprint, bundle)

    def _store_execution_bundle(self, table: Table) -> None:
        """Persist the table's memoized sub-query results after a cold parse.

        Amortised twice over: every cold question adds *some* entries, but
        rewriting the bundle per question would re-pickle a growing
        payload Q times per table, and even *counting* the table's entries
        means snapshotting the whole (shared, up to 100k-entry) execution
        LRU.  So the snapshot runs only when the global miss counter grew
        enough since the last write to possibly cross the threshold, and
        the bundle is (re)written only when it actually outgrew the last
        persisted one by 25% — writes per table are logarithmic in its
        entry count while warm starts still see the bulk of the shared
        sub-trees.
        """
        if not self.config.memoize_execution:
            return
        digest = table.fingerprint.digest
        self._loaded_execution_bundles.add(digest)
        stored = self._stored_bundle_sizes.get(digest, 0)
        misses = self._execution_cache.misses
        # Misses are global (every table), so this over-triggers — but a
        # bundle cannot have gained more entries than the cache gained
        # misses, making the cheap check a safe gate for the O(cache) scan.
        if misses - self._stored_bundle_misses.get(digest, 0) < max(1, stored // 4):
            return
        bundle = self._execution_cache.entries_for(table.fingerprint)
        # Re-arm the gate whether or not we write: the next scan should
        # wait for another batch of misses either way (the size check
        # below still sees all accumulated growth when it finally runs).
        self._stored_bundle_misses[digest] = misses
        if bundle and len(bundle) >= max(stored + 1, int(stored * 1.25)):
            self._disk_cache.put_execution_bundle(digest, bundle)
            self._stored_bundle_sizes[digest] = len(bundle)

    # -- shard eviction hooks ---------------------------------------------------
    def flush_table(self, table: Table) -> None:
        """Force-persist ``table``'s execution bundle to the disk store.

        Called by :class:`~repro.tables.catalog.TableCatalog` ahead of
        evicting a cold shard: unlike the amortised gate in
        :meth:`_store_execution_bundle`, eviction must not lose entries,
        so a non-empty bundle is always written — a size comparison could
        skip a *changed* bundle whose entry count happens to match (the
        shared LRU can evict old entries while new ones arrive), and
        evictions are rare enough that the unconditional write is cheap.
        Candidate lists need no flushing — they are written to disk at
        generation time.
        """
        if self._disk_cache is None or not self.config.memoize_execution:
            return
        digest = table.fingerprint.digest
        # No executions at all since this table's last flush (the global
        # miss counter is unchanged) means its bundle cannot have gained
        # entries: skip the O(cache) snapshot and the read-merge-write
        # round-trip entirely.  Misses are global so this only ever
        # over-triggers — a flush may still find nothing new, never the
        # reverse.  This is the hot case under shard eviction pressure
        # once the serving pool's warm registries satisfy repeat traffic
        # without re-executing anything.
        if self._execution_cache.misses == self._stored_bundle_misses.get(digest, -1):
            return
        bundle = self._execution_cache.entries_for(table.fingerprint)
        if bundle:
            # Merge over the stored bundle rather than replacing it:
            # entries the bounded in-memory LRU already dropped stay
            # available for future warm starts (they are immutable and
            # deterministic, so stale-vs-fresh conflicts cannot exist).
            stored = self._disk_cache.get_execution_bundle(digest) or {}
            stored.update(bundle)
            self._disk_cache.put_execution_bundle(digest, stored)
            self._stored_bundle_sizes[digest] = len(stored)
            self._stored_bundle_misses[digest] = self._execution_cache.misses

    def evict_table(self, table: Table) -> None:
        """Drop every in-memory artifact of ``table``'s content.

        The in-memory complement of :meth:`flush_table`: lexicon, grammar,
        per-question candidate lists and memoized execution entries are
        removed, and the loaded-bundle marker is cleared so the next
        question over the same content warm-starts from the disk store
        (when configured) instead of trusting stale memory bookkeeping.
        Content-addressing makes this safe at any time: a concurrent
        parse of the same table simply rebuilds what it needs.
        """
        fingerprint = table.fingerprint
        self._lexicons.pop(fingerprint)
        self._grammars.pop(fingerprint)
        for key in list(self._candidate_cache.keys()):
            if key[0] == fingerprint:
                self._candidate_cache.pop(key)
        self._execution_cache.evict_fingerprint(fingerprint)
        self._loaded_execution_bundles.discard(fingerprint.digest)

    def retire_table(self, table: Table) -> None:
        """Drop a superseded version's state for good (the churn hook).

        :meth:`evict_table` plus the per-digest disk-bundle bookkeeping
        (``_stored_bundle_sizes``/``_stored_bundle_misses``): an evicted
        shard's digest comes back, a retired version's never does, so
        keeping its markers would leak an entry per edit under churn.
        """
        self.evict_table(table)
        digest = table.fingerprint.digest
        self._stored_bundle_sizes.pop(digest, None)
        self._stored_bundle_misses.pop(digest, None)

    # -- parsing -----------------------------------------------------------------------
    def parse(self, question: str, table: Table, k: Optional[int] = None) -> ParseOutput:
        """Parse a question into a ranked candidate list (top-``k`` if given)."""
        started = time.perf_counter()
        candidates, analysis = self.generate_candidates(question, table)
        ranked = self.rank(candidates)
        limit = k if k is not None else self.config.max_candidates
        elapsed = time.perf_counter() - started
        return ParseOutput(
            question=question,
            table=table,
            candidates=ranked[:limit],
            analysis=analysis,
            generation_seconds=elapsed,
        )

    def rank(self, candidates: Sequence[Candidate]) -> List[Candidate]:
        """Order candidates by model probability (Equation 4)."""
        if not candidates:
            return []
        feature_vectors = [candidate.features for candidate in candidates]
        probabilities = self.model.probabilities(feature_vectors)
        scores = self.model.scores(feature_vectors)
        rescored = [
            Candidate(
                query=candidate.query,
                features=candidate.features,
                result=candidate.result,
                score=score,
                probability=probability,
            )
            for candidate, score, probability in zip(candidates, scores, probabilities)
        ]
        return sorted(rescored, key=lambda candidate: -candidate.score)
