"""The semantic parser: candidate generation + log-linear ranking.

This is the reproduction's stand-in for the Zhang et al. 2017 parser that
the paper uses as a black box (Section 2): given an NL question and a
table it produces a ranked list of candidate lambda DCS queries.  The
deployment interface (:mod:`repro.interface`) consumes the ranked list, and
the trainer (:mod:`repro.parser.training`) updates the underlying model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..tables.table import Table
from ..dcs.ast import Query
from ..dcs.errors import DCSError
from ..dcs.executor import ExecutionResult, Executor
from ..dcs.sexpr import to_sexpr
from ..dcs.typing import validate
from .features import FeatureVector, extract_features
from .grammar import CandidateGrammar, GenerationConfig
from .lexicon import LexicalAnalysis, Lexicon
from .model import LogLinearModel


@dataclass(frozen=True)
class Candidate:
    """One candidate query with everything the ranker and the UI need."""

    query: Query
    features: FeatureVector
    result: ExecutionResult
    score: float = 0.0
    probability: float = 0.0

    @property
    def answer(self) -> Tuple[str, ...]:
        return self.result.answer_strings()

    @property
    def sexpr(self) -> str:
        return to_sexpr(self.query)


@dataclass
class ParseOutput:
    """The ranked candidate list ``Z_x`` for one question."""

    question: str
    table: Table
    candidates: List[Candidate]
    analysis: LexicalAnalysis
    generation_seconds: float = 0.0

    @property
    def top(self) -> Optional[Candidate]:
        return self.candidates[0] if self.candidates else None

    def top_k(self, k: int) -> List[Candidate]:
        return self.candidates[:k]

    def queries(self) -> List[Query]:
        return [candidate.query for candidate in self.candidates]

    def __len__(self) -> int:
        return len(self.candidates)


@dataclass
class ParserConfig:
    """Behavioural knobs of the parser."""

    generation: GenerationConfig = field(default_factory=GenerationConfig)
    drop_empty_answers: bool = True
    drop_failing_candidates: bool = True
    max_candidates: int = 600


class SemanticParser:
    """Maps NL questions over tables to ranked lambda DCS candidates."""

    def __init__(
        self,
        model: Optional[LogLinearModel] = None,
        config: Optional[ParserConfig] = None,
    ) -> None:
        self.model = model or LogLinearModel()
        self.config = config or ParserConfig()
        self._lexicons: Dict[int, Lexicon] = {}
        self._grammars: Dict[int, CandidateGrammar] = {}

    # -- per-table caches ---------------------------------------------------------
    def _lexicon(self, table: Table) -> Lexicon:
        key = id(table)
        if key not in self._lexicons:
            self._lexicons[key] = Lexicon(table)
        return self._lexicons[key]

    def _grammar(self, table: Table) -> CandidateGrammar:
        key = id(table)
        if key not in self._grammars:
            self._grammars[key] = CandidateGrammar(table, self.config.generation)
        return self._grammars[key]

    # -- candidate generation -------------------------------------------------------
    def generate_candidates(self, question: str, table: Table) -> Tuple[List[Candidate], LexicalAnalysis]:
        """Generate (unranked) executable candidates with their features."""
        analysis = self._lexicon(table).analyze(question)
        raw_queries = self._grammar(table).generate(analysis)
        executor = Executor(table)
        candidates: List[Candidate] = []
        for query in raw_queries:
            if not validate(query, table):
                if self.config.drop_failing_candidates:
                    continue
            try:
                result = executor.execute(query)
            except DCSError:
                if self.config.drop_failing_candidates:
                    continue
                result = ExecutionResult(kind=query.result_kind)
            if self.config.drop_empty_answers and result.is_empty:
                continue
            features = extract_features(
                question, table, query, analysis=analysis, result=result
            )
            candidates.append(Candidate(query=query, features=features, result=result))
        return candidates, analysis

    # -- parsing -----------------------------------------------------------------------
    def parse(self, question: str, table: Table, k: Optional[int] = None) -> ParseOutput:
        """Parse a question into a ranked candidate list (top-``k`` if given)."""
        started = time.perf_counter()
        candidates, analysis = self.generate_candidates(question, table)
        ranked = self.rank(candidates)
        limit = k if k is not None else self.config.max_candidates
        elapsed = time.perf_counter() - started
        return ParseOutput(
            question=question,
            table=table,
            candidates=ranked[:limit],
            analysis=analysis,
            generation_seconds=elapsed,
        )

    def rank(self, candidates: Sequence[Candidate]) -> List[Candidate]:
        """Order candidates by model probability (Equation 4)."""
        if not candidates:
            return []
        feature_vectors = [candidate.features for candidate in candidates]
        probabilities = self.model.probabilities(feature_vectors)
        scores = self.model.scores(feature_vectors)
        rescored = [
            Candidate(
                query=candidate.query,
                features=candidate.features,
                result=candidate.result,
                score=score,
                probability=probability,
            )
            for candidate, score, probability in zip(candidates, scores, probabilities)
        ]
        return sorted(rescored, key=lambda candidate: -candidate.score)
