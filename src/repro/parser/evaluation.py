"""Evaluation metrics for the semantic parser (paper Section 7.1).

The paper's central metric is *correctness*: the fraction of questions
whose top-ranked candidate is a correct **query** (a faithful translation
of the question), which is stricter than returning the correct **answer**
on the given table (Figure 8 shows two queries with the same answer, only
one of which is correct).

Because the reproduction has gold queries for every synthetic question, it
can decide correctness automatically: a candidate is a correct translation
when it is indistinguishable from the gold query both on the original table
and on several perturbed copies of it (row permutations and shuffles of the
numeric columns).  This operationalises precisely the paper's argument that
a correct query "consistently returns accurate results as the data evolves".

The module also implements the secondary metrics of Section 7: MRR (mean
reciprocal rank of the first correct candidate) and the correctness bound
(the fraction of questions whose top-k list contains a correct candidate).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..tables.table import Table
from ..tables.values import NumberValue, Value
from ..dcs.ast import Query
from ..dcs.errors import DCSError
from ..dcs.executor import Executor, answers_match, execute
from ..dcs.sexpr import to_sexpr
from .candidates import Candidate, ParseOutput, SemanticParser


# ---------------------------------------------------------------------------
# query equivalence
# ---------------------------------------------------------------------------


def perturbed_tables(table: Table, count: int = 3, seed: int = 13) -> List[Table]:
    """Build ``count`` perturbed copies of a table.

    Each copy permutes the row order and independently shuffles the values
    inside every numeric column.  The perturbations keep the cell contents
    (so entity joins still resolve) while changing which rows win
    superlatives, how neighbours line up, and what aggregates evaluate to —
    exactly the differences that separate a correct query from a lucky one.
    """
    rng = random.Random(seed)
    from ..tables.schema import infer_schema

    schema = infer_schema(table)
    copies = []
    for _ in range(count):
        order = list(range(table.num_rows))
        rng.shuffle(order)
        rows = [
            [table.record(index).value(column) for column in table.columns]
            for index in order
        ]
        for column_position, column in enumerate(table.columns):
            if schema.column(column).is_numeric:
                column_values = [row[column_position] for row in rows]
                rng.shuffle(column_values)
                for row, value in zip(rows, column_values):
                    row[column_position] = value
        copies.append(Table(columns=table.columns, rows=rows, name=f"{table.name}~perturbed"))
    return copies


def queries_equivalent(
    candidate: Query,
    gold: Query,
    table: Table,
    perturbations: int = 3,
    seed: int = 13,
) -> bool:
    """Decide whether ``candidate`` is a correct translation w.r.t. ``gold``.

    Two queries are considered equivalent when they produce matching answers
    on the original table and on every perturbed copy.  Identical
    s-expressions short-circuit to True.
    """
    if to_sexpr(candidate) == to_sexpr(gold):
        return True
    tables = [table] + perturbed_tables(table, count=perturbations, seed=seed)
    for current in tables:
        try:
            candidate_answer = execute(candidate, current).answer_values()
            gold_answer = execute(gold, current).answer_values()
        except DCSError:
            return False
        if not answers_match(candidate_answer, gold_answer):
            return False
    return True


# ---------------------------------------------------------------------------
# evaluation examples and reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EvaluationExample:
    """One test question with its gold query and gold answer."""

    question: str
    table: Table
    gold_query: Query
    gold_answer: Tuple[Value, ...]


@dataclass
class ExampleOutcome:
    """The per-question bookkeeping behind the aggregate metrics."""

    example: EvaluationExample
    parse: ParseOutput
    correct_indices: List[int]
    top_is_correct: bool
    top_answer_matches: bool
    reciprocal_rank: float

    @property
    def has_correct_candidate(self) -> bool:
        return bool(self.correct_indices)


@dataclass
class EvaluationReport:
    """Aggregate metrics over a list of evaluation examples."""

    outcomes: List[ExampleOutcome] = field(default_factory=list)
    k: int = 7

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def correctness(self) -> float:
        """Fraction of questions whose top-1 candidate is a correct query."""
        if not self.outcomes:
            return 0.0
        return sum(outcome.top_is_correct for outcome in self.outcomes) / self.total

    @property
    def answer_accuracy(self) -> float:
        """Fraction of questions whose top-1 answer matches the gold answer."""
        if not self.outcomes:
            return 0.0
        return sum(outcome.top_answer_matches for outcome in self.outcomes) / self.total

    @property
    def mrr(self) -> float:
        """Mean reciprocal rank of the first correct candidate."""
        if not self.outcomes:
            return 0.0
        return sum(outcome.reciprocal_rank for outcome in self.outcomes) / self.total

    @property
    def correctness_bound(self) -> float:
        """Fraction of questions with a correct candidate in the top-k."""
        if not self.outcomes:
            return 0.0
        within = sum(
            1
            for outcome in self.outcomes
            if any(index < self.k for index in outcome.correct_indices)
        )
        return within / self.total

    def bound_at(self, k: int) -> float:
        """Correctness bound for an arbitrary ``k`` (used by the k-sensitivity bench)."""
        if not self.outcomes:
            return 0.0
        within = sum(
            1
            for outcome in self.outcomes
            if any(index < k for index in outcome.correct_indices)
        )
        return within / self.total

    def summary(self) -> Dict[str, float]:
        return {
            "examples": float(self.total),
            "correctness": self.correctness,
            "answer_accuracy": self.answer_accuracy,
            "mrr": self.mrr,
            f"bound@{self.k}": self.correctness_bound,
        }


def find_correct_indices(
    candidates: Sequence[Candidate],
    example: EvaluationExample,
    k: Optional[int] = None,
    perturbations: int = 3,
) -> List[int]:
    """Indices of candidates that are correct translations of the question.

    Only candidates whose answer on the original table already matches the
    gold answer are submitted to the (more expensive) perturbation check.
    """
    limit = len(candidates) if k is None else min(k, len(candidates))
    indices = []
    for index in range(limit):
        candidate = candidates[index]
        if not answers_match(candidate.result.answer_values(), example.gold_answer):
            continue
        if queries_equivalent(
            candidate.query, example.gold_query, example.table, perturbations=perturbations
        ):
            indices.append(index)
    return indices


def evaluate_parser(
    parser: SemanticParser,
    examples: Sequence[EvaluationExample],
    k: int = 7,
    candidate_limit: Optional[int] = None,
    perturbations: int = 3,
) -> EvaluationReport:
    """Run the parser over a list of examples and compute the Section 7 metrics."""
    report = EvaluationReport(k=k)
    for example in examples:
        parse = parser.parse(example.question, example.table, k=candidate_limit)
        correct = find_correct_indices(
            parse.candidates, example, perturbations=perturbations
        )
        top_is_correct = bool(correct) and correct[0] == 0
        top = parse.top
        top_answer_matches = bool(top) and answers_match(
            top.result.answer_values(), example.gold_answer
        )
        reciprocal_rank = 1.0 / (correct[0] + 1) if correct else 0.0
        report.outcomes.append(
            ExampleOutcome(
                example=example,
                parse=parse,
                correct_indices=correct,
                top_is_correct=top_is_correct,
                top_answer_matches=top_answer_matches,
                reciprocal_rank=reciprocal_rank,
            )
        )
    return report
