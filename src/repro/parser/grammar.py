"""Floating-grammar candidate generation.

The parser of Zhang et al. 2017 builds candidate lambda DCS queries by
composing grammar rules anchored on phrases of the question (entity and
column links) plus "floating" rules that are not anchored on any phrase.
This module reproduces that candidate space for the operator inventory of
the paper: starting from the lexical analysis of the question it derives

* base record sets (joins, comparisons),
* composed record sets (intersection, superlatives, previous/next rows,
  first/last rows),
* value projections and value-level superlatives,
* scalar aggregates and arithmetic differences.

The generator deliberately over-generates (that is the point of the paper:
the top-ranked candidate is frequently wrong, and users pick the right one
from the top-k list); ranking happens in :mod:`repro.parser.candidates`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..tables.schema import TableSchema, infer_schema
from ..tables.table import Table
from ..tables.values import Value
from ..dcs import ast, builder as q
from ..dcs.ast import ComparisonOperator, Query, SuperlativeKind
from ..dcs.sexpr import to_sexpr
from .lexicon import LexicalAnalysis, Lexicon


@dataclass
class GenerationConfig:
    """Knobs bounding the size of the candidate space."""

    max_base_records: int = 40
    max_record_sets: int = 120
    max_value_queries: int = 250
    max_candidates: int = 600
    comparison_operators: Tuple[ComparisonOperator, ...] = (
        ComparisonOperator.GT,
        ComparisonOperator.GE,
        ComparisonOperator.LT,
        ComparisonOperator.LE,
    )
    enable_intersection: bool = True
    enable_neighbors: bool = True
    enable_superlatives: bool = True
    enable_difference: bool = True
    enable_most_common: bool = True
    enable_compare_values: bool = True


class CandidateGrammar:
    """Generates the candidate query space for one question over one table."""

    def __init__(self, table: Table, config: Optional[GenerationConfig] = None) -> None:
        self.table = table
        self.schema: TableSchema = infer_schema(table)
        self.config = config or GenerationConfig()

    # -- public API -----------------------------------------------------------
    def generate(self, analysis: LexicalAnalysis) -> List[Query]:
        """All candidate queries for the analysed question (deduplicated).

        Only value- and scalar-producing queries are returned (a question's
        answer is a set of values or a number); record-producing queries
        appear as sub-queries of those candidates.  Differences are emitted
        before the bulk of counts/aggregates so the candidate cap never
        drops them.
        """
        records = self._record_sets(analysis)
        values = self._value_queries(analysis, records)
        differences = (
            self._difference_queries(analysis) if self.config.enable_difference else []
        )
        scalars = self._scalar_queries(analysis, records, values)
        candidates = values + differences + scalars
        return _dedupe(candidates)[: self.config.max_candidates]

    # -- record sets -------------------------------------------------------------
    def _base_record_sets(self, analysis: LexicalAnalysis) -> List[Query]:
        base: List[Query] = []
        for column, value in analysis.matched_entities():
            base.append(q.column_records(column, value))
        # Unions of two entities matched in the same column ("China or Greece").
        by_column: Dict[str, List[Value]] = {}
        for column, value in analysis.matched_entities():
            by_column.setdefault(column, []).append(value)
        for column, column_values in by_column.items():
            for left, right in combinations(column_values, 2):
                base.append(q.column_records(column, q.union(left, right)))
        # Numeric comparisons against numbers mentioned in the question.
        comparison_columns = self._comparison_columns(analysis)
        for number in analysis.numbers:
            for column in comparison_columns:
                for op in self.config.comparison_operators:
                    base.append(q.comparison_records(column, op, number.value))
        return _dedupe(base)[: self.config.max_base_records]

    def _record_sets(self, analysis: LexicalAnalysis) -> List[Query]:
        base = self._base_record_sets(analysis)
        records: List[Query] = [q.all_records()] + list(base)

        if self.config.enable_intersection:
            for left, right in combinations(base, 2):
                if _joins_same_column(left, right):
                    continue
                records.append(q.intersection(left, right))

        if self.config.enable_superlatives:
            for column in self.schema.comparable_columns:
                records.append(q.argmax_records(column))
                records.append(q.argmin_records(column))
            for record_set in base:
                for column in self.schema.comparable_columns:
                    if column in record_set.columns():
                        continue
                    records.append(
                        ast.SuperlativeRecords(SuperlativeKind.ARGMAX, column, record_set)
                    )
                    records.append(
                        ast.SuperlativeRecords(SuperlativeKind.ARGMIN, column, record_set)
                    )
            records.append(q.first_record())
            records.append(q.last_record())
            for record_set in base:
                records.append(q.first_record(record_set))
                records.append(q.last_record(record_set))

        if self.config.enable_neighbors:
            for record_set in base:
                records.append(q.prev_records(record_set))
                records.append(q.next_records(record_set))

        return _dedupe(records)[: self.config.max_record_sets]

    # -- value queries --------------------------------------------------------------
    def _value_queries(self, analysis: LexicalAnalysis, records: Sequence[Query]) -> List[Query]:
        projection_columns = self._projection_columns(analysis)
        values: List[Query] = []
        for record_set in records:
            if isinstance(record_set, ast.AllRecords):
                continue
            for column in projection_columns:
                if column in _join_columns(record_set):
                    continue
                values.append(q.column_values(column, record_set))
        # Whole-column projections feed the sum/avg/max/min aggregates.
        for column in self._mentioned_columns(analysis) or list(self.table.columns):
            values.append(q.column_values(column, q.all_records()))

        if self.config.enable_most_common:
            for column in self._mentioned_columns(analysis) or list(self.table.columns):
                values.append(q.most_common(column))

        if self.config.enable_compare_values:
            values.extend(self._compare_value_queries(analysis))

        return _dedupe(values)[: self.config.max_value_queries]

    def _compare_value_queries(self, analysis: LexicalAnalysis) -> List[Query]:
        queries: List[Query] = []
        by_column: Dict[str, List[Value]] = {}
        for column, value in analysis.matched_entities():
            by_column.setdefault(column, []).append(value)
        key_columns = self._mentioned_comparable_columns(analysis) or self.schema.comparable_columns
        for value_column, column_values in by_column.items():
            if len(column_values) < 2:
                continue
            for left, right in combinations(column_values, 2):
                candidates = q.union(left, right)
                for key_column in key_columns:
                    if key_column == value_column:
                        continue
                    queries.append(q.compare_values(key_column, value_column, candidates))
                    queries.append(
                        q.compare_values(
                            key_column, value_column, candidates, kind=SuperlativeKind.ARGMIN
                        )
                    )
        # "between values in column X, who has the highest value of column Y"
        for value_column in self.schema.textual_columns:
            all_values = q.column_values(value_column, q.all_records())
            for key_column in key_columns:
                if key_column == value_column:
                    continue
                queries.append(q.compare_values(key_column, value_column, all_values))
                queries.append(
                    q.compare_values(
                        key_column, value_column, all_values, kind=SuperlativeKind.ARGMIN
                    )
                )
        return queries

    # -- scalar queries ---------------------------------------------------------------
    def _scalar_queries(
        self,
        analysis: LexicalAnalysis,
        records: Sequence[Query],
        values: Sequence[Query],
    ) -> List[Query]:
        scalars: List[Query] = []
        for record_set in records:
            if isinstance(record_set, ast.AllRecords):
                continue
            scalars.append(q.count(record_set))

        numeric_columns = set(self.schema.numeric_columns)
        for value_query in values:
            if not isinstance(value_query, ast.ColumnValues):
                continue
            if value_query.column in numeric_columns:
                scalars.append(q.max_(value_query))
                scalars.append(q.min_(value_query))
                scalars.append(q.sum_(value_query))
                scalars.append(q.avg(value_query))
            elif value_query.column in self.schema.date_columns:
                scalars.append(q.max_(value_query))
                scalars.append(q.min_(value_query))
        return scalars

    def _difference_queries(self, analysis: LexicalAnalysis) -> List[Query]:
        queries: List[Query] = []
        by_column: Dict[str, List[Value]] = {}
        for column, value in analysis.matched_entities():
            by_column.setdefault(column, []).append(value)
        numeric_columns = self._mentioned_numeric_columns(analysis) or self.schema.numeric_columns
        for where_column, column_values in by_column.items():
            for left, right in combinations(column_values, 2):
                # Difference of value occurrences.
                queries.append(q.count_difference(where_column, left, right))
                queries.append(q.count_difference(where_column, right, left))
                # Difference of values in a numeric column.
                for value_column in numeric_columns:
                    if value_column == where_column:
                        continue
                    queries.append(
                        q.value_difference(value_column, where_column, left, right)
                    )
                    queries.append(
                        q.value_difference(value_column, where_column, right, left)
                    )
        return queries

    # -- column selection helpers --------------------------------------------------
    def _mentioned_columns(self, analysis: LexicalAnalysis) -> List[str]:
        return analysis.matched_columns()

    def _projection_columns(self, analysis: LexicalAnalysis) -> List[str]:
        mentioned = analysis.matched_columns()
        ordered = list(mentioned)
        for column in self.table.columns:
            if column not in ordered:
                ordered.append(column)
        return ordered

    def _comparison_columns(self, analysis: LexicalAnalysis) -> List[str]:
        mentioned = [
            column
            for column in analysis.matched_columns()
            if column in self.schema.comparable_columns
        ]
        return mentioned or self.schema.numeric_columns

    def _mentioned_numeric_columns(self, analysis: LexicalAnalysis) -> List[str]:
        return [
            column
            for column in analysis.matched_columns()
            if column in self.schema.numeric_columns
        ]

    def _mentioned_comparable_columns(self, analysis: LexicalAnalysis) -> List[str]:
        return [
            column
            for column in analysis.matched_columns()
            if column in self.schema.comparable_columns
        ]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _dedupe(queries: Iterable[Query]) -> List[Query]:
    seen: Set[str] = set()
    unique: List[Query] = []
    for query in queries:
        key = to_sexpr(query)
        if key not in seen:
            seen.add(key)
            unique.append(query)
    return unique


def _join_columns(query: Query) -> Set[str]:
    """Columns used as selection (join) columns anywhere in a record query."""
    columns: Set[str] = set()
    for node in query.walk():
        if isinstance(node, (ast.ColumnRecords, ast.ComparisonRecords)):
            columns.add(node.column)
    return columns


def _joins_same_column(left: Query, right: Query) -> bool:
    return bool(_join_columns(left) & _join_columns(right))
