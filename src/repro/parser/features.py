"""Feature extraction φ(x, T, z) for the log-linear ranker (paper Eq. 4).

Features connect the NL question ``x`` with a candidate query ``z`` over
table ``T``.  They are sparse string-keyed counts, in the spirit of the
lexicalised / denotation features of the Pasupat & Liang and Zhang et al.
parsers:

* utterance overlap — precision/recall of the query-utterance content
  tokens against the question tokens,
* column linkage — are the query's columns mentioned in the question?
* trigger words — does the question contain the phrase that usually
  signals the query's top operator ("how many" → count, "difference" →
  sub, superlative adjectives → argmax/argmin, ...),
* denotation features — answer size, emptiness, answer type vs. the
  question's expected answer type,
* structural features — operator counts, query size.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..tables.table import Table
from ..tables.values import DateValue, NumberValue
from ..dcs import ast
from ..dcs.ast import AggregateFunction, Query, SuperlativeKind
from ..dcs.executor import ExecutionResult
from ..core.utterance import utterance
from .lexicon import LexicalAnalysis, content_tokens, tokenize

FeatureVector = Dict[str, float]

#: Trigger phrases signalling specific operators.
_COUNT_TRIGGERS = ("how many", "number of", "total number", "how much")
_DIFFERENCE_TRIGGERS = ("difference", "how many more", "how much more", "more than in")
_MAX_TRIGGERS = ("highest", "most", "largest", "biggest", "maximum", "last", "latest", "best", "top")
_MIN_TRIGGERS = ("lowest", "least", "smallest", "minimum", "first", "earliest", "fewest", "worst")
_AVG_TRIGGERS = ("average", "mean")
_SUM_TRIGGERS = ("total", "sum", "combined", "altogether")
_NEIGHBOR_TRIGGERS = ("after", "before", "next", "previous", "above", "below", "following")
_UNION_TRIGGERS = (" or ",)


def extract_features(
    question: str,
    table: Table,
    query: Query,
    analysis: Optional[LexicalAnalysis] = None,
    result: Optional[ExecutionResult] = None,
) -> FeatureVector:
    """Compute the sparse feature vector for one (question, table, query) triple."""
    features: FeatureVector = {}
    question_lower = question.lower()
    question_tokens = _content_token_set(question)

    _utterance_overlap_features(features, question_tokens, query)
    _column_features(features, question_tokens, query)
    _operator_features(features, question_lower, query)
    _structure_features(features, query)
    if result is not None:
        _denotation_features(features, question_lower, result)
    if analysis is not None:
        _entity_features(features, analysis, query)
    return features


# ---------------------------------------------------------------------------
# feature groups
# ---------------------------------------------------------------------------


def clear_token_caches() -> None:
    """Drop the memoised token sets (benchmarks use this so each measured
    mode starts cold)."""
    _content_token_set.cache_clear()
    _column_token_set.cache_clear()


@lru_cache(maxsize=8192)
def _content_token_set(text: str) -> FrozenSet[str]:
    """Cached content-token set: the same question (and the same column
    headers) are tokenised for every one of the ~600 candidates."""
    return frozenset(content_tokens(text))


@lru_cache(maxsize=8192)
def _column_token_set(column: str) -> FrozenSet[str]:
    """Cached token set of a column header, with the stop-word fallback."""
    return _content_token_set(column) or frozenset(tokenize(column))


def _utterance_overlap_features(
    features: FeatureVector, question_tokens: Set[str], query: Query
) -> None:
    query_tokens = set(content_tokens(utterance(query)))
    if not query_tokens or not question_tokens:
        features["overlap:empty"] = 1.0
        return
    common = question_tokens & query_tokens
    precision = len(common) / len(query_tokens)
    recall = len(common) / len(question_tokens)
    features["overlap:precision"] = precision
    features["overlap:recall"] = recall
    if precision + recall > 0:
        features["overlap:f1"] = 2 * precision * recall / (precision + recall)


def _column_features(
    features: FeatureVector, question_tokens: Set[str], query: Query
) -> None:
    columns = query.columns()
    if not columns:
        return
    mentioned = 0
    for column in columns:
        column_tokens = _column_token_set(column)
        if column_tokens and column_tokens & question_tokens:
            mentioned += 1
    features["columns:mentioned_fraction"] = mentioned / len(columns)
    features["columns:unmentioned"] = float(len(columns) - mentioned)


def _operator_features(features: FeatureVector, question_lower: str, query: Query) -> None:
    # One walk for everything: the feature values are identical to probing
    # the query once per flag, but ~600 candidates per question made the
    # repeated traversals one of the hottest paths of a cold parse.
    nodes = list(query.walk())
    for operator, count in Counter(type(node).__name__ for node in nodes).items():
        features[f"op:{operator}"] = float(count)

    has_count = any(
        isinstance(node, ast.Aggregate) and node.function == AggregateFunction.COUNT
        for node in nodes
    )
    has_difference = any(isinstance(node, ast.Difference) for node in nodes)
    has_max = _has_superlative(nodes, SuperlativeKind.ARGMAX) or _has_aggregate(
        nodes, AggregateFunction.MAX
    )
    has_min = _has_superlative(nodes, SuperlativeKind.ARGMIN) or _has_aggregate(
        nodes, AggregateFunction.MIN
    )
    has_avg = _has_aggregate(nodes, AggregateFunction.AVG)
    has_sum = _has_aggregate(nodes, AggregateFunction.SUM)
    has_neighbor = any(
        isinstance(node, (ast.PrevRecords, ast.NextRecords)) for node in nodes
    )
    has_union = any(isinstance(node, ast.Union) for node in nodes)

    _trigger_feature(features, "count", question_lower, _COUNT_TRIGGERS, has_count)
    _trigger_feature(features, "difference", question_lower, _DIFFERENCE_TRIGGERS, has_difference)
    _trigger_feature(features, "max", question_lower, _MAX_TRIGGERS, has_max)
    _trigger_feature(features, "min", question_lower, _MIN_TRIGGERS, has_min)
    _trigger_feature(features, "avg", question_lower, _AVG_TRIGGERS, has_avg)
    _trigger_feature(features, "sum", question_lower, _SUM_TRIGGERS, has_sum)
    _trigger_feature(features, "neighbor", question_lower, _NEIGHBOR_TRIGGERS, has_neighbor)
    _trigger_feature(features, "union", question_lower, _UNION_TRIGGERS, has_union)


def _trigger_feature(
    features: FeatureVector,
    name: str,
    question_lower: str,
    triggers: Sequence[str],
    query_has_operator: bool,
) -> None:
    question_has_trigger = any(trigger in question_lower for trigger in triggers)
    if question_has_trigger and query_has_operator:
        features[f"trigger:{name}:match"] = 1.0
    elif question_has_trigger and not query_has_operator:
        features[f"trigger:{name}:missing_op"] = 1.0
    elif query_has_operator and not question_has_trigger:
        features[f"trigger:{name}:spurious_op"] = 1.0


def _structure_features(features: FeatureVector, query: Query) -> None:
    features["structure:size"] = float(query.size())
    features["structure:depth"] = float(query.depth())
    features["structure:columns"] = float(len(query.columns()))


def _denotation_features(
    features: FeatureVector, question_lower: str, result: ExecutionResult
) -> None:
    answer = result.answer_values()
    features["answer:size"] = float(len(answer))
    if not answer:
        features["answer:empty"] = 1.0
        return
    if len(answer) == 1:
        features["answer:singleton"] = 1.0
    elif len(answer) > 5:
        features["answer:large"] = 1.0
    numeric = all(value.is_numeric for value in answer)
    expects_number = any(
        trigger in question_lower
        for trigger in ("how many", "how much", "what year", "difference", "what is the number")
    )
    if expects_number and numeric:
        features["answer:number_match"] = 1.0
    elif expects_number and not numeric:
        features["answer:number_mismatch"] = 1.0
    elif numeric and not expects_number:
        features["answer:unexpected_number"] = 1.0


def _entity_features(
    features: FeatureVector, analysis: LexicalAnalysis, query: Query
) -> None:
    matched = {(column, value) for column, value in analysis.matched_entities()}
    if not matched:
        return
    used = set()
    for node in query.walk():
        if isinstance(node, ast.ValueLiteral):
            for column, value in matched:
                if value == node.value:
                    used.add((column, value))
    features["entities:used_fraction"] = len(used) / len(matched)
    features["entities:unused"] = float(len(matched) - len(used))


def _has_superlative(nodes: Sequence[Query], kind: SuperlativeKind) -> bool:
    for node in nodes:
        if isinstance(node, (ast.SuperlativeRecords, ast.FirstLastRecords,
                             ast.IndexSuperlative, ast.CompareValues)):
            if node.kind == kind:
                return True
        if isinstance(node, ast.MostCommonValue) and node.kind == kind:
            return True
    return False


def _has_aggregate(nodes: Sequence[Query], function: AggregateFunction) -> bool:
    return any(
        isinstance(node, ast.Aggregate) and node.function == function
        for node in nodes
    )
