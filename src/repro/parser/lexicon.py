"""Lexical analysis of NL questions against a table.

The first stage of the semantic parser links phrases of the question to
table constants: column headers, cell values, numbers and dates.  This is
the table-specific "lexicon" used by the floating grammar to anchor its
derivations (the equivalent of entity/predicate linking in the Pasupat &
Liang / Zhang et al. parsers).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..tables.knowledge_base import KnowledgeBase
from ..tables.schema import TableSchema, infer_schema
from ..tables.table import Table
from ..tables.values import (
    DateValue,
    NumberValue,
    StringValue,
    Value,
    parse_date,
    parse_number,
)

_TOKEN_RE = re.compile(r"[A-Za-z]+|\d+(?:[.,]\d+)*|\S")

#: Tokens carrying no lexical content; ignored when matching spans.
STOP_WORDS: FrozenSet[str] = frozenset(
    """a an and are at been by did do does for from had has have how in is it of on or
    s than that the their there this to was were what when where which who whose with
    many much more most least last first next only total number value""".split()
)


def tokenize(text: str) -> List[str]:
    """Lower-cased word/number/punctuation tokens of a question."""
    return [token.lower() for token in _TOKEN_RE.findall(text)]


def content_tokens(text: str) -> List[str]:
    """Tokens with stop words removed (used by overlap features)."""
    return [token for token in tokenize(text) if token not in STOP_WORDS and token.isalnum()]


# -- shared normalization (lexicon <-> corpus retrieval) ----------------------
#
# The corpus-level retrieval layer (:mod:`repro.retrieval`) prunes shards
# *before* the parser runs, so its recall must cover everything the
# lexicon below could anchor on.  That guarantee only holds if both
# layers derive their terms through the same functions — these three are
# that shared surface.  Changing any of them changes what the lexicon
# matches AND what retrieval indexes, in lockstep.


def normalize_value_key(value: Value) -> str:
    """The normalized phrase key of one cell value.

    Exactly the key :class:`Lexicon` indexes entity values under (and
    matches question spans against): the value's display form, tokenized
    and re-joined.  Empty when the display form has no tokens.
    """
    return " ".join(tokenize(value.display()))


def column_matchable_tokens(column: str) -> Set[str]:
    """The token set a column header can be matched through.

    Content tokens of the header; for headers made entirely of stop words
    (for example a column literally named "of"), the raw tokens — the same
    fallback :meth:`Lexicon._match_columns` applies, so a header matchable
    by the lexicon is never invisible to retrieval.
    """
    return set(content_tokens(column)) or set(tokenize(column))


def question_phrases(
    tokens: Sequence[str], max_span_length: int = 5
) -> Set[str]:
    """Every contiguous token span of a question, joined into phrase keys.

    The phrase inventory entity linking draws from: a span can only
    become an :class:`EntityMatch` if its joined form appears here, so a
    retrieval index probed with this set can never miss a shard the
    lexicon could anchor an entity on.
    """
    phrases: Set[str] = set()
    for length in range(1, min(max_span_length, len(tokens)) + 1):
        for start in range(0, len(tokens) - length + 1):
            phrases.add(" ".join(tokens[start:start + length]))
    return phrases


@dataclass(frozen=True)
class EntityMatch:
    """A question span linked to a table cell value."""

    span: Tuple[int, int]
    text: str
    column: str
    value: Value

    @property
    def length(self) -> int:
        return self.span[1] - self.span[0]


@dataclass(frozen=True)
class ColumnMatch:
    """A question span linked to a column header."""

    span: Tuple[int, int]
    text: str
    column: str
    overlap: float


@dataclass(frozen=True)
class NumberMatch:
    """A literal number (or year / date) mentioned in the question."""

    span: Tuple[int, int]
    text: str
    value: Value


@dataclass(frozen=True)
class LexicalAnalysis:
    """All lexicon matches for one question over one table."""

    question: str
    tokens: Tuple[str, ...]
    entities: Tuple[EntityMatch, ...]
    columns: Tuple[ColumnMatch, ...]
    numbers: Tuple[NumberMatch, ...]

    def matched_columns(self) -> List[str]:
        ordered: List[str] = []
        for match in self.columns:
            if match.column not in ordered:
                ordered.append(match.column)
        return ordered

    def matched_entities(self) -> List[Tuple[str, Value]]:
        ordered: List[Tuple[str, Value]] = []
        for match in self.entities:
            key = (match.column, match.value)
            if key not in ordered:
                ordered.append(key)
        return ordered


class Lexicon:
    """Builds :class:`LexicalAnalysis` objects for questions over one table."""

    def __init__(self, table: Table, max_span_length: int = 5) -> None:
        self.table = table
        self.schema: TableSchema = infer_schema(table)
        self.kb = KnowledgeBase(table)
        self.max_span_length = max_span_length
        self._value_index = self._build_value_index()
        self._column_tokens = {
            column: column_matchable_tokens(column) for column in table.columns
        }

    # -- index construction -----------------------------------------------------
    def _build_value_index(self) -> Dict[str, List[Tuple[str, Value]]]:
        index: Dict[str, List[Tuple[str, Value]]] = {}
        for column in self.table.columns:
            for value in self.kb.column_entities(column):
                key = normalize_value_key(value)
                if not key:
                    continue
                index.setdefault(key, [])
                if (column, value) not in index[key]:
                    index[key].append((column, value))
        return index

    # -- analysis ------------------------------------------------------------------
    def analyze(self, question: str) -> LexicalAnalysis:
        tokens = tokenize(question)
        entities = self._match_entities(tokens)
        columns = self._match_columns(tokens)
        numbers = self._match_numbers(tokens)
        return LexicalAnalysis(
            question=question,
            tokens=tuple(tokens),
            entities=tuple(entities),
            columns=tuple(columns),
            numbers=tuple(numbers),
        )

    def _match_entities(self, tokens: Sequence[str]) -> List[EntityMatch]:
        matches: List[EntityMatch] = []
        taken: Set[Tuple[int, int]] = set()
        # Longest spans first so "New Caledonia" wins over "Caledonia".
        for length in range(min(self.max_span_length, len(tokens)), 0, -1):
            for start in range(0, len(tokens) - length + 1):
                span = (start, start + length)
                if any(_overlaps(span, existing) for existing in taken):
                    continue
                phrase = " ".join(tokens[start:start + length])
                if length == 1 and phrase in STOP_WORDS:
                    continue
                for column, value in self._value_index.get(phrase, ()):
                    matches.append(
                        EntityMatch(span=span, text=phrase, column=column, value=value)
                    )
                if phrase in self._value_index:
                    taken.add(span)
        matches.sort(key=lambda match: (match.span, match.column))
        return matches

    def _match_columns(self, tokens: Sequence[str]) -> List[ColumnMatch]:
        question_tokens = set(tokens)
        matches: List[ColumnMatch] = []
        for column, column_tokens in self._column_tokens.items():
            if not column_tokens:
                continue
            common = question_tokens & column_tokens
            if not common:
                continue
            overlap = len(common) / len(column_tokens)
            if overlap < 0.5:
                continue
            positions = [i for i, token in enumerate(tokens) if token in common]
            span = (min(positions), max(positions) + 1)
            matches.append(
                ColumnMatch(
                    span=span,
                    text=" ".join(sorted(common)),
                    column=column,
                    overlap=overlap,
                )
            )
        matches.sort(key=lambda match: (-match.overlap, match.column))
        return matches

    def _match_numbers(self, tokens: Sequence[str]) -> List[NumberMatch]:
        matches: List[NumberMatch] = []
        for i, token in enumerate(tokens):
            number = parse_number(token)
            if number is None:
                continue
            matches.append(
                NumberMatch(span=(i, i + 1), text=token, value=NumberValue(number))
            )
        return matches


def _overlaps(left: Tuple[int, int], right: Tuple[int, int]) -> bool:
    return left[0] < right[1] and right[0] < left[1]
