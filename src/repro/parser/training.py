"""Training the semantic parser (paper Section 6.2).

Two supervision signals are supported, matching the paper:

* **Weak supervision** (Equations 5-6): an example is a (question, table,
  answer) triple; every candidate whose execution matches the answer gets
  reward 1.  This is how WikiTableQuestions-style datasets are used and it
  is what makes the baseline parser learn spurious queries (Figure 8).
* **Annotation supervision** (Equations 7-8): an example additionally
  carries the set ``Q_x`` of queries marked correct by users through the
  query explanations; only those candidates get reward 1.  The objective
  mixes the two groups with the 1/|A| and 1/(N-|A|) weights of Equation 8.

Training uses per-example AdaGrad updates with L1 (Section 6.2).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..tables.table import Table
from ..tables.values import Value
from ..dcs.ast import Query
from ..dcs.executor import answers_match
from ..dcs.sexpr import to_sexpr
from .candidates import Candidate, SemanticParser
from .evaluation import EvaluationExample, EvaluationReport, evaluate_parser
from .features import FeatureVector


@dataclass(frozen=True)
class TrainingExample:
    """One training example: weakly supervised, optionally annotated."""

    question: str
    table: Table
    answer: Tuple[Value, ...]
    annotated_queries: Tuple[Query, ...] = ()

    @property
    def is_annotated(self) -> bool:
        return bool(self.annotated_queries)


@dataclass
class PreparedExample:
    """Candidates and reward indices, cached once before the epochs loop."""

    example: TrainingExample
    candidates: List[Candidate]
    weak_indices: List[int]
    annotated_indices: List[int]

    @property
    def feature_vectors(self) -> List[FeatureVector]:
        return [candidate.features for candidate in self.candidates]

    def reward_indices(self, use_annotations: bool) -> List[int]:
        if use_annotations and self.annotated_indices:
            return self.annotated_indices
        return self.weak_indices


@dataclass
class TrainerConfig:
    """Hyper-parameters of the training loop."""

    epochs: int = 5
    shuffle: bool = True
    seed: int = 0
    use_annotations: bool = True


@dataclass
class EpochStats:
    epoch: int
    examples_used: int
    mean_log_likelihood: float
    seconds: float


@dataclass
class TrainingStats:
    """What :meth:`Trainer.train` returns."""

    epochs: List[EpochStats] = field(default_factory=list)
    skipped_examples: int = 0
    annotated_examples: int = 0
    total_examples: int = 0


class Trainer:
    """Trains a :class:`SemanticParser` with AdaGrad over cached candidates."""

    def __init__(self, parser: SemanticParser, config: Optional[TrainerConfig] = None) -> None:
        self.parser = parser
        self.config = config or TrainerConfig()

    # -- preparation -------------------------------------------------------------
    def prepare(self, examples: Sequence[TrainingExample]) -> List[PreparedExample]:
        """Generate candidates and reward sets once per example."""
        prepared = []
        for example in examples:
            candidates, _analysis = self.parser.generate_candidates(
                example.question, example.table
            )
            weak = [
                index
                for index, candidate in enumerate(candidates)
                if example.answer
                and candidate.result.answer_values()
                and answers_match(candidate.result.answer_values(), example.answer)
            ]
            annotated = self._annotated_indices(candidates, example, weak)
            prepared.append(
                PreparedExample(
                    example=example,
                    candidates=candidates,
                    weak_indices=weak,
                    annotated_indices=annotated,
                )
            )
        return prepared

    @staticmethod
    def _annotated_indices(
        candidates: Sequence[Candidate],
        example: TrainingExample,
        weak_indices: Sequence[int],
    ) -> List[int]:
        """Candidates rewarded under annotation supervision (the set ``Q_x``).

        A question may have more than one correct annotation (Section 6.2):
        besides the candidates whose s-expression exactly matches an
        annotated query, any answer-consistent candidate that is
        *equivalent* to an annotated query (same behaviour under table
        perturbations) is also rewarded.  Without this, pairs of equivalent
        candidates with identical features (e.g. a difference with its
        operands swapped) would be pushed in opposite directions, which only
        injects gradient noise.
        """
        if not example.annotated_queries:
            return []
        from .evaluation import queries_equivalent

        annotated_sexprs = {to_sexpr(query) for query in example.annotated_queries}
        indices = {
            index
            for index, candidate in enumerate(candidates)
            if candidate.sexpr in annotated_sexprs
        }
        for index in weak_indices:
            if index in indices:
                continue
            candidate = candidates[index]
            if any(
                queries_equivalent(candidate.query, annotated, example.table, perturbations=2)
                for annotated in example.annotated_queries
            ):
                indices.add(index)
        return sorted(indices)

    # -- training loop --------------------------------------------------------------
    def train(
        self,
        examples: Sequence[TrainingExample],
        prepared: Optional[List[PreparedExample]] = None,
    ) -> TrainingStats:
        """Run the configured number of AdaGrad epochs over the examples."""
        prepared = prepared if prepared is not None else self.prepare(examples)
        usable = [item for item in prepared if item.reward_indices(self.config.use_annotations)]
        stats = TrainingStats(
            skipped_examples=len(prepared) - len(usable),
            annotated_examples=sum(
                1 for item in usable
                if self.config.use_annotations and item.annotated_indices
            ),
            total_examples=len(usable),
        )
        if not usable:
            return stats

        annotated_count = sum(1 for item in usable if item.annotated_indices) \
            if self.config.use_annotations else 0
        unannotated_count = len(usable) - annotated_count
        rng = random.Random(self.config.seed)

        for epoch in range(self.config.epochs):
            started = time.perf_counter()
            order = list(usable)
            if self.config.shuffle:
                rng.shuffle(order)
            log_likelihoods = []
            for item in order:
                rewards = item.reward_indices(self.config.use_annotations)
                feature_vectors = item.feature_vectors
                weight = self._example_weight(
                    item, annotated_count, unannotated_count
                )
                gradient = self.parser.model.gradient(feature_vectors, rewards)
                if gradient:
                    if weight != 1.0:
                        gradient = {name: value * weight for name, value in gradient.items()}
                    self.parser.model.apply_gradient(gradient)
                log_likelihoods.append(
                    self.parser.model.example_log_likelihood(feature_vectors, rewards)
                )
            finite = [value for value in log_likelihoods if value != float("-inf")]
            stats.epochs.append(
                EpochStats(
                    epoch=epoch,
                    examples_used=len(order),
                    mean_log_likelihood=sum(finite) / len(finite) if finite else float("-inf"),
                    seconds=time.perf_counter() - started,
                )
            )
        return stats

    def _example_weight(
        self, item: PreparedExample, annotated_count: int, unannotated_count: int
    ) -> float:
        """The Equation 8 group weights (1/|A| vs 1/(N-|A|)), rescaled by N.

        Rescaling by the total number of examples keeps the per-example
        gradient magnitude comparable to plain weak-supervision training
        (Equation 6); when every example belongs to a single group the two
        objectives coincide and the weight degenerates to 1.
        """
        if not self.config.use_annotations or annotated_count == 0 or unannotated_count == 0:
            return 1.0
        total = annotated_count + unannotated_count
        if item.annotated_indices:
            return total / (2.0 * annotated_count)
        return total / (2.0 * unannotated_count)


# ---------------------------------------------------------------------------
# convenience drivers
# ---------------------------------------------------------------------------


def train_parser(
    examples: Sequence[TrainingExample],
    epochs: int = 5,
    use_annotations: bool = True,
    seed: int = 0,
    parser: Optional[SemanticParser] = None,
) -> SemanticParser:
    """Train a (new) parser on the given examples and return it."""
    parser = parser or SemanticParser()
    trainer = Trainer(
        parser,
        TrainerConfig(epochs=epochs, use_annotations=use_annotations, seed=seed),
    )
    trainer.train(examples)
    return parser


def evaluate_on(
    parser: SemanticParser,
    examples: Sequence[EvaluationExample],
    k: int = 7,
) -> EvaluationReport:
    """Shorthand used by the benches: evaluate a parser on dev/test examples."""
    return evaluate_parser(parser, examples, k=k)
