"""The log-linear ranking model and its AdaGrad/L1 optimiser (paper Section 6.2).

The parser defines a log-linear distribution over candidate queries
(Equation 4)::

    p_theta(z | x, T)  ∝  exp(phi(x, T, z) · theta)

and is trained with AdaGrad (Duchi et al. 2011) to maximise the marginal
likelihood of the correct answer (Equation 6) or, for annotated examples,
of the correct queries (Equations 7-8), with an L1 regulariser.

The implementation keeps everything sparse: weights, gradients and the
per-feature AdaGrad accumulators are plain dictionaries.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .features import FeatureVector


def dot(weights: Dict[str, float], features: FeatureVector) -> float:
    """Sparse dot product ``theta · phi``."""
    return sum(weights.get(name, 0.0) * value for name, value in features.items())


def log_softmax(scores: Sequence[float]) -> List[float]:
    """Numerically stable log-softmax of a score list."""
    if not scores:
        return []
    maximum = max(scores)
    shifted = [score - maximum for score in scores]
    log_norm = math.log(sum(math.exp(score) for score in shifted))
    return [score - log_norm for score in shifted]


def softmax(scores: Sequence[float]) -> List[float]:
    """Numerically stable softmax of a score list."""
    return [math.exp(log_p) for log_p in log_softmax(scores)]


@dataclass
class AdaGradSettings:
    """Hyper-parameters of the optimiser.

    ``clip_threshold`` bounds the largest absolute component of a
    per-example gradient before the AdaGrad step.  Annotation supervision
    (Equation 7) concentrates the reward on very few candidates, which
    produces occasional outsized gradients on examples with hundreds of
    candidates; without clipping those examples dominate the AdaGrad
    accumulators and destabilise training.  ``None`` disables clipping.
    """

    learning_rate: float = 0.1
    l1_penalty: float = 1e-4
    epsilon: float = 1e-8
    clip_threshold: Optional[float] = 1.0


class LogLinearModel:
    """A sparse log-linear model over candidate queries."""

    def __init__(self, settings: Optional[AdaGradSettings] = None) -> None:
        self.settings = settings or AdaGradSettings()
        self.weights: Dict[str, float] = {}
        self._accumulators: Dict[str, float] = {}
        self.updates_applied = 0

    # -- scoring ----------------------------------------------------------------
    def score(self, features: FeatureVector) -> float:
        return dot(self.weights, features)

    def scores(self, feature_vectors: Sequence[FeatureVector]) -> List[float]:
        return [self.score(features) for features in feature_vectors]

    def probabilities(self, feature_vectors: Sequence[FeatureVector]) -> List[float]:
        """``p_theta(z | x, T)`` over a candidate list (Equation 4)."""
        return softmax(self.scores(feature_vectors))

    def rank(self, feature_vectors: Sequence[FeatureVector]) -> List[int]:
        """Candidate indices sorted by decreasing model score (ties keep order)."""
        scores = self.scores(feature_vectors)
        return sorted(range(len(scores)), key=lambda i: (-scores[i], i))

    # -- learning -----------------------------------------------------------------
    def gradient(
        self,
        feature_vectors: Sequence[FeatureVector],
        correct_indices: Sequence[int],
    ) -> FeatureVector:
        """Gradient of the per-example marginal log-likelihood.

        ``correct_indices`` marks the candidates with reward 1 — candidates
        whose execution matches the answer (weak supervision, Eq. 5) or
        candidates annotated as correct queries (Eq. 7).  The gradient is
        the difference between the feature expectation restricted to the
        correct candidates and the unrestricted feature expectation.
        """
        if not feature_vectors or not correct_indices:
            return {}
        probabilities = self.probabilities(feature_vectors)
        correct = set(correct_indices)
        correct_mass = sum(probabilities[i] for i in correct)
        if correct_mass <= 0.0:
            return {}
        gradient: FeatureVector = {}
        for index, features in enumerate(feature_vectors):
            # posterior restricted to the correct set minus the full expectation
            posterior = probabilities[index] / correct_mass if index in correct else 0.0
            coefficient = posterior - probabilities[index]
            if coefficient == 0.0:
                continue
            for name, value in features.items():
                gradient[name] = gradient.get(name, 0.0) + coefficient * value
        return gradient

    def apply_gradient(self, gradient: FeatureVector) -> None:
        """One AdaGrad ascent step with gradient clipping and L1 truncation."""
        settings = self.settings
        if settings.clip_threshold is not None and gradient:
            largest = max(abs(value) for value in gradient.values())
            if largest > settings.clip_threshold:
                scale = settings.clip_threshold / largest
                gradient = {name: value * scale for name, value in gradient.items()}
        for name, value in gradient.items():
            if value == 0.0:
                continue
            accumulator = self._accumulators.get(name, 0.0) + value * value
            self._accumulators[name] = accumulator
            step = settings.learning_rate / (math.sqrt(accumulator) + settings.epsilon)
            weight = self.weights.get(name, 0.0) + step * value
            # Truncated-gradient style L1: shrink towards zero by the penalty.
            shrink = step * settings.l1_penalty
            if weight > shrink:
                weight -= shrink
            elif weight < -shrink:
                weight += shrink
            else:
                weight = 0.0
            if weight == 0.0:
                self.weights.pop(name, None)
            else:
                self.weights[name] = weight
        self.updates_applied += 1

    def update(
        self,
        feature_vectors: Sequence[FeatureVector],
        correct_indices: Sequence[int],
    ) -> None:
        """Convenience: compute and apply the gradient of one example."""
        gradient = self.gradient(feature_vectors, correct_indices)
        if gradient:
            self.apply_gradient(gradient)

    def example_log_likelihood(
        self,
        feature_vectors: Sequence[FeatureVector],
        correct_indices: Sequence[int],
    ) -> float:
        """``log p_theta(y | x, T)`` for one example (Equation 5 / 7)."""
        if not feature_vectors or not correct_indices:
            return float("-inf")
        log_probabilities = log_softmax(self.scores(feature_vectors))
        correct = [log_probabilities[i] for i in set(correct_indices)]
        maximum = max(correct)
        return maximum + math.log(sum(math.exp(value - maximum) for value in correct))

    # -- persistence ----------------------------------------------------------------
    def copy(self) -> "LogLinearModel":
        clone = LogLinearModel(settings=AdaGradSettings(**vars(self.settings)))
        clone.weights = dict(self.weights)
        clone._accumulators = dict(self._accumulators)
        clone.updates_applied = self.updates_applied
        return clone

    def to_json(self) -> str:
        payload = {
            "settings": vars(self.settings),
            "weights": self.weights,
            "accumulators": self._accumulators,
            "updates_applied": self.updates_applied,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LogLinearModel":
        payload = json.loads(text)
        model = cls(settings=AdaGradSettings(**payload.get("settings", {})))
        model.weights = dict(payload.get("weights", {}))
        model._accumulators = dict(payload.get("accumulators", {}))
        model.updates_applied = int(payload.get("updates_applied", 0))
        return model

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LogLinearModel":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"LogLinearModel({len(self.weights)} weights, {self.updates_applied} updates)"
