"""The semantic-parser substrate: question → ranked lambda DCS candidates."""

from .lexicon import (
    STOP_WORDS,
    ColumnMatch,
    EntityMatch,
    LexicalAnalysis,
    Lexicon,
    NumberMatch,
    content_tokens,
    tokenize,
)
from .grammar import CandidateGrammar, GenerationConfig
from .features import FeatureVector, extract_features
from .model import AdaGradSettings, LogLinearModel, dot, log_softmax, softmax
from .candidates import Candidate, ParseOutput, ParserConfig, SemanticParser
from .evaluation import (
    EvaluationExample,
    EvaluationReport,
    ExampleOutcome,
    evaluate_parser,
    find_correct_indices,
    perturbed_tables,
    queries_equivalent,
)
from .training import (
    EpochStats,
    PreparedExample,
    Trainer,
    TrainerConfig,
    TrainingExample,
    TrainingStats,
    train_parser,
)

__all__ = [
    "tokenize",
    "content_tokens",
    "STOP_WORDS",
    "Lexicon",
    "LexicalAnalysis",
    "EntityMatch",
    "ColumnMatch",
    "NumberMatch",
    "CandidateGrammar",
    "GenerationConfig",
    "extract_features",
    "FeatureVector",
    "LogLinearModel",
    "AdaGradSettings",
    "dot",
    "softmax",
    "log_softmax",
    "SemanticParser",
    "ParserConfig",
    "ParseOutput",
    "Candidate",
    "EvaluationExample",
    "EvaluationReport",
    "ExampleOutcome",
    "evaluate_parser",
    "find_correct_indices",
    "queries_equivalent",
    "perturbed_tables",
    "TrainingExample",
    "Trainer",
    "TrainerConfig",
    "TrainingStats",
    "EpochStats",
    "PreparedExample",
    "train_parser",
]
