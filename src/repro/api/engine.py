""":class:`ReproEngine` — the one façade every query surface goes through.

The paper's system is a single interface: a user poses a question and
gets ranked candidates with NL utterances and provenance.  Before this
module the reproduction had grown three overlapping entry points
(:meth:`NLInterface.ask`, :meth:`TableCatalog.ask`/:meth:`ask_any`, the
:class:`~repro.serving.AsyncServer`) with three result shapes.  The
engine collapses them: it owns a :class:`~repro.tables.catalog.TableCatalog`
and answers every :class:`~repro.api.envelope.QueryRequest` with a
:class:`~repro.api.envelope.QueryResult` —

* ``query`` / ``query_many`` — synchronous, with the same shard-grouped
  batching the serving dispatcher uses;
* ``aquery`` — the asyncio face (one request off the running loop);
* ``server()`` — an :class:`~repro.serving.AsyncServer` bound to this
  engine, for micro-batched concurrent sessions and the TCP endpoint.

Errors never escape as stringly exceptions: the engine returns an error
envelope carrying an :class:`~repro.api.errors.ErrorCode`
(``result.raise_for_error()`` restores exception behaviour when wanted).

The module also hosts the two result builders (:func:`result_from_response`,
:func:`result_from_catalog_answer`) shared by the engine, the serving
layer's v2 wire path and the CLI — one construction site is what makes
"TCP result == in-process result" a structural property instead of a
hope.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..tables.catalog import CatalogAnswer, TableCatalog
from .envelope import (
    CandidateInfo,
    ComposedInfo,
    ErrorInfo,
    QueryRequest,
    QueryResult,
    RankedShard,
    RoutingInfo,
    ShardInfo,
    ShardScoreInfo,
    TimingInfo,
)
from .errors import ApiError, ErrorCode, bad_request, classify_exception

#: What ``query`` accepts: a full request or a bare question string.
RequestLike = Union[QueryRequest, str]


# ---------------------------------------------------------------------------
# result builders (shared with repro.serving and the CLI)
# ---------------------------------------------------------------------------


def _candidates_from_response(response) -> Tuple[CandidateInfo, ...]:
    return tuple(
        CandidateInfo(
            rank=item.rank,
            answer=tuple(item.answer),
            utterance=item.utterance,
            sexpr=item.candidate.sexpr,
            score=item.candidate.score,
        )
        for item in response.explained
    )


def _parse_failure(question: str) -> ErrorInfo:
    return ErrorInfo(
        code=ErrorCode.PARSE_FAILURE,
        message=f"no executable candidate queries for {question!r}",
    )


def result_from_response(
    request: QueryRequest,
    response,
    shard: Optional[ShardInfo] = None,
    cache: Optional[Dict[str, Any]] = None,
    corpus_version: Optional[int] = None,
) -> QueryResult:
    """Build the envelope for a routed single-table answer.

    ``response`` is an :class:`~repro.interface.nl_interface.InterfaceResponse`;
    ``shard`` defaults to the response's own table identity.
    ``corpus_version`` is the catalog version the request was accepted
    against (``None`` when no catalog was involved).
    """
    candidates = _candidates_from_response(response)
    ok = bool(candidates)
    return QueryResult(
        question=response.question,
        ok=ok,
        answer=tuple(candidates[0].answer) if candidates else (),
        request_id=request.request_id,
        error=None if ok else _parse_failure(response.question),
        shard=shard if shard is not None else ShardInfo.from_table(response.table),
        candidates=candidates,
        routing=RoutingInfo(
            mode="table",
            pruned=False,
            fallback=False,
            shards_parsed=1,
            shards_pruned=0,
        ),
        timing=TimingInfo(
            parse_seconds=response.parse_seconds,
            explain_seconds=response.explain_seconds,
            total_seconds=response.parse_seconds + response.explain_seconds,
        ),
        cache=cache,
        corpus_version=corpus_version,
        raw=response,
    )


def _composed_info(answer: CatalogAnswer) -> Optional[ComposedInfo]:
    """Lift a catalog's :class:`ComposedAnswer` into the wire shape.

    The provenance identifies the joined shards by digest; their refs
    (rows/columns for the wire ``ShardInfo``) come from the set-routing
    proposals the composition was attempted over.  A digest the
    proposals cannot resolve (impossible through ``ask_any``, which only
    composes proposal pairs) degrades to a zero-sized ``ShardInfo``
    rather than dropping the provenance.
    """
    composed = answer.composed
    if composed is None:
        return None
    refs = {}
    if answer.set_routing is not None:
        for proposal in answer.set_routing.proposals:
            for ref in proposal.refs:
                refs.setdefault(ref.digest, ref)
    provenance = composed.provenance

    def shard_info(digest: str, name: str) -> ShardInfo:
        ref = refs.get(digest)
        if ref is not None:
            return ShardInfo.from_ref(ref)
        return ShardInfo(digest=digest, name=name, rows=0, columns=0)

    return ComposedInfo(
        answer=tuple(composed.answer),
        sexpr=composed.sexpr,
        utterance=composed.utterance,
        primary=shard_info(provenance.primary_digest, provenance.primary_name),
        secondary=shard_info(
            provenance.secondary_digest, provenance.secondary_name
        ),
        left_column=provenance.left_column,
        right_column=provenance.right_column,
        join_pairs=tuple(
            (int(pair[0]), int(pair[1])) for pair in provenance.join_pairs
        ),
        retrieval_score=composed.retrieval_score,
    )


def result_from_catalog_answer(
    request: QueryRequest,
    answer: CatalogAnswer,
    cache: Optional[Dict[str, Any]] = None,
    corpus_version: Optional[int] = None,
) -> QueryResult:
    """Build the envelope for a corpus-wide :meth:`TableCatalog.ask_any`."""
    decision = answer.routing
    retrieval = (
        {scored.ref.digest: scored.score for scored in decision.scored}
        if decision is not None
        else {}
    )
    ranked = tuple(
        RankedShard(
            shard=ShardInfo.from_ref(ref),
            answer=tuple(response.top.answer) if response.top else (),
            score=response.top.candidate.score if response.top else None,
            retrieval_score=retrieval.get(ref.digest, 0.0),
        )
        for ref, response in answer.ranked
    )
    best = answer.best
    candidates = _candidates_from_response(best[1]) if best is not None else ()
    ok = bool(candidates)
    parse_seconds = sum(response.parse_seconds for _, response in answer.ranked)
    explain_seconds = sum(response.explain_seconds for _, response in answer.ranked)
    return QueryResult(
        question=answer.question,
        ok=ok,
        answer=tuple(answer.answer),
        request_id=request.request_id,
        error=None if ok else _parse_failure(answer.question),
        shard=ShardInfo.from_ref(best[0]) if best is not None else None,
        candidates=candidates,
        ranked=ranked,
        routing=RoutingInfo(
            mode="any",
            pruned=answer.pruned,
            fallback=decision.fallback if decision is not None else False,
            shards_parsed=answer.shards_parsed,
            shards_pruned=answer.shards_pruned,
            scores=tuple(
                ShardScoreInfo(
                    digest=scored.ref.digest,
                    name=scored.ref.name,
                    score=scored.score,
                    matched=tuple(scored.matched),
                )
                for scored in decision.scored
            )
            if decision is not None
            else (),
        ),
        timing=TimingInfo(
            parse_seconds=parse_seconds,
            explain_seconds=explain_seconds,
            total_seconds=parse_seconds + explain_seconds,
        ),
        cache=cache,
        corpus_version=corpus_version,
        composed=_composed_info(answer),
        raw=answer,
    )


def error_result(request: QueryRequest, error: ApiError) -> QueryResult:
    """The envelope for a request that failed before (or instead of) parsing."""
    return QueryResult(
        question=request.question if isinstance(request.question, str) else "",
        ok=False,
        request_id=request.request_id,
        error=ErrorInfo.from_error(error),
    )


def result_from_served(
    question: str,
    answer,
    request: Optional[QueryRequest] = None,
    shard: Optional[ShardInfo] = None,
    corpus_version: Optional[int] = None,
) -> QueryResult:
    """Envelope any served answer (``InterfaceResponse`` or ``CatalogAnswer``).

    The adapter the serving layer and ``repro serve --self-test`` use to
    lift dispatcher outputs into the v2 envelope without re-parsing.
    ``shard`` should be the *resolved* catalog ref's identity when the
    answer was routed to one table — the registered name can be an alias
    of the table's own name, and the envelope must report the former.
    """
    request = request if request is not None else QueryRequest(question=question)
    if isinstance(answer, CatalogAnswer):
        return result_from_catalog_answer(
            request, answer, corpus_version=corpus_version
        )
    return result_from_response(
        request, answer, shard=shard, corpus_version=corpus_version
    )


def coerce_request(request: RequestLike, options: Dict[str, Any]) -> QueryRequest:
    """Normalize a bare question + keyword options into a :class:`QueryRequest`.

    The one coercion site shared by :class:`ReproEngine` and
    :class:`~repro.api.client.ReproClient` — construction failures
    (unknown options, conflicting inputs) are coded ``BAD_REQUEST``.
    """
    if isinstance(request, QueryRequest):
        if options:
            raise bad_request(
                "pass options inside the QueryRequest, not alongside it"
            )
        return request
    try:
        return QueryRequest(question=request, **options)
    except TypeError as error:
        raise bad_request(str(error))


# ---------------------------------------------------------------------------
# the façade
# ---------------------------------------------------------------------------


class ReproEngine:
    """One object that answers questions — however they arrive.

    Parameters
    ----------
    catalog:
        An existing :class:`~repro.tables.catalog.TableCatalog` to serve.
        Omitted, the engine builds one from the remaining arguments
        (which mirror the catalog's own constructor).
    tables:
        Tables to register immediately.
    interface / cache_dir / max_hot_shards / k / prune:
        Forwarded to :class:`TableCatalog` when ``catalog`` is omitted.
    workers / backend:
        Pool defaults for batched queries (per-request ``backend``
        overrides the default).
    persistent_pools:
        When true (the default) the engine owns one long-lived
        :class:`~repro.perf.pool.WorkerPool` per backend, created
        lazily and reused for every batched query until :meth:`close`
        — warm workers, incremental table shipping and shard pinning
        instead of per-batch executor churn.  ``False`` restores the
        per-call executors (useful for one-shot scripts).
    call_timeout:
        Per-dispatch watchdog of the persistent process pool: a worker
        sitting on one batch message longer than this (seconds) is
        declared hung, killed and respawned, and its units retried.
        ``None`` (default) disables the watchdog; request deadlines
        still apply.
    """

    def __init__(
        self,
        catalog: Optional[TableCatalog] = None,
        *,
        tables: Optional[Sequence] = None,
        interface=None,
        cache_dir: Optional[str] = None,
        max_hot_shards: Optional[int] = None,
        k: int = 7,
        prune: bool = True,
        workers: int = 4,
        backend: str = "thread",
        persistent_pools: bool = True,
        call_timeout: Optional[float] = None,
    ) -> None:
        if catalog is None:
            catalog = TableCatalog(
                interface=interface,
                cache_dir=cache_dir,
                max_hot_shards=max_hot_shards,
                k=k,
                prune=prune,
            )
        self.catalog = catalog
        self.workers = workers
        self.backend = backend
        self.persistent_pools = persistent_pools
        self.call_timeout = call_timeout
        self._pools: Dict[str, Any] = {}
        self._pools_lock = threading.Lock()
        # Retired snapshots must leave the per-worker registries too —
        # without this, every update leaks the superseded table into
        # each pool worker forever.
        self.catalog.on_retire(self._forward_retirement)
        if tables:
            self.catalog.register_all(list(tables))

    # -- registration passthrough ---------------------------------------------
    def register(self, table, name: Optional[str] = None):
        return self.catalog.register(table, name=name)

    def register_all(self, tables, names=None):
        return self.catalog.register_all(tables, names=names)

    def register_many(
        self, tables, names=None, *, workers=None, extract_backend="auto"
    ):
        """Bulk registration: parallel posting extraction, one index merge.

        Passthrough to :meth:`TableCatalog.register_many` — semantically
        :meth:`register_all`, built for corpus-scale table counts.
        """
        return self.catalog.register_many(
            tables, names=names, workers=workers,
            extract_backend=extract_backend,
        )

    def update(self, ref, new_table):
        """Publish ``new_table`` as the next version of a registered shard.

        Passthrough to :meth:`TableCatalog.update`; once the superseded
        snapshot's pinned queries drain, its retirement propagates to
        every live worker pool (tables, shipped markers, explanation
        entries).
        """
        return self.catalog.update(ref, new_table)

    def _forward_retirement(self, ref) -> None:
        with self._pools_lock:
            pools = list(self._pools.values())
        for pool in pools:
            pool.retire([ref.digest])

    def refs(self):
        return self.catalog.refs()

    def routing(self, question: str, max_candidates: Optional[int] = None):
        """The corpus-retrieval routing decision (no parsing).

        ``max_candidates`` caps candidates at the top N of the ranking
        (the router's heap path); ``None`` keeps every retrieval hit.
        """
        return self.catalog.routing(question, max_candidates=max_candidates)

    def routing_sets(self, question: str, max_candidates: Optional[int] = None):
        """The set router's decision: single-shard routing + set proposals.

        Passthrough to :meth:`TableCatalog.routing_sets` — pure
        inspection of which 2–3-shard sets composition would try.
        """
        return self.catalog.routing_sets(question, max_candidates=max_candidates)

    # -- persistent pools -------------------------------------------------------
    def pool(self, backend: Optional[str] = None):
        """The engine's long-lived worker pool for ``backend`` (lazy).

        Returns ``None`` when ``persistent_pools`` is off — callers pass
        the value straight through as the ``pool=`` argument and the
        per-call executors take over.
        """
        if not self.persistent_pools:
            return None
        backend = backend or self.backend
        with self._pools_lock:
            pool = self._pools.get(backend)
            if pool is None:
                from ..perf.pool import create_pool

                pool = create_pool(
                    backend,
                    self.catalog.interface.parser,
                    self.workers,
                    call_timeout=self.call_timeout,
                )
                self._pools[backend] = pool
            return pool

    def pool_stats(self) -> Dict[str, Any]:
        """Per-backend counters of the live persistent pools (JSON-safe)."""
        with self._pools_lock:
            return {backend: pool.stats() for backend, pool in self._pools.items()}

    def close(self) -> None:
        """Tear down every persistent pool (idempotent; engine stays usable —
        the next batched query lazily builds fresh pools)."""
        with self._pools_lock:
            pools = list(self._pools.values())
            self._pools = {}
        for pool in pools:
            pool.close()

    def __enter__(self) -> "ReproEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the query API ---------------------------------------------------------
    def _coerce(self, request: RequestLike, options: Dict[str, Any]) -> QueryRequest:
        return coerce_request(request, options)

    def query(self, request: RequestLike, **options) -> QueryResult:
        """Answer one request; never raises for request-level failures.

        ``request`` is a :class:`QueryRequest` or a bare question string
        (options — ``target``, ``mode``, ``k``, ``prune``, ``backend``,
        ``request_id`` — then come as keywords).  Failures come back as
        coded error envelopes; call ``.raise_for_error()`` to get
        exception behaviour.
        """
        try:
            request = self._coerce(request, options)
        except ApiError as error:
            coerced = request if isinstance(request, QueryRequest) else QueryRequest(
                question=request if isinstance(request, str) else ""
            )
            return error_result(coerced, error)
        try:
            request.validate()
            # Pin the corpus version at acceptance: results report the
            # version they were computed against even if an update lands
            # while this request executes.
            accepted_version = self.catalog.version
            if request.resolved_mode == "table":
                ref = self.catalog.resolve(request.target)
                response = self.catalog.ask(request.question, ref, k=request.k)
                return result_from_response(
                    request, response, shard=ShardInfo.from_ref(ref),
                    cache=self.cache_stats(),
                    corpus_version=accepted_version,
                )
            backend = request.backend or self.backend
            answer = self.catalog.ask_any(
                request.question,
                k=request.k,
                workers=self.workers,
                backend=backend,
                prune=request.prune,
                pool=self.pool(backend),
                max_candidates=request.max_candidates,
            )
            return result_from_catalog_answer(
                request, answer, cache=self.cache_stats(),
                corpus_version=accepted_version,
            )
        except Exception as error:
            return error_result(request, classify_exception(error))

    def query_many(self, requests: Sequence[RequestLike], **options) -> List[QueryResult]:
        """Answer a batch, index-aligned, with shard-grouped batching.

        Explicit-table requests sharing ``(k, backend)`` ride one
        :meth:`TableCatalog.ask_many` call (the same composition the
        serving dispatcher uses); corpus-wide requests run the
        retrieve-then-parse pipeline individually.  Per-request failures
        become per-request error envelopes — one bad ref never fails its
        neighbours.
        """
        results: List[Optional[QueryResult]] = [None] * len(requests)
        accepted_version = self.catalog.version
        grouped: Dict[Tuple, List[Tuple[int, QueryRequest, object]]] = {}
        for position, raw_request in enumerate(requests):
            try:
                request = self._coerce(raw_request, options)
                request.validate()
            except Exception as error:
                fallback = QueryRequest(
                    question=raw_request if isinstance(raw_request, str) else ""
                )
                coerced = raw_request if isinstance(raw_request, QueryRequest) else fallback
                results[position] = error_result(coerced, classify_exception(error))
                continue
            if request.resolved_mode == "any":
                results[position] = self.query(request)
                continue
            try:
                ref = self.catalog.resolve(request.target)
            except Exception as error:
                results[position] = error_result(request, classify_exception(error))
                continue
            key = (request.k, request.backend or self.backend)
            grouped.setdefault(key, []).append((position, request, ref))
        for (k, backend), members in grouped.items():
            # deadline_ms → absolute monotonic deadlines, one budget per
            # request, started here (the in-process analogue of the
            # serving dispatcher's enqueue-time stamp).
            started = time.monotonic()
            deadlines = [
                started + request.deadline_ms / 1000.0
                if request.deadline_ms is not None
                else None
                for _, request, _ in members
            ]
            try:
                responses = self.catalog.ask_many(
                    [(request.question, ref) for _, request, ref in members],
                    k=k,
                    workers=self.workers,
                    backend=backend,
                    pool=self.pool(backend),
                    deadlines=deadlines,
                )
            except Exception as error:
                coded = classify_exception(error)
                for position, request, _ in members:
                    results[position] = error_result(request, coded)
                continue
            for (position, request, ref), response in zip(members, responses):
                if response.error is not None:
                    results[position] = error_result(
                        request, classify_exception(response.error)
                    )
                    continue
                results[position] = result_from_response(
                    request, response, shard=ShardInfo.from_ref(ref),
                    cache=self.cache_stats(),
                    corpus_version=accepted_version,
                )
        return [result for result in results if result is not None]

    async def aquery(self, request: RequestLike, **options) -> QueryResult:
        """Asynchronous :meth:`query` — runs off the event loop."""
        import asyncio
        import functools

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(self.query, request, **options)
        )

    # -- observability & serving ----------------------------------------------
    def cache_stats(self) -> Dict[str, Any]:
        """The shared parser/index/disk cache counters (JSON-safe)."""
        return self.catalog.interface.parser.cache_stats()

    def stats(self) -> Dict[str, Any]:
        return self.catalog.stats()

    def server(self, **kwargs):
        """An :class:`~repro.serving.AsyncServer` bound to this engine."""
        from ..serving.server import AsyncServer

        return AsyncServer(self, **kwargs)

    def __len__(self) -> int:
        return len(self.catalog)
