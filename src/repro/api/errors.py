"""The structured error taxonomy of the unified query API.

Before this module every layer reported failure its own way: the catalog
raised :class:`~repro.tables.catalog.CatalogError` with a free-form
message, the TCP endpoint shipped ``{"ok": false, "error": "<str>"}``,
and the CLI let tracebacks escape.  Clients had to match message
*strings* to tell "you typo'd the table name" from "the server is
broken".  :class:`ErrorCode` is the closed vocabulary every surface now
maps to; :class:`ApiError` carries a code + message pair across the
library boundary; :func:`classify_exception` is the single place an
arbitrary exception becomes a coded error.

The codes are stable wire strings (``error.code == "UNKNOWN_TABLE"`` on
the v2 protocol) — tests and clients assert on them, never on messages.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Optional


class ServerClosed(RuntimeError):
    """Raised by in-flight requests when the server shuts down under them.

    Defined here (not in :mod:`repro.serving`) so the error taxonomy can
    classify it without importing the serving layer; :mod:`repro.serving`
    re-exports it under the historical name.
    """


class ErrorCode(str, Enum):
    """Every way a query can fail, as a closed, wire-stable vocabulary."""

    #: The request itself is malformed: missing question, wrong option
    #: types, unparsable JSON, an oversized wire line.
    BAD_REQUEST = "BAD_REQUEST"
    #: The target spec names no registered table (name, digest or prefix).
    UNKNOWN_TABLE = "UNKNOWN_TABLE"
    #: The target spec matches more than one table (short digest prefix).
    AMBIGUOUS_TABLE = "AMBIGUOUS_TABLE"
    #: ``register()`` reused a taken name with different content; the
    #: caller who means "publish a new version" wants ``update()``.
    NAME_CONFLICT = "NAME_CONFLICT"
    #: The parser produced no executable candidate for the question.
    PARSE_FAILURE = "PARSE_FAILURE"
    #: The serving layer shut down while the request was in flight.
    SERVER_CLOSED = "SERVER_CLOSED"
    #: The request's deadline (``deadline_ms``) expired before an answer
    #: was produced — in the dispatcher queue or on a hung worker.
    TIMEOUT = "TIMEOUT"
    #: The server shed this request: its bounded dispatcher queue was
    #: full (``max_pending``).  Safe to retry with backoff.
    OVERLOADED = "OVERLOADED"
    #: The wire request's ``op`` is not in the protocol vocabulary.
    UNKNOWN_OP = "UNKNOWN_OP"
    #: The wire request asked for a protocol version the server lacks.
    UNSUPPORTED_VERSION = "UNSUPPORTED_VERSION"
    #: Anything else — a server-side invariant failed.
    INTERNAL = "INTERNAL"


class ApiError(Exception):
    """A coded failure crossing the API boundary.

    ``str(error)`` is the human message; :attr:`code` is what programs
    (and tests) branch on.
    """

    def __init__(self, code: ErrorCode, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message

    def to_dict(self) -> Dict[str, str]:
        return {"code": self.code.value, "message": self.message}

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "ApiError":
        return cls(ErrorCode(payload["code"]), str(payload.get("message", "")))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ApiError({self.code.value}, {self.message!r})"


def bad_request(message: str) -> ApiError:
    return ApiError(ErrorCode.BAD_REQUEST, message)


def timeout_error(message: str) -> ApiError:
    return ApiError(ErrorCode.TIMEOUT, message)


def overloaded_error(message: str) -> ApiError:
    return ApiError(ErrorCode.OVERLOADED, message)


#: Error codes a client may retry (with capped backoff + jitter): the
#: request never started executing, or re-executing it is side-effect
#: free.  ``TIMEOUT`` is deliberately absent — the caller's deadline is
#: already spent — and so is everything that would fail identically.
RETRYABLE_CODES = frozenset({ErrorCode.OVERLOADED, ErrorCode.SERVER_CLOSED})


def classify_exception(error: BaseException) -> ApiError:
    """Map an arbitrary exception onto the taxonomy.

    The one funnel through which stringly exceptions become coded
    errors — the engine, the wire protocol and the CLI all route their
    ``except`` clauses here so the mapping can never drift apart.

    Only exceptions that *name* a caller mistake classify as caller
    errors (the typed catalog refs, :class:`ApiError` itself).  A bare
    ``ValueError``/``TypeError`` escaping the parser or executor on a
    well-formed request is a server-side bug and reports ``INTERNAL`` —
    request-construction sites must raise coded ``BAD_REQUEST`` errors
    themselves (see :meth:`QueryRequest.validate`).  Non-catalog
    messages keep the legacy ``"TypeName: message"`` form the v1 wire
    always used.
    """
    # Imported lazily: repro.tables is a heavier import than this module
    # and the catalog itself imports nothing from repro.api.
    from ..perf.pool import DeadlineExceeded, WorkerFailed
    from ..tables.catalog import (
        AmbiguousTableError,
        CatalogError,
        NameConflictError,
        UnknownTableError,
    )

    if isinstance(error, ApiError):
        return error
    if isinstance(error, DeadlineExceeded):
        return ApiError(ErrorCode.TIMEOUT, str(error))
    if isinstance(error, WorkerFailed):
        return ApiError(ErrorCode.INTERNAL, str(error))
    if isinstance(error, UnknownTableError):
        return ApiError(ErrorCode.UNKNOWN_TABLE, str(error))
    if isinstance(error, AmbiguousTableError):
        return ApiError(ErrorCode.AMBIGUOUS_TABLE, str(error))
    if isinstance(error, NameConflictError):
        # A caller mistake with a precise remedy (use update()), unlike
        # the other CatalogErrors below.
        return ApiError(ErrorCode.NAME_CONFLICT, str(error))
    if isinstance(error, ServerClosed):
        return ApiError(ErrorCode.SERVER_CLOSED, f"{type(error).__name__}: {error}")
    if isinstance(error, TimeoutError):
        # socket.timeout is an alias of TimeoutError on 3.10+: a blocking
        # transport read ran out of budget.
        return ApiError(ErrorCode.TIMEOUT, f"{type(error).__name__}: {error}")
    if isinstance(error, ConnectionError):
        # Reset / refused / broken pipe: the peer is gone, not the request.
        return ApiError(ErrorCode.SERVER_CLOSED, f"{type(error).__name__}: {error}")
    if isinstance(error, CatalogError):
        # Registration collisions, unrehydratable shards: server-side
        # state problems, not something the caller spelled wrong.
        return ApiError(ErrorCode.INTERNAL, str(error))
    return ApiError(ErrorCode.INTERNAL, f"{type(error).__name__}: {error}")
