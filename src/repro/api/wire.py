"""The versioned JSON-lines wire protocol (v1 legacy + v2 envelope).

One request per line, one response line per request.  Two protocol
versions coexist on the same port:

**v1 (legacy, frozen)** — the shapes the PR-3 server spoke.  Requests
are bare objects (``{"question": ..., "table": ...}``, ``{"op":
"list"}``); responses are the ad-hoc ``{"ok": ...}`` dicts of
:func:`v1_answer_payload`.  v1 lines are recognised by the *absence* of
a ``"v"`` key and keep receiving byte-compatible v1 responses — locked
by ``tests/test_serving.py``.

**v2 (the typed envelope)** — requests carry ``{"v": 2, "id": ...,
"op": ...}``; the ``query`` op embeds the
:class:`~repro.api.envelope.QueryRequest` fields and the response
carries the full serialized :class:`~repro.api.envelope.QueryResult`
(explanations, routing decision, timing) under ``"result"``, plus a
top-level coded ``"error"`` on failure::

    → {"v": 2, "id": 1, "op": "query", "question": "...", "target": "olympics"}
    ← {"v": 2, "id": 1, "ok": true, "result": {...QueryResult...}}
    ← {"v": 2, "id": 2, "ok": false, "error": {"code": "UNKNOWN_TABLE", ...}}

Version negotiation is per connection: ``{"v": 2, "op": "hello"}`` pins
the connection to v2 (subsequent lines may omit ``"v"``); any line's
explicit ``"v"`` wins for that line.  A connection that never says
``"v"`` is a v1 client and never sees a v2 shape — including for
unparsable lines.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Union

from ..tables.catalog import CatalogAnswer
from .envelope import ENVELOPE_VERSION, QueryRequest, QueryResult
from .errors import ApiError, ErrorCode, bad_request

#: Protocol versions the server answers.
PROTOCOL_VERSIONS = (1, 2)

#: Ops of the v2 vocabulary (v1 keeps its own: ping/list/stats/ask).
V2_OPS = ("hello", "ping", "list", "stats", "query", "ask")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Decode one raw wire line into a request object.

    Raises a coded ``BAD_REQUEST`` whose message matches the v1 server's
    historical strings (so the v1 error rendering stays byte-compatible).
    """
    try:
        request = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise bad_request(f"bad request: {error}")
    if not isinstance(request, dict):
        raise bad_request("bad request: expected a JSON object")
    return request


def request_version(request: Dict[str, Any], negotiated: Optional[int]) -> int:
    """The protocol version governing one request line.

    An explicit ``"v"`` wins; otherwise the connection's negotiated
    version; otherwise v1 (the legacy default).  Unsupported versions
    raise ``UNSUPPORTED_VERSION``.
    """
    version = request.get("v", negotiated if negotiated is not None else 1)
    if not isinstance(version, int) or isinstance(version, bool) or (
        version not in PROTOCOL_VERSIONS
    ):
        raise ApiError(
            ErrorCode.UNSUPPORTED_VERSION,
            f"unsupported protocol version {version!r} "
            f"(supported: {', '.join(str(v) for v in PROTOCOL_VERSIONS)})",
        )
    return version


def query_request_from_wire(request: Dict[str, Any]) -> QueryRequest:
    """Decode the v2 ``query`` op's embedded :class:`QueryRequest`."""
    fields = {
        key: value
        for key, value in request.items()
        if key not in ("v", "id", "op")
    }
    return QueryRequest.from_dict(fields)


# -- payloads shared across transports ---------------------------------------


def table_listing(catalog) -> list:
    """The ``list`` op's per-shard entries (same shape on every surface)."""
    return [
        {
            "name": ref.name,
            "digest": ref.digest,
            "rows": ref.num_rows,
            "columns": ref.num_columns,
            "hot": catalog.is_hot(ref),
        }
        for ref in catalog.refs()
    ]


def stats_payload(catalog, server_stats: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The ``stats`` op's body: catalog counters + dispatcher counters.

    ``server_stats`` is ``None`` when no dispatcher fronts the catalog
    (the in-process client).
    """
    catalog_stats = dict(catalog.stats())
    catalog_stats.pop("parser", None)  # too verbose for the wire
    return {"catalog": catalog_stats, "server": server_stats}


# -- v2 response envelopes ---------------------------------------------------


def v2_result_response(
    result: QueryResult, request_id: Optional[Union[int, str]] = None
) -> Dict[str, Any]:
    """Wrap a :class:`QueryResult` in the v2 response envelope.

    ``ok`` mirrors ``result.ok``; error results surface their coded
    error at the top level *and* keep the full result (a
    ``PARSE_FAILURE`` still reports its routing metadata).
    """
    payload: Dict[str, Any] = {
        "v": ENVELOPE_VERSION,
        "id": request_id,
        "ok": result.ok,
        "result": result.to_dict(),
    }
    if result.error is not None:
        payload["error"] = result.error.to_dict()
    return payload


def v2_error_response(
    error: ApiError, request_id: Optional[Union[int, str]] = None
) -> Dict[str, Any]:
    """A v2 failure with no result (protocol-level errors)."""
    return {
        "v": ENVELOPE_VERSION,
        "id": request_id,
        "ok": False,
        "error": error.to_dict(),
    }


def v2_ok_response(
    request_id: Optional[Union[int, str]] = None, **fields: Any
) -> Dict[str, Any]:
    """A v2 success for the auxiliary ops (hello/ping/list/stats)."""
    payload: Dict[str, Any] = {"v": ENVELOPE_VERSION, "id": request_id, "ok": True}
    payload.update(fields)
    return payload


# -- v1 response shapes (frozen) ---------------------------------------------


def v1_error_response(error: ApiError) -> Dict[str, Any]:
    """The legacy error line — message only, byte-compatible with PR 3."""
    return {"ok": False, "error": error.message}


def v1_answer_payload(answer) -> Dict[str, Any]:
    """The legacy wire form of one served answer (v1 ``ask`` responses).

    Single-table responses carry the routed table, the top candidate's
    answer/utterance and the candidate count; corpus-wide answers add the
    parsed-shard ranking plus the routing decision (how many shards were
    pruned before parsing, and whether the broadcast fallback fired).
    Frozen: v1 clients parse these keys.  New code should read
    :meth:`QueryResult.to_dict` on the v2 protocol instead.
    """
    if isinstance(answer, CatalogAnswer):
        ranked = [
            {
                "table": ref.name,
                "digest": ref.short,
                "answer": list(response.top.answer) if response.top else [],
                "score": response.top.candidate.score if response.top else None,
            }
            for ref, response in answer.ranked
        ]
        routing = answer.routing
        return {
            "ok": True,
            "routed": "any",
            "table": answer.best_ref.name if answer.best_ref else None,
            "answer": list(answer.answer),
            "ranked": ranked,
            "pruned": answer.pruned,
            "shards_parsed": answer.shards_parsed,
            "shards_pruned": answer.shards_pruned,
            "fallback": routing.fallback if routing is not None else False,
        }
    top = answer.top
    return {
        "ok": True,
        "routed": "table",
        "table": answer.table.name,
        "answer": list(top.answer) if top else [],
        "utterance": top.utterance if top else None,
        "candidates": len(answer.explained),
        "parse_seconds": answer.parse_seconds,
    }
