""":class:`ReproClient` — one client, two transports (in-process / TCP).

Tests, benches and downstream programs talk to the system through the
same object whether the engine lives in their process or behind the
JSON-lines TCP endpoint — which means the test suite exercises the
*exact* client path a networked consumer runs:

* ``ReproClient.in_process(engine)`` — calls the
  :class:`~repro.api.engine.ReproEngine` directly;
* ``ReproClient.connect(host, port)`` — a stdlib-socket v2 wire client:
  sends the ``hello`` negotiation, then ``query`` ops, and decodes every
  response back into a :class:`~repro.api.envelope.QueryResult` with the
  same codec the server used to encode it.

Both transports return error *envelopes* (never raise for semantic
failures), mirroring :meth:`ReproEngine.query`; call
``result.raise_for_error()`` for exception behaviour.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional, Sequence

from . import wire
from .engine import ReproEngine, RequestLike, coerce_request
from .envelope import ErrorInfo, QueryRequest, QueryResult
from .errors import ApiError, ErrorCode, bad_request


class _InProcessTransport:
    """Directly invokes a :class:`ReproEngine` (no serialization)."""

    def __init__(self, engine: ReproEngine) -> None:
        self.engine = engine

    def query(self, request: QueryRequest) -> QueryResult:
        return self.engine.query(request)

    def query_many(self, requests: Sequence[QueryRequest]) -> List[QueryResult]:
        return self.engine.query_many(requests)

    def call(self, op: str) -> Dict[str, Any]:
        # The payload builders are shared with the TCP server (repro.api
        # .wire), so swapping a client between transports never changes
        # what callers parse.
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "list":
            return {"ok": True, "tables": wire.table_listing(self.engine.catalog)}
        if op == "stats":
            return {"ok": True, **wire.stats_payload(self.engine.catalog)}
        raise ApiError(ErrorCode.UNKNOWN_OP, f"unknown op {op!r}")

    def close(self) -> None:  # nothing to release
        pass


class _TcpTransport:
    """A v2 JSON-lines client over a blocking stdlib socket."""

    def __init__(self, host: str, port: int, timeout: Optional[float]) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._file = self._socket.makefile("rwb")
        self._sequence = 0
        hello = self._call_raw({"v": 2, "op": "hello"})
        versions = hello.get("versions", ())
        if not hello.get("ok") or 2 not in versions:
            raise ApiError(
                ErrorCode.UNSUPPORTED_VERSION,
                f"server does not speak protocol v2 (offered {versions!r})",
            )

    def _call_raw(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._sequence += 1
        payload.setdefault("id", self._sequence)
        self._file.write(json.dumps(payload, ensure_ascii=False).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ApiError(
                ErrorCode.SERVER_CLOSED, "server closed the connection mid-request"
            )
        response = json.loads(line.decode("utf-8"))
        if not isinstance(response, dict):
            raise bad_request("server sent a non-object response line")
        return response

    @staticmethod
    def _query_fields(request: QueryRequest) -> Dict[str, Any]:
        return {
            key: value
            for key, value in request.to_dict().items()
            if value is not None
        }

    @staticmethod
    def _decode_query_response(
        request: QueryRequest, response: Optional[Dict[str, Any]]
    ) -> QueryResult:
        if response is not None:
            result = response.get("result")
            if result is not None:
                return QueryResult.from_dict(result)
        # Protocol-level failure: no result was built server-side, so
        # synthesize the error envelope from the top-level coded error.
        error = (response.get("error") if response is not None else None) or {
            "code": ErrorCode.INTERNAL.value,
            "message": "server sent neither result nor error",
        }
        return QueryResult(
            question=request.question if isinstance(request.question, str) else "",
            ok=False,
            request_id=request.request_id,
            error=ErrorInfo.from_dict(error),
        )

    def query(self, request: QueryRequest) -> QueryResult:
        response = self._call_raw(
            {"v": 2, "op": "query", **self._query_fields(request)}
        )
        return self._decode_query_response(request, response)

    def query_many(self, requests: Sequence[QueryRequest]) -> List[QueryResult]:
        """Pipelined batch: all request lines ship before any read.

        The JSON-lines server answers every line of a connection in
        order, so a batch of N queries pays one round trip, not N —
        responses are re-matched to requests by the ``id`` echo.
        """
        if not requests:
            return []
        ids: List[int] = []
        lines: List[bytes] = []
        for request in requests:
            self._sequence += 1
            ids.append(self._sequence)
            payload = {
                "v": 2, "id": self._sequence, "op": "query",
                **self._query_fields(request),
            }
            lines.append(
                json.dumps(payload, ensure_ascii=False).encode("utf-8") + b"\n"
            )
        self._file.write(b"".join(lines))
        self._file.flush()
        by_id: Dict[Any, Dict[str, Any]] = {}
        for _ in requests:
            line = self._file.readline()
            if not line:
                break  # missing responses decode to coded INTERNAL errors
            response = json.loads(line.decode("utf-8"))
            if isinstance(response, dict):
                by_id[response.get("id")] = response
        return [
            self._decode_query_response(request, by_id.get(request_id))
            for request, request_id in zip(requests, ids)
        ]

    def call(self, op: str) -> Dict[str, Any]:
        return self._call_raw({"v": 2, "op": op})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._socket.close()


class ReproClient:
    """The unified query client (see module docstring).

    Build with :meth:`in_process` or :meth:`connect`; both speak
    :class:`QueryRequest` in and :class:`QueryResult` out.
    """

    def __init__(self, transport) -> None:
        self._transport = transport

    # -- constructors ----------------------------------------------------------
    @classmethod
    def in_process(cls, engine: ReproEngine) -> "ReproClient":
        """A client that calls ``engine`` directly (zero serialization)."""
        return cls(_InProcessTransport(engine))

    @classmethod
    def connect(
        cls, host: str = "127.0.0.1", port: int = 8765,
        timeout: Optional[float] = 30.0,
    ) -> "ReproClient":
        """Connect to a ``repro serve`` endpoint and negotiate v2."""
        return cls(_TcpTransport(host, port, timeout))

    # -- the query API ---------------------------------------------------------
    def _coerce(self, request: RequestLike, options: Dict[str, Any]) -> QueryRequest:
        return coerce_request(request, options)

    def query(self, request: RequestLike, **options) -> QueryResult:
        return self._transport.query(self._coerce(request, options))

    def query_many(self, requests: Sequence[RequestLike], **options) -> List[QueryResult]:
        return self._transport.query_many(
            [self._coerce(request, options) for request in requests]
        )

    async def aquery(self, request: RequestLike, **options) -> QueryResult:
        """Async :meth:`query` (runs the transport off the event loop)."""
        import asyncio
        import functools

        return await asyncio.get_running_loop().run_in_executor(
            None, functools.partial(self.query, request, **options)
        )

    # -- auxiliary ops ---------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._transport.call("ping").get("pong"))

    def tables(self) -> List[Dict[str, Any]]:
        """Catalog listing: name/digest/rows/columns/hot per shard."""
        return list(self._transport.call("list").get("tables", ()))

    def stats(self) -> Dict[str, Any]:
        """``{"catalog": ..., "server": ...}`` counters.

        ``server`` is ``None`` for an in-process client — there is no
        dispatcher in front of the engine.
        """
        response = self._transport.call("stats")
        return {
            "catalog": response.get("catalog"),
            "server": response.get("server"),
        }

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
