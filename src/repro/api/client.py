""":class:`ReproClient` — one client, two transports (in-process / TCP).

Tests, benches and downstream programs talk to the system through the
same object whether the engine lives in their process or behind the
JSON-lines TCP endpoint — which means the test suite exercises the
*exact* client path a networked consumer runs:

* ``ReproClient.in_process(engine)`` — calls the
  :class:`~repro.api.engine.ReproEngine` directly;
* ``ReproClient.connect(host, port)`` — a stdlib-socket v2 wire client:
  sends the ``hello`` negotiation, then ``query`` ops, and decodes every
  response back into a :class:`~repro.api.envelope.QueryResult` with the
  same codec the server used to encode it.

Both transports return error *envelopes* (never raise for semantic
failures), mirroring :meth:`ReproEngine.query`; call
``result.raise_for_error()`` for exception behaviour.

Transport faults are **coded, never raw**: a socket timeout surfaces as
``ApiError(TIMEOUT)``, a refused/reset/closed connection as
``ApiError(SERVER_CLOSED)`` — callers branch on codes at every layer,
including the transport boundary.  The TCP transport also **retries**
retryable failures (``OVERLOADED`` envelopes, connection resets) with
capped exponential backoff + jitter, reconnecting first when the
connection died; ``TIMEOUT`` is never retried — the caller's deadline is
already spent (see :data:`repro.api.errors.RETRYABLE_CODES`).
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Dict, List, Optional, Sequence

from . import wire
from .engine import ReproEngine, RequestLike, coerce_request
from .envelope import ErrorInfo, QueryRequest, QueryResult
from .errors import RETRYABLE_CODES, ApiError, ErrorCode, bad_request


class _InProcessTransport:
    """Directly invokes a :class:`ReproEngine` (no serialization)."""

    def __init__(self, engine: ReproEngine) -> None:
        self.engine = engine

    def query(self, request: QueryRequest) -> QueryResult:
        return self.engine.query(request)

    def query_many(self, requests: Sequence[QueryRequest]) -> List[QueryResult]:
        return self.engine.query_many(requests)

    def call(self, op: str) -> Dict[str, Any]:
        # The payload builders are shared with the TCP server (repro.api
        # .wire), so swapping a client between transports never changes
        # what callers parse.
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "list":
            return {"ok": True, "tables": wire.table_listing(self.engine.catalog)}
        if op == "stats":
            return {"ok": True, **wire.stats_payload(self.engine.catalog)}
        raise ApiError(ErrorCode.UNKNOWN_OP, f"unknown op {op!r}")

    def close(self) -> None:  # nothing to release
        pass


class _TcpTransport:
    """A v2 JSON-lines client over a blocking stdlib socket.

    Every socket fault is mapped to a coded :class:`ApiError` at this
    boundary (``TIMEOUT`` for a read that ran out of budget,
    ``SERVER_CLOSED`` for refused/reset/closed connections) — raw
    ``socket.timeout``/``ConnectionResetError`` never reach callers.
    ``retries``/``backoff_base``/``backoff_cap`` govern the retry loop
    in :meth:`query`: retryable failures back off exponentially (with
    jitter, capped) and reconnect when the connection is gone.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float],
        retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = max(0, retries)
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._sequence = 0
        attempt = 0
        while True:
            try:
                self._connect()
                return
            except ApiError as error:
                if (
                    error.code is not ErrorCode.SERVER_CLOSED
                    or attempt >= self._retries
                ):
                    raise
                self._backoff(attempt)
                attempt += 1

    @staticmethod
    def _map_transport_error(error: Exception) -> ApiError:
        """Raw socket faults → the coded taxonomy, at the boundary."""
        if isinstance(error, (socket.timeout, TimeoutError)):
            return ApiError(
                ErrorCode.TIMEOUT,
                f"transport timeout: {type(error).__name__}: {error}",
            )
        return ApiError(
            ErrorCode.SERVER_CLOSED,
            f"connection failed: {type(error).__name__}: {error}",
        )

    def _connect(self) -> None:
        try:
            self._socket = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        except OSError as error:
            raise self._map_transport_error(error) from error
        self._file = self._socket.makefile("rwb")
        hello = self._call_raw({"v": 2, "op": "hello"})
        versions = hello.get("versions", ())
        if not hello.get("ok") or 2 not in versions:
            raise ApiError(
                ErrorCode.UNSUPPORTED_VERSION,
                f"server does not speak protocol v2 (offered {versions!r})",
            )

    def _reconnect(self) -> None:
        self.close()
        self._connect()

    def _backoff(self, attempt: int) -> None:
        """Capped exponential backoff with jitter (thundering-herd safe)."""
        delay = min(self._backoff_cap, self._backoff_base * (2 ** attempt))
        time.sleep(delay * (0.5 + random.random() * 0.5))

    def _call_raw(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._sequence += 1
        payload.setdefault("id", self._sequence)
        try:
            self._file.write(
                json.dumps(payload, ensure_ascii=False).encode("utf-8") + b"\n"
            )
            self._file.flush()
            line = self._file.readline()
        except (TimeoutError, OSError) as error:
            raise self._map_transport_error(error) from error
        except ValueError as error:  # I/O on a file closed under us
            raise ApiError(
                ErrorCode.SERVER_CLOSED, f"connection closed: {error}"
            ) from error
        if not line:
            raise ApiError(
                ErrorCode.SERVER_CLOSED, "server closed the connection mid-request"
            )
        response = json.loads(line.decode("utf-8"))
        if not isinstance(response, dict):
            raise bad_request("server sent a non-object response line")
        return response

    @staticmethod
    def _query_fields(request: QueryRequest) -> Dict[str, Any]:
        return {
            key: value
            for key, value in request.to_dict().items()
            if value is not None
        }

    @staticmethod
    def _decode_query_response(
        request: QueryRequest, response: Optional[Dict[str, Any]]
    ) -> QueryResult:
        if response is not None:
            result = response.get("result")
            if result is not None:
                return QueryResult.from_dict(result)
        # Protocol-level failure: no result was built server-side, so
        # synthesize the error envelope from the top-level coded error.
        error = (response.get("error") if response is not None else None) or {
            "code": ErrorCode.INTERNAL.value,
            "message": "server sent neither result nor error",
        }
        return QueryResult(
            question=request.question if isinstance(request.question, str) else "",
            ok=False,
            request_id=request.request_id,
            error=ErrorInfo.from_dict(error),
        )

    @staticmethod
    def _result_code(result: QueryResult) -> Optional[ErrorCode]:
        if result.ok or result.error is None:
            return None
        try:
            return ErrorCode(result.error.code)
        except ValueError:  # a code this client version doesn't know
            return None

    def _should_retry(self, code: Optional[ErrorCode], attempt: int) -> bool:
        return (
            code is not None
            and code in RETRYABLE_CODES
            and attempt < self._retries
        )

    def _recover(self, code: ErrorCode, attempt: int) -> None:
        """Back off (jittered), reconnecting first if the link is dead."""
        self._backoff(attempt)
        if code is ErrorCode.SERVER_CLOSED:
            self._reconnect()

    def query(self, request: QueryRequest) -> QueryResult:
        attempt = 0
        while True:
            try:
                response = self._call_raw(
                    {"v": 2, "op": "query", **self._query_fields(request)}
                )
            except ApiError as error:
                if not self._should_retry(error.code, attempt):
                    raise
                # A failed reconnect raises its own coded SERVER_CLOSED.
                self._recover(error.code, attempt)
                attempt += 1
                continue
            result = self._decode_query_response(request, response)
            code = self._result_code(result)
            if self._should_retry(code, attempt):
                try:
                    self._recover(code, attempt)
                except ApiError:
                    return result  # can't recover: report the envelope
                attempt += 1
                continue
            return result

    def query_many(self, requests: Sequence[QueryRequest]) -> List[QueryResult]:
        """Pipelined batch: all request lines ship before any read.

        The JSON-lines server answers every line of a connection in
        order, so a batch of N queries pays one round trip, not N —
        responses are re-matched to requests by the ``id`` echo.
        Connection-level failures retry the whole (idempotent) batch
        with backoff; per-request error envelopes come back as-is.
        """
        if not requests:
            return []
        attempt = 0
        while True:
            try:
                return self._query_many_once(requests)
            except ApiError as error:
                if error.code is not ErrorCode.SERVER_CLOSED or not (
                    attempt < self._retries
                ):
                    raise
                self._backoff(attempt)
                self._reconnect()
                attempt += 1

    def _query_many_once(self, requests: Sequence[QueryRequest]) -> List[QueryResult]:
        ids: List[int] = []
        lines: List[bytes] = []
        for request in requests:
            self._sequence += 1
            ids.append(self._sequence)
            payload = {
                "v": 2, "id": self._sequence, "op": "query",
                **self._query_fields(request),
            }
            lines.append(
                json.dumps(payload, ensure_ascii=False).encode("utf-8") + b"\n"
            )
        try:
            self._file.write(b"".join(lines))
            self._file.flush()
        except (TimeoutError, OSError) as error:
            raise self._map_transport_error(error) from error
        by_id: Dict[Any, Dict[str, Any]] = {}
        for index in range(len(requests)):
            try:
                line = self._file.readline()
            except (TimeoutError, OSError) as error:
                if index == 0:
                    # Nothing read yet: the batch never started — safe
                    # to surface as retryable.
                    raise self._map_transport_error(error) from error
                break  # partial batch: missing responses decode below
            if not line:
                if index == 0:
                    raise ApiError(
                        ErrorCode.SERVER_CLOSED,
                        "server closed the connection mid-request",
                    )
                break  # missing responses decode to coded INTERNAL errors
            response = json.loads(line.decode("utf-8"))
            if isinstance(response, dict):
                by_id[response.get("id")] = response
        return [
            self._decode_query_response(request, by_id.get(request_id))
            for request, request_id in zip(requests, ids)
        ]

    def call(self, op: str) -> Dict[str, Any]:
        return self._call_raw({"v": 2, "op": op})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._socket.close()


class ReproClient:
    """The unified query client (see module docstring).

    Build with :meth:`in_process` or :meth:`connect`; both speak
    :class:`QueryRequest` in and :class:`QueryResult` out.
    """

    def __init__(self, transport) -> None:
        self._transport = transport

    # -- constructors ----------------------------------------------------------
    @classmethod
    def in_process(cls, engine: ReproEngine) -> "ReproClient":
        """A client that calls ``engine`` directly (zero serialization)."""
        return cls(_InProcessTransport(engine))

    @classmethod
    def connect(
        cls, host: str = "127.0.0.1", port: int = 8765,
        timeout: Optional[float] = 30.0, retries: int = 2,
        backoff_base: float = 0.05, backoff_cap: float = 1.0,
    ) -> "ReproClient":
        """Connect to a ``repro serve`` endpoint and negotiate v2.

        ``retries`` extra attempts are made for retryable failures
        (``OVERLOADED`` envelopes, dropped connections) with capped
        exponential backoff + jitter; ``TIMEOUT`` is never retried.
        """
        return cls(
            _TcpTransport(
                host, port, timeout, retries=retries,
                backoff_base=backoff_base, backoff_cap=backoff_cap,
            )
        )

    # -- the query API ---------------------------------------------------------
    def _coerce(self, request: RequestLike, options: Dict[str, Any]) -> QueryRequest:
        return coerce_request(request, options)

    def query(self, request: RequestLike, **options) -> QueryResult:
        return self._transport.query(self._coerce(request, options))

    def query_many(self, requests: Sequence[RequestLike], **options) -> List[QueryResult]:
        return self._transport.query_many(
            [self._coerce(request, options) for request in requests]
        )

    async def aquery(self, request: RequestLike, **options) -> QueryResult:
        """Async :meth:`query` (runs the transport off the event loop)."""
        import asyncio
        import functools

        return await asyncio.get_running_loop().run_in_executor(
            None, functools.partial(self.query, request, **options)
        )

    # -- auxiliary ops ---------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._transport.call("ping").get("pong"))

    def tables(self) -> List[Dict[str, Any]]:
        """Catalog listing: name/digest/rows/columns/hot per shard."""
        return list(self._transport.call("list").get("tables", ()))

    def stats(self) -> Dict[str, Any]:
        """``{"catalog": ..., "server": ...}`` counters.

        ``server`` is ``None`` for an in-process client — there is no
        dispatcher in front of the engine.
        """
        response = self._transport.call("stats")
        return {
            "catalog": response.get("catalog"),
            "server": response.get("server"),
        }

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
