"""The unified query API: one request in, one typed result out.

Everything the reproduction can be asked — a question over one table, a
corpus-wide ranked search, a batch, a TCP round trip — goes through the
same typed, versioned envelope:

* :class:`~repro.api.envelope.QueryRequest` /
  :class:`~repro.api.envelope.QueryResult` — the request/response pair
  with lossless ``to_dict``/``from_dict`` JSON codecs
  (``QueryResult.from_dict(r.to_dict()) == r``) and a committed JSON
  Schema (``schemas/query_result.v2.json``);
* :class:`~repro.api.errors.ErrorCode` /
  :class:`~repro.api.errors.ApiError` — the structured error taxonomy
  that replaced stringly errors across the library, the CLI and the
  wire;
* :class:`~repro.api.engine.ReproEngine` — the façade (sync ``query`` /
  ``query_many``, async ``aquery``) that
  :class:`~repro.interface.NLInterface`,
  :class:`~repro.tables.catalog.TableCatalog`,
  :class:`~repro.interface.InterfaceSession` and
  :class:`~repro.serving.AsyncServer` are wired through;
* :class:`~repro.api.client.ReproClient` — the same client surface over
  an in-process engine or the v2 JSON-lines TCP protocol
  (:mod:`repro.api.wire`), so tests and benches exercise the exact
  consumer path.

Quick start::

    from repro.api import ReproEngine

    engine = ReproEngine(tables=[table])
    result = engine.query("which country hosted in 2004", target=table.name)
    result.answer            # ('Greece',)
    result.top.utterance     # the NL explanation of the winning query
    result.to_dict()         # the versioned wire envelope
"""

from .client import ReproClient
from .engine import (
    ReproEngine,
    error_result,
    result_from_catalog_answer,
    result_from_response,
    result_from_served,
)
from .envelope import (
    ENVELOPE_VERSION,
    CandidateInfo,
    ComposedInfo,
    ErrorInfo,
    QueryRequest,
    QueryResult,
    RankedShard,
    RoutingInfo,
    ShardInfo,
    ShardScoreInfo,
    TimingInfo,
)
from .errors import ApiError, ErrorCode, ServerClosed, classify_exception
from . import schema, wire

__all__ = [
    "ENVELOPE_VERSION",
    "ApiError",
    "CandidateInfo",
    "ComposedInfo",
    "ErrorCode",
    "ErrorInfo",
    "QueryRequest",
    "QueryResult",
    "RankedShard",
    "ReproClient",
    "ReproEngine",
    "RoutingInfo",
    "ServerClosed",
    "ShardInfo",
    "ShardScoreInfo",
    "TimingInfo",
    "classify_exception",
    "error_result",
    "result_from_catalog_answer",
    "result_from_response",
    "result_from_served",
    "schema",
    "wire",
]
