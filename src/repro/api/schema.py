"""Wire-shape validation against the committed JSON Schemas.

The v2 :class:`~repro.api.envelope.QueryResult` envelope is committed as
``schemas/query_result.v2.json`` (and the frozen v1 ``ask`` response as
``schemas/serve_response.v1.json``); CI validates live ``repro serve
--self-test`` output and the recorded fixtures against them, so wire
drift fails the build instead of surprising a client.

Validation uses the ``jsonschema`` package when importable and falls
back to the bundled :func:`validate_subset` — a deliberately small
validator covering exactly the keywords our schemas use (``type``,
``properties``, ``required``, ``additionalProperties``, ``items``,
``enum``, ``anyOf``, ``const``) — so the check runs on bare-stdlib
environments too.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List

#: schemas/ lives at the repository root, three levels above this file
#: (src/repro/api/schema.py); installed layouts fall back to a copy
#: shipped next to the package if one exists.
_SCHEMA_DIRS = (
    Path(__file__).resolve().parents[3] / "schemas",
    Path(__file__).resolve().parent / "schemas",
)


class SchemaValidationError(ValueError):
    """A payload does not conform to its schema (message lists paths)."""


def schema_path(name: str) -> Path:
    for root in _SCHEMA_DIRS:
        candidate = root / name
        if candidate.exists():
            return candidate
    raise FileNotFoundError(
        f"schema {name!r} not found under {', '.join(str(d) for d in _SCHEMA_DIRS)}"
    )


def load_schema(name: str) -> Dict[str, Any]:
    """Load a committed schema by file name (e.g. ``query_result.v2.json``)."""
    return json.loads(schema_path(name).read_text(encoding="utf-8"))


# -- the bundled subset validator --------------------------------------------

_TYPE_CHECKS = {
    "object": lambda value: isinstance(value, dict),
    "array": lambda value: isinstance(value, list),
    "string": lambda value: isinstance(value, str),
    "integer": lambda value: isinstance(value, int) and not isinstance(value, bool),
    "number": lambda value: (
        isinstance(value, (int, float)) and not isinstance(value, bool)
    ),
    "boolean": lambda value: isinstance(value, bool),
    "null": lambda value: value is None,
}


def _resolve_ref(ref: str, root: Dict[str, Any]) -> Dict[str, Any]:
    if not ref.startswith("#/"):
        raise SchemaValidationError(f"unsupported $ref {ref!r} (only #/ paths)")
    node: Any = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def _subset_errors(
    payload: Any, schema: Dict[str, Any], path: str, root: Dict[str, Any]
) -> List[str]:
    if "$ref" in schema:
        schema = _resolve_ref(schema["$ref"], root)
    errors: List[str] = []
    if "const" in schema and payload != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, got {payload!r}")
    if "enum" in schema and payload not in schema["enum"]:
        errors.append(f"{path}: {payload!r} not in enum {schema['enum']!r}")
    if "anyOf" in schema:
        branches = [
            _subset_errors(payload, branch, path, root) for branch in schema["anyOf"]
        ]
        if not any(not branch for branch in branches):
            errors.append(f"{path}: matched no anyOf branch")
        return errors
    declared = schema.get("type")
    if declared is not None:
        types = declared if isinstance(declared, list) else [declared]
        if not any(_TYPE_CHECKS[t](payload) for t in types):
            errors.append(
                f"{path}: expected type {'/'.join(types)}, "
                f"got {type(payload).__name__}"
            )
            return errors
    if isinstance(payload, dict):
        properties = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in payload:
                errors.append(f"{path}: missing required key {key!r}")
        if schema.get("additionalProperties") is False:
            for key in payload:
                if key not in properties:
                    errors.append(f"{path}: unexpected key {key!r}")
        for key, sub_schema in properties.items():
            if key in payload:
                errors.extend(
                    _subset_errors(payload[key], sub_schema, f"{path}.{key}", root)
                )
    if isinstance(payload, list) and "items" in schema:
        for index, item in enumerate(payload):
            errors.extend(
                _subset_errors(item, schema["items"], f"{path}[{index}]", root)
            )
    return errors


def validate_subset(payload: Any, schema: Dict[str, Any]) -> None:
    """Validate with the bundled keyword subset; raise on the first report."""
    errors = _subset_errors(payload, schema, "$", schema)
    if errors:
        raise SchemaValidationError("; ".join(errors[:10]))


def validate_payload(payload: Any, schema: Dict[str, Any]) -> None:
    """Validate one payload, preferring ``jsonschema`` when installed."""
    try:
        import jsonschema
    except ImportError:
        validate_subset(payload, schema)
        return
    try:
        jsonschema.validate(payload, schema)
    except jsonschema.ValidationError as error:
        raise SchemaValidationError(error.message) from error


def validate_query_result(payload: Dict[str, Any]) -> None:
    """Validate a serialized v2 :class:`QueryResult` against its schema."""
    validate_payload(payload, load_schema("query_result.v2.json"))


def validate_v1_response(payload: Dict[str, Any]) -> None:
    """Validate a v1 ``ask`` wire response against the frozen v1 schema."""
    validate_payload(payload, load_schema("serve_response.v1.json"))


def validate_lines(
    lines: Iterable[str], schema: Dict[str, Any]
) -> int:
    """Validate a JSON-lines stream; returns the number of payloads checked."""
    checked = 0
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise SchemaValidationError(f"line {number}: not JSON ({error})")
        try:
            validate_payload(payload, schema)
        except SchemaValidationError as error:
            raise SchemaValidationError(f"line {number}: {error}")
        checked += 1
    return checked
