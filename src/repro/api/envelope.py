"""The typed, versioned request/response envelope of the unified API.

One request shape in, one result shape out — across the library call
(:class:`~repro.api.engine.ReproEngine`), the CLI and the v2 wire
protocol.  Both sides are plain dataclasses with lossless JSON codecs:

* :class:`QueryRequest` — question + target spec (explicit table ref,
  corpus-wide, or auto) + the options every layer used to plumb by hand
  (``k``, ``prune``, ``backend``, ``request_id``);
* :class:`QueryResult` — ranked candidates with utterance/answer/score,
  the routing decision, the answering shard, timing and cache counters,
  or a coded :class:`~repro.api.errors.ErrorCode` failure.

The codec contract (locked by ``tests/test_api.py``)::

    QueryResult.from_dict(result.to_dict()) == result

``to_dict`` always emits every key (a stable shape —
``schemas/query_result.v2.json`` is its committed JSON Schema), and
``from_dict`` restores the exact value, floats included.  Wall-clock
fields (``timing``) and run-dependent counters (``cache``) are the only
parts that differ between two executions of the same question;
:meth:`QueryResult.canonical_dict` strips them, which is how the test
suite asserts the TCP path bit-identical to the in-process engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .errors import ApiError, ErrorCode, bad_request

#: Version stamp of the serialized :class:`QueryResult` envelope.
ENVELOPE_VERSION = 2

#: How a request may name its target: unresolved string (table name,
#: digest, digest prefix) or an already-resolved ref/table object from
#: :mod:`repro.tables` (serialized as its content digest).
TargetLike = Union[str, "object", None]

#: The three target modes: ``"table"`` (explicit ref, required),
#: ``"any"`` (corpus-wide ranking), ``"auto"`` (table when a target is
#: given, corpus-wide otherwise).
TARGET_MODES = ("auto", "table", "any")

_BACKENDS = ("thread", "process")


def _target_key(target: TargetLike) -> Optional[str]:
    """Serialize a target spec to its wire string (digest preferred)."""
    if target is None or isinstance(target, str):
        return target
    digest = getattr(target, "digest", None)
    if isinstance(digest, str):  # TableRef
        return digest
    fingerprint = getattr(target, "fingerprint", None)
    if fingerprint is not None:  # Table
        return fingerprint.digest
    raise bad_request(f"cannot use a {type(target).__name__} as a query target")


@dataclass(frozen=True)
class QueryRequest:
    """One question plus everything needed to route and rank it."""

    question: str
    target: TargetLike = None
    mode: str = "auto"
    k: Optional[int] = None
    prune: Optional[bool] = None
    backend: Optional[str] = None
    request_id: Optional[str] = None
    #: Optional end-to-end budget in milliseconds.  The serving layer
    #: starts the clock when it accepts the request; a request whose
    #: budget expires — in the dispatcher queue or on a hung worker —
    #: returns a coded ``TIMEOUT`` error instead of an answer.  Additive
    #: v2 wire field (v1 stays frozen and never carries it).
    deadline_ms: Optional[int] = None
    #: Optional top-N routing cap for corpus-wide requests: at most this
    #: many highest-ranked shards are parsed (the router's heap path).
    #: ``None`` keeps every retrieval hit — the default, and the only
    #: setting the no-lost-answers contract is unconditional for.
    #: Additive v2 wire field (v1 stays frozen and never carries it).
    max_candidates: Optional[int] = None

    def validate(self) -> None:
        """Raise a coded ``BAD_REQUEST`` on any malformed field.

        The messages for the fields shared with the v1 wire protocol
        (question/k/prune) are byte-for-byte the v1 server's, so v1
        clients keep seeing the exact responses they always did.
        """
        if not isinstance(self.question, str) or not self.question.strip():
            raise bad_request("missing question")
        if self.k is not None and (isinstance(self.k, bool) or not isinstance(self.k, int)):
            raise bad_request("k must be an integer")
        if self.k is not None and self.k < 1:
            raise bad_request("k must be >= 1")
        if self.prune is not None and not isinstance(self.prune, bool):
            raise bad_request("prune must be a boolean")
        if self.mode not in TARGET_MODES:
            raise bad_request(
                f"mode must be one of {', '.join(TARGET_MODES)}, got {self.mode!r}"
            )
        if self.mode == "table" and self.target is None:
            raise bad_request("mode 'table' requires a target")
        if self.mode == "any" and self.target is not None:
            raise bad_request("mode 'any' does not take a target")
        if self.backend is not None and self.backend not in _BACKENDS:
            raise bad_request(
                f"backend must be one of {', '.join(_BACKENDS)}, got {self.backend!r}"
            )
        if self.deadline_ms is not None and (
            isinstance(self.deadline_ms, bool)
            or not isinstance(self.deadline_ms, int)
        ):
            raise bad_request("deadline_ms must be an integer")
        if self.deadline_ms is not None and self.deadline_ms < 1:
            raise bad_request("deadline_ms must be >= 1")
        if self.max_candidates is not None and (
            isinstance(self.max_candidates, bool)
            or not isinstance(self.max_candidates, int)
        ):
            raise bad_request("max_candidates must be an integer")
        if self.max_candidates is not None and self.max_candidates < 1:
            raise bad_request("max_candidates must be >= 1")

    @property
    def resolved_mode(self) -> str:
        """``"table"`` or ``"any"`` — the mode after ``auto`` resolution."""
        if self.mode == "auto":
            return "table" if self.target is not None else "any"
        return self.mode

    def to_dict(self) -> Dict[str, Any]:
        return {
            "question": self.question,
            "target": _target_key(self.target),
            "mode": self.mode,
            "k": self.k,
            "prune": self.prune,
            "backend": self.backend,
            "request_id": self.request_id,
            "deadline_ms": self.deadline_ms,
            "max_candidates": self.max_candidates,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryRequest":
        """Decode a request dict; unknown keys raise ``BAD_REQUEST``."""
        if not isinstance(payload, Mapping):
            raise bad_request("expected a JSON object")
        known = {
            "question", "target", "table", "mode", "k", "prune", "backend",
            "request_id", "deadline_ms", "max_candidates",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise bad_request(f"unknown request fields: {', '.join(unknown)}")
        target = payload.get("target")
        if target is None:
            # ``table`` is the v1 field name, accepted as an alias so v1
            # request bodies upgrade to v2 by adding the version stamp.
            target = payload.get("table")
        request = cls(
            question=payload.get("question"),
            target=target,
            mode=payload.get("mode", "auto"),
            k=payload.get("k"),
            prune=payload.get("prune"),
            backend=payload.get("backend"),
            request_id=payload.get("request_id"),
            deadline_ms=payload.get("deadline_ms"),
            max_candidates=payload.get("max_candidates"),
        )
        if request.mode is not None and not isinstance(request.mode, str):
            raise bad_request("mode must be a string")
        if request.target is not None and not isinstance(request.target, str):
            raise bad_request("target must be a string")
        if request.request_id is not None and not isinstance(request.request_id, str):
            raise bad_request("request_id must be a string")
        return request


@dataclass(frozen=True)
class ShardInfo:
    """The wire identity of one catalog shard (a serialized table ref)."""

    digest: str
    name: str
    rows: int
    columns: int

    @property
    def short(self) -> str:
        return self.digest[:12]

    @classmethod
    def from_ref(cls, ref) -> "ShardInfo":
        return cls(
            digest=ref.digest,
            name=ref.name,
            rows=ref.num_rows,
            columns=ref.num_columns,
        )

    @classmethod
    def from_table(cls, table) -> "ShardInfo":
        return cls(
            digest=table.fingerprint.digest,
            name=table.name,
            rows=table.num_rows,
            columns=table.num_columns,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "name": self.name,
            "rows": self.rows,
            "columns": self.columns,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ShardInfo":
        return cls(
            digest=payload["digest"],
            name=payload["name"],
            rows=payload["rows"],
            columns=payload["columns"],
        )


@dataclass(frozen=True)
class CandidateInfo:
    """One ranked candidate: answer, NL utterance, query, model score."""

    rank: int
    answer: Tuple[str, ...]
    utterance: Optional[str]
    sexpr: Optional[str]
    score: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank,
            "answer": list(self.answer),
            "utterance": self.utterance,
            "sexpr": self.sexpr,
            "score": self.score,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CandidateInfo":
        return cls(
            rank=payload["rank"],
            answer=tuple(payload["answer"]),
            utterance=payload["utterance"],
            sexpr=payload["sexpr"],
            score=payload["score"],
        )


@dataclass(frozen=True)
class RankedShard:
    """One parsed shard in a corpus-wide ranking (best first)."""

    shard: ShardInfo
    answer: Tuple[str, ...]
    score: Optional[float]
    retrieval_score: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard.to_dict(),
            "answer": list(self.answer),
            "score": self.score,
            "retrieval_score": self.retrieval_score,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RankedShard":
        return cls(
            shard=ShardInfo.from_dict(payload["shard"]),
            answer=tuple(payload["answer"]),
            score=payload["score"],
            retrieval_score=payload["retrieval_score"],
        )


@dataclass(frozen=True)
class ShardScoreInfo:
    """One shard's retrieval score in the routing decision."""

    digest: str
    name: str
    score: float
    matched: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "name": self.name,
            "score": self.score,
            "matched": list(self.matched),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ShardScoreInfo":
        return cls(
            digest=payload["digest"],
            name=payload["name"],
            score=payload["score"],
            matched=tuple(payload["matched"]),
        )


@dataclass(frozen=True)
class RoutingInfo:
    """How the question reached its shard(s): the routing decision."""

    mode: str  # "table" | "any"
    pruned: bool
    fallback: bool
    shards_parsed: int
    shards_pruned: int
    scores: Tuple[ShardScoreInfo, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "pruned": self.pruned,
            "fallback": self.fallback,
            "shards_parsed": self.shards_parsed,
            "shards_pruned": self.shards_pruned,
            "scores": [scored.to_dict() for scored in self.scores],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RoutingInfo":
        return cls(
            mode=payload["mode"],
            pruned=payload["pruned"],
            fallback=payload["fallback"],
            shards_parsed=payload["shards_parsed"],
            shards_pruned=payload["shards_pruned"],
            scores=tuple(
                ShardScoreInfo.from_dict(scored) for scored in payload["scores"]
            ),
        )


@dataclass(frozen=True)
class ComposedInfo:
    """A cross-table composed answer with its join provenance.

    The wire face of :class:`~repro.compose.answer.ComposedAnswer`:
    the answer values, the composed query, and which rows of which
    shards produced it (primary answers, secondary restricts, joined on
    ``left_column = right_column``).  Additive v2 field — it appears
    only when the catalog actually composed, and the wall-clock
    ``seconds`` of the composition stays out (timing is run-dependent;
    the canonical projection keeps ``composed``).
    """

    answer: Tuple[str, ...]
    sexpr: str
    utterance: str
    primary: ShardInfo
    secondary: ShardInfo
    left_column: str
    right_column: str
    join_pairs: Tuple[Tuple[int, int], ...]
    retrieval_score: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "answer": list(self.answer),
            "sexpr": self.sexpr,
            "utterance": self.utterance,
            "provenance": {
                "primary": self.primary.to_dict(),
                "secondary": self.secondary.to_dict(),
                "on": {"left": self.left_column, "right": self.right_column},
                "join_pairs": [list(pair) for pair in self.join_pairs],
            },
            "retrieval_score": self.retrieval_score,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ComposedInfo":
        provenance = payload["provenance"]
        return cls(
            answer=tuple(payload["answer"]),
            sexpr=payload["sexpr"],
            utterance=payload["utterance"],
            primary=ShardInfo.from_dict(provenance["primary"]),
            secondary=ShardInfo.from_dict(provenance["secondary"]),
            left_column=provenance["on"]["left"],
            right_column=provenance["on"]["right"],
            join_pairs=tuple(
                (int(pair[0]), int(pair[1]))
                for pair in provenance["join_pairs"]
            ),
            retrieval_score=payload["retrieval_score"],
        )


@dataclass(frozen=True)
class TimingInfo:
    """Wall-clock accounting (excluded from canonical comparisons)."""

    parse_seconds: float
    explain_seconds: float
    total_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "parse_seconds": self.parse_seconds,
            "explain_seconds": self.explain_seconds,
            "total_seconds": self.total_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TimingInfo":
        return cls(
            parse_seconds=payload["parse_seconds"],
            explain_seconds=payload["explain_seconds"],
            total_seconds=payload["total_seconds"],
        )


@dataclass(frozen=True)
class ErrorInfo:
    """A coded failure inside a result envelope."""

    code: ErrorCode
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {"code": self.code.value, "message": self.message}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ErrorInfo":
        return cls(code=ErrorCode(payload["code"]), message=payload["message"])

    @classmethod
    def from_error(cls, error: ApiError) -> "ErrorInfo":
        return cls(code=error.code, message=error.message)

    def to_exception(self) -> ApiError:
        return ApiError(self.code, self.message)


@dataclass(frozen=True)
class QueryResult:
    """The one result envelope every query surface returns.

    ``ok`` is true iff ``error`` is ``None``.  Error results may still
    carry routing metadata (a ``PARSE_FAILURE`` reports which shards were
    tried); pure request errors (``BAD_REQUEST``, ``UNKNOWN_TABLE``) have
    empty payload fields.  ``raw`` holds the in-process
    :class:`~repro.interface.nl_interface.InterfaceResponse` /
    :class:`~repro.tables.catalog.CatalogAnswer` when the result was
    produced locally (rich rendering for the CLI); it never crosses the
    wire and never takes part in equality.
    """

    question: str
    ok: bool
    answer: Tuple[str, ...] = ()
    request_id: Optional[str] = None
    error: Optional[ErrorInfo] = None
    shard: Optional[ShardInfo] = None
    candidates: Tuple[CandidateInfo, ...] = ()
    ranked: Tuple[RankedShard, ...] = ()
    routing: Optional[RoutingInfo] = None
    timing: Optional[TimingInfo] = None
    cache: Optional[Dict[str, Any]] = None
    #: The catalog's monotonic corpus version this result was computed
    #: against (``None`` when no catalog was involved).  Additive v2
    #: wire field: stale reads — a result pinned to a version an update
    #: has since superseded — are observable over the wire.
    corpus_version: Optional[int] = None
    #: The cross-table composed answer, when the catalog's set router
    #: proposed shard sets and composition succeeded.  Additive v2 wire
    #: field; part of the answer, so :meth:`canonical_dict` keeps it.
    composed: Optional[ComposedInfo] = None
    raw: Optional[object] = field(default=None, compare=False, repr=False)

    @property
    def top(self) -> Optional[CandidateInfo]:
        return self.candidates[0] if self.candidates else None

    @property
    def error_code(self) -> Optional[ErrorCode]:
        return self.error.code if self.error is not None else None

    def raise_for_error(self) -> "QueryResult":
        """Raise the coded :class:`ApiError` when this is a failure."""
        if self.error is not None:
            raise self.error.to_exception()
        return self

    def to_dict(self) -> Dict[str, Any]:
        """The versioned wire form — every key always present."""
        return {
            "v": ENVELOPE_VERSION,
            "question": self.question,
            "ok": self.ok,
            "request_id": self.request_id,
            "answer": list(self.answer),
            "error": self.error.to_dict() if self.error is not None else None,
            "shard": self.shard.to_dict() if self.shard is not None else None,
            "candidates": [candidate.to_dict() for candidate in self.candidates],
            "ranked": [ranked.to_dict() for ranked in self.ranked],
            "routing": self.routing.to_dict() if self.routing is not None else None,
            "timing": self.timing.to_dict() if self.timing is not None else None,
            "cache": self.cache,
            "corpus_version": self.corpus_version,
            "composed": self.composed.to_dict() if self.composed is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryResult":
        if not isinstance(payload, Mapping):
            raise bad_request("expected a JSON object")
        version = payload.get("v")
        if version != ENVELOPE_VERSION:
            raise ApiError(
                ErrorCode.UNSUPPORTED_VERSION,
                f"unsupported result envelope version {version!r} "
                f"(this codec speaks v{ENVELOPE_VERSION})",
            )
        error = payload.get("error")
        shard = payload.get("shard")
        routing = payload.get("routing")
        timing = payload.get("timing")
        composed = payload.get("composed")
        return cls(
            question=payload["question"],
            ok=payload["ok"],
            answer=tuple(payload.get("answer", ())),
            request_id=payload.get("request_id"),
            error=ErrorInfo.from_dict(error) if error is not None else None,
            shard=ShardInfo.from_dict(shard) if shard is not None else None,
            candidates=tuple(
                CandidateInfo.from_dict(candidate)
                for candidate in payload.get("candidates", ())
            ),
            ranked=tuple(
                RankedShard.from_dict(ranked) for ranked in payload.get("ranked", ())
            ),
            routing=RoutingInfo.from_dict(routing) if routing is not None else None,
            timing=TimingInfo.from_dict(timing) if timing is not None else None,
            cache=dict(payload["cache"]) if payload.get("cache") is not None else None,
            corpus_version=payload.get("corpus_version"),
            composed=(
                ComposedInfo.from_dict(composed) if composed is not None else None
            ),
        )

    def canonical_dict(self) -> Dict[str, Any]:
        """The run-independent projection of :meth:`to_dict`.

        Strips the fields two executions of the same deterministic
        question legitimately differ on — wall clock (``timing``),
        cache counters (``cache``), the caller-chosen ``request_id``
        and the acceptance-time ``corpus_version`` stamp (a property
        of *when* the request was observed, not of the answer) —
        leaving exactly what must be bit-identical between the
        in-process engine and the TCP path.
        """
        payload = self.to_dict()
        payload.pop("timing")
        payload.pop("cache")
        payload.pop("request_id")
        payload.pop("corpus_version")
        return payload

    def without_raw(self) -> "QueryResult":
        return replace(self, raw=None) if self.raw is not None else self
